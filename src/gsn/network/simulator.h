#ifndef GSN_NETWORK_SIMULATOR_H_
#define GSN_NETWORK_SIMULATOR_H_

#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "gsn/network/transport.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/util/clock.h"
#include "gsn/util/result.h"
#include "gsn/util/rng.h"

namespace gsn::network {

/// In-process network between containers, standing in for the TCP/HTTP
/// links of a real GSN deployment (substitution documented in
/// DESIGN.md; EpollTransport is the real-socket sibling). Messages
/// experience configurable latency, jitter, and loss; delivery happens
/// when the owner pumps DeliverUntil(now), which makes multi-node
/// experiments fully deterministic under virtual time.
///
/// Thread-safe.
class NetworkSimulator : public Transport {
 public:
  struct LinkConfig {
    Timestamp base_latency_micros = 2 * kMicrosPerMilli;
    Timestamp jitter_micros = 0;  // uniform in [0, jitter]
    double loss_probability = 0.0;
  };

  /// Point-in-time view assembled from the registered metrics (kept as
  /// the pre-telemetry API).
  struct Stats {
    int64_t sent = 0;
    int64_t delivered = 0;
    int64_t dropped = 0;
    int64_t bytes_sent = 0;
  };

  /// Traffic telemetry (send/deliver/drop counters, simulated delivery
  /// latency) registers in `metrics`; a private registry is created
  /// when none is injected. The latency histogram observes
  /// `deliver_at - sent_at`, which is deterministic under virtual time.
  explicit NetworkSimulator(uint64_t seed = 1,
                            telemetry::MetricRegistry* metrics = nullptr);

  NetworkSimulator(const NetworkSimulator&) = delete;
  NetworkSimulator& operator=(const NetworkSimulator&) = delete;

  /// Attaches a node under `node_id`. Fails on duplicates.
  Status RegisterNode(const std::string& node_id, NetworkNode* node) override;
  Status UnregisterNode(const std::string& node_id) override;
  std::vector<std::string> NodeIds() const;

  /// Default link parameters for all pairs.
  void SetDefaultLink(const LinkConfig& config);
  /// Overrides the link from `from` to `to` (directional).
  void SetLink(const std::string& from, const std::string& to,
               const LinkConfig& config);

  /// Enqueues a message. `now` is the send time; delivery time adds
  /// latency + jitter. Lost messages count as dropped. Unknown
  /// destinations are an error.
  Status Send(Timestamp now, const std::string& from, const std::string& to,
              const std::string& topic, std::string payload) override;

  /// Broadcasts to every registered node except `from`.
  Status Broadcast(Timestamp now, const std::string& from,
                   const std::string& topic,
                   const std::string& payload) override;

  /// Delivers every queued message with deliver_at <= now, in delivery
  /// time order. Handlers may send more messages; those are delivered
  /// too if due. Scheduled fault actions due by `now` run interleaved
  /// in time order. Returns the number of messages delivered.
  int DeliverUntil(Timestamp now);

  /// Transport: the simulator's deferred delivery IS the pump.
  int Pump(Timestamp now) override { return DeliverUntil(now); }
  NetworkSimulator* AsSimulator() override { return this; }
  std::string transport_name() const override { return "simulator"; }

  // -- Fault injection ------------------------------------------------------
  //
  // First-class chaos controls, scriptable under virtual time so chaos
  // tests are deterministic: partitions, peer crash/restart, and
  // asymmetric loss (via SetLoss on one direction only). Faults act at
  // both send and delivery time — a message in flight when the
  // partition lands is lost, like a cable pull.

  /// Symmetric partition between `a` and `b`: messages in either
  /// direction are dropped while it holds.
  void SetPartitioned(const std::string& a, const std::string& b,
                      bool partitioned);

  /// Crash / restart: a down node neither sends nor receives, but its
  /// registration (and the owning container's state) survives — this
  /// models a process restart, not a departure.
  void SetNodeDown(const std::string& node_id, bool down);
  bool IsNodeDown(const std::string& node_id) const;

  /// Convenience: sets only the loss probability of the directional
  /// link `from` -> `to`, keeping its latency/jitter. Call once per
  /// direction for symmetric loss.
  void SetLoss(const std::string& from, const std::string& to,
               double loss_probability);

  /// Lifts every partition and marks every node up (link loss configs
  /// are left alone — use SetLoss to clear those).
  void ClearFaults();

  /// Schedules `action` to run during DeliverUntil once virtual time
  /// reaches `at`, interleaved with message deliveries in time order
  /// (actions run before messages due at the same instant). Actions
  /// may call any simulator method — this is how chaos scripts flip
  /// partitions mid-run deterministically.
  void ScheduleAt(Timestamp at, std::function<void()> action);

  Stats stats() const;

 private:
  struct QueuedMessage {
    Message message;
    uint64_t sequence;  // tie-break for deterministic ordering
    bool operator>(const QueuedMessage& other) const {
      if (message.deliver_at != other.message.deliver_at) {
        return message.deliver_at > other.message.deliver_at;
      }
      return sequence > other.sequence;
    }
  };

  struct ScheduledAction {
    Timestamp at = 0;
    uint64_t sequence = 0;  // FIFO among actions at the same instant
    std::function<void()> action;
  };

  const LinkConfig& LinkFor(const std::string& from,
                            const std::string& to) const;
  bool FaultBlocksLocked(const std::string& from, const std::string& to) const;

  std::unique_ptr<telemetry::MetricRegistry> owned_metrics_;
  std::shared_ptr<telemetry::Counter> sent_;
  std::shared_ptr<telemetry::Counter> delivered_;
  std::shared_ptr<telemetry::Counter> dropped_;
  std::shared_ptr<telemetry::Counter> bytes_sent_;
  std::shared_ptr<telemetry::Histogram> delivery_micros_;

  mutable std::mutex mu_;
  Rng rng_;
  LinkConfig default_link_;
  std::map<std::pair<std::string, std::string>, LinkConfig> links_;
  std::map<std::string, NetworkNode*> nodes_;
  std::priority_queue<QueuedMessage, std::vector<QueuedMessage>,
                      std::greater<QueuedMessage>>
      queue_;
  uint64_t sequence_ = 0;
  /// Fault state: symmetric partitions stored as ordered (min, max)
  /// pairs; down nodes by id; chaos actions sorted by (at, sequence).
  std::set<std::pair<std::string, std::string>> partitions_;
  std::set<std::string> down_nodes_;
  std::vector<ScheduledAction> actions_;  // kept sorted, drained from front
  uint64_t action_sequence_ = 0;
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_SIMULATOR_H_

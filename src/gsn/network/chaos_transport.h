#ifndef GSN_NETWORK_CHAOS_TRANSPORT_H_
#define GSN_NETWORK_CHAOS_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "gsn/network/transport.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/util/clock.h"
#include "gsn/util/result.h"

namespace gsn::network {

/// Fault-injecting Transport decorator (docs/CHAOS.md): wraps any
/// inner transport — in practice EpollTransport, giving real-TCP runs
/// the same chaos vocabulary the NetworkSimulator offers under virtual
/// time. Frames crossing the decorator are subjected to per-peer,
/// per-direction rules: drop, duplication, reordering, fixed+jittered
/// delay, bandwidth throttling, full partition, and forced connection
/// resets (via the inner transport's ResetPeer).
///
/// Determinism contract: the drop/dup/reorder/delay decision for the
/// i-th frame on a link is a pure function of (seed, peer, direction,
/// i) — each frame gets its own PRNG stream, so two runs that push the
/// same frame sequence through the same rules see the same fault
/// schedule regardless of thread interleaving. Throttle and reorder
/// *holds* translate into wall-clock waits, so exact delivery instants
/// still depend on the host scheduler; the schedule of which frames
/// are dropped/duplicated/delayed does not. ScheduleDigest() folds the
/// first N per-link decisions into a hash so external harnesses (the
/// chaos soak) can assert two daemons carry identical schedules.
///
/// Outbound rules apply in Send before the inner transport sees the
/// frame; inbound rules apply between the inner transport's delivery
/// and the registered node (RegisterNode interposes a shim). Dropped
/// and partitioned frames report OK — like real packet loss, the
/// sender cannot know, and the resilience layer above must recover.
/// Broadcasts pass through unmodified (per-peer rules have no single
/// peer to key on). Thread-safe; delayed frames are replayed by one
/// scheduler thread.
class ChaosTransport : public Transport {
 public:
  enum class Direction { kIn = 0, kOut = 1 };

  /// One link's fault rule. Probabilities are per frame in [0, 1].
  struct Rule {
    double drop = 0.0;
    double dup = 0.0;
    double reorder = 0.0;  // held back ~25ms so later frames overtake
    double reset = 0.0;    // frame lost + connection forcibly reset
    Timestamp delay_micros = 0;
    Timestamp delay_jitter_micros = 0;  // uniform in [0, jitter)
    int64_t throttle_bytes_per_sec = 0;  // 0 = unthrottled
    bool partitioned = false;

    bool IsDefault() const {
      return drop == 0.0 && dup == 0.0 && reorder == 0.0 && reset == 0.0 &&
             delay_micros == 0 && delay_jitter_micros == 0 &&
             throttle_bytes_per_sec == 0 && !partitioned;
    }
  };

  /// The per-frame fault decision (the deterministic part of the
  /// schedule; throttle waits are load-dependent and excluded).
  struct Decision {
    bool drop = false;
    bool dup = false;
    bool reorder = false;
    bool reset = false;
    Timestamp delay_micros = 0;
  };

  struct RuleEntry {
    std::string peer;
    Direction direction = Direction::kOut;
    Rule rule;
    uint64_t frames = 0;  // frames that consulted this link so far
  };

  struct Counters {
    int64_t dropped = 0;
    int64_t duplicated = 0;
    int64_t reordered = 0;
    int64_t delayed = 0;
    int64_t throttled = 0;
    int64_t partitioned = 0;
    int64_t resets = 0;
  };

  struct Options {
    uint64_t seed = 1;
    /// gsn_chaos_injected_total{fault=...} registers here when set.
    telemetry::MetricRegistry* metrics = nullptr;
  };

  /// Does not own `inner`; `inner` must outlive this decorator.
  explicit ChaosTransport(Transport* inner);
  ChaosTransport(Transport* inner, Options options);
  ~ChaosTransport() override;

  ChaosTransport(const ChaosTransport&) = delete;
  ChaosTransport& operator=(const ChaosTransport&) = delete;

  // -- Transport ------------------------------------------------------------

  Status RegisterNode(const std::string& node_id, NetworkNode* node) override;
  Status UnregisterNode(const std::string& node_id) override;
  Status Send(Timestamp now, const std::string& from, const std::string& to,
              const std::string& topic, std::string payload) override;
  Status Broadcast(Timestamp now, const std::string& from,
                   const std::string& topic,
                   const std::string& payload) override;
  int Pump(Timestamp now) override { return inner_->Pump(now); }
  std::vector<ConnectionStats> Connections() const override {
    return inner_->Connections();
  }
  NetworkSimulator* AsSimulator() override { return inner_->AsSimulator(); }
  ChaosTransport* AsChaos() override { return this; }
  std::string transport_name() const override {
    return "chaos+" + inner_->transport_name();
  }
  void SetErrorCallback(ErrorCallback callback) override {
    inner_->SetErrorCallback(std::move(callback));
  }
  void SetPeerUpCallback(PeerUpCallback callback) override {
    inner_->SetPeerUpCallback(std::move(callback));
  }
  Status ResetPeer(const std::string& peer) override {
    return inner_->ResetPeer(peer);
  }

  // -- Chaos control (chaos command, POST /api/v1/chaos) --------------------

  void SetRule(const std::string& peer, Direction direction, const Rule& rule);
  Rule GetRule(const std::string& peer, Direction direction) const;
  /// Removes every rule for `peer`; empty peer clears all rules.
  void ClearRules(const std::string& peer = "");
  /// Restarts the deterministic schedule: new seed, per-link frame
  /// counters back to zero, throttle debt cleared. Rules are kept.
  void Reseed(uint64_t seed);
  uint64_t seed() const;

  std::vector<RuleEntry> Rules() const;
  Counters counters() const;
  Transport* inner() const { return inner_; }

  /// The per-frame decision the schedule assigns to frame
  /// `frame_index` of (peer, direction) under the current seed and
  /// rules — exposed so tests can pin the determinism contract.
  Decision DecisionFor(const std::string& peer, Direction direction,
                       uint64_t frame_index) const;

  /// FNV-1a hash over the configured rules plus each link's decisions
  /// for frames [0, frames_per_link): equal across two instances iff
  /// seed and rules agree, which is what "the same seed reproduces the
  /// same fault schedule" means on a real network.
  uint64_t ScheduleDigest(uint64_t frames_per_link = 64) const;

 private:
  /// Interposed NetworkNode: the inner transport delivers here, and
  /// inbound rules run before the real node sees the message.
  class InboundShim;

  struct LinkState {
    Rule rule;
    uint64_t frames = 0;
    Timestamp throttle_free_steady = 0;  // token-bucket next-free time
  };

  struct ScheduledAction {
    Timestamp due_steady = 0;
    uint64_t seq = 0;  // FIFO among same-instant actions
    std::function<void()> fn;
    bool operator>(const ScheduledAction& other) const {
      if (due_steady != other.due_steady) {
        return due_steady > other.due_steady;
      }
      return seq > other.seq;
    }
  };

  /// Inbound path: the shim hands every delivery here; rules for
  /// (message.from, kIn) decide its fate before DeliverInbound pushes
  /// it to the registered node.
  void OnInboundMessage(const std::string& node_id, const Message& message);
  void DeliverInbound(const std::string& node_id, const Message& message);

  Decision DecideLocked(const Rule& rule, uint64_t link_hash,
                        uint64_t frame_index) const;
  /// Applies `link`'s rule to a frame of `bytes` bytes; returns false
  /// when the frame is consumed (dropped/partitioned) and otherwise
  /// fills the extra wait before it may proceed.
  bool AdmitFrameLocked(const std::string& peer, Direction direction,
                        size_t bytes, Timestamp steady_now, bool* duplicate,
                        bool* reset, Timestamp* wait_micros);
  void Schedule(Timestamp due_steady, std::function<void()> fn);
  void SchedulerMain();
  void CountFault(const char* fault, std::atomic<int64_t>* counter);

  Transport* const inner_;
  telemetry::MetricRegistry* const metrics_;

  mutable std::mutex mu_;
  uint64_t seed_;                                    // guarded by mu_
  std::map<std::pair<std::string, int>, LinkState> links_;  // guarded by mu_
  std::map<std::string, std::unique_ptr<InboundShim>> shims_;  // guarded by mu_

  std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  std::priority_queue<ScheduledAction, std::vector<ScheduledAction>,
                      std::greater<ScheduledAction>>
      scheduled_;        // guarded by sched_mu_
  uint64_t sched_seq_ = 0;  // guarded by sched_mu_
  bool stopping_ = false;   // guarded by sched_mu_
  std::thread scheduler_;

  std::atomic<int64_t> dropped_total_{0};
  std::atomic<int64_t> duplicated_total_{0};
  std::atomic<int64_t> reordered_total_{0};
  std::atomic<int64_t> delayed_total_{0};
  std::atomic<int64_t> throttled_total_{0};
  std::atomic<int64_t> partitioned_total_{0};
  std::atomic<int64_t> resets_total_{0};
};

/// Parses Direction from "in" | "out" | "both"-style words; used by
/// the shared chaos command grammar.
const char* DirectionName(ChaosTransport::Direction direction);

/// Executes one line of the shared chaos vocabulary against whatever
/// transport the container runs on (docs/CHAOS.md): the simulator
/// keeps its historical grammar (partition/heal/down/up/loss by node
/// pair), ChaosTransport gets the per-peer rule grammar
/// (loss/dup/reorder/delay/throttle/partition/heal/reset/seed/status).
/// Both the `chaos` management command and POST /api/v1/chaos route
/// through here, so simulator and TCP runs are driven by one grammar.
/// Returns the human-readable confirmation, or InvalidArgument with a
/// usage string.
Result<std::string> ExecuteChaosCommand(Transport* transport,
                                        const std::string& args);

}  // namespace gsn::network

#endif  // GSN_NETWORK_CHAOS_TRANSPORT_H_

#ifndef GSN_NETWORK_DIRECTORY_H_
#define GSN_NETWORK_DIRECTORY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::network {

/// One published virtual sensor: its hosting node, its user-definable
/// key/value metadata, and its output schema (paper §4: "virtual sensor
/// descriptions are identified by user-definable key-value pairs which
/// are published in a peer-to-peer directory so that virtual sensors
/// can be discovered and accessed based on any combination of their
/// properties").
struct DirectoryEntry {
  std::string sensor_name;
  std::string node_id;
  std::map<std::string, std::string> predicates;
  Schema output_schema;

  /// True if every (key, val) in `query` matches this entry's
  /// predicates; the implicit keys `name` and `node` match the sensor
  /// and host names. Matching is case-insensitive on both sides.
  bool Matches(const std::map<std::string, std::string>& query) const;

  std::string Encode() const;
  static Result<DirectoryEntry> Decode(std::string_view data);
};

/// A container's local replica of the global directory. Each container
/// publishes its sensors by broadcasting directory messages to its
/// peers (gossip-style full replication — the behaviour of the small
/// deployments in the paper's demo); lookups are answered locally, so
/// discovery latency is the propagation delay of the last publish.
///
/// Thread-safe.
class DirectoryService {
 public:
  DirectoryService() = default;

  DirectoryService(const DirectoryService&) = delete;
  DirectoryService& operator=(const DirectoryService&) = delete;

  /// Inserts or replaces the entry for (node_id, sensor_name).
  void Upsert(DirectoryEntry entry);
  /// Removes the entry for (node_id, sensor_name); idempotent.
  void Remove(const std::string& node_id, const std::string& sensor_name);
  /// Drops every entry hosted by `node_id` (node departure).
  void RemoveNode(const std::string& node_id);

  /// All entries matching every predicate in `query`, sorted by
  /// (node, sensor) for determinism. An empty query matches everything.
  std::vector<DirectoryEntry> Discover(
      const std::map<std::string, std::string>& query) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  // Keyed by (node_id, sensor_name).
  std::map<std::pair<std::string, std::string>, DirectoryEntry> entries_;
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_DIRECTORY_H_

#include "gsn/network/simulator.h"

#include <algorithm>

namespace gsn::network {

NetworkSimulator::NetworkSimulator(uint64_t seed,
                                   telemetry::MetricRegistry* metrics)
    : rng_(seed) {
  telemetry::MetricRegistry* registry = metrics;
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<telemetry::MetricRegistry>();
    registry = owned_metrics_.get();
  }
  sent_ = registry->GetCounter("gsn_network_sent_total", {},
                               "Messages submitted to the simulated network");
  delivered_ = registry->GetCounter("gsn_network_delivered_total", {},
                                    "Messages delivered to their node");
  dropped_ = registry->GetCounter(
      "gsn_network_dropped_total", {},
      "Messages lost to link loss or departed nodes");
  bytes_sent_ = registry->GetCounter("gsn_network_bytes_sent_total", {},
                                     "Payload bytes submitted");
  delivery_micros_ = registry->GetHistogram(
      "gsn_network_delivery_micros", {},
      "Simulated delivery latency (deliver_at - sent_at)");
}

Status NetworkSimulator::RegisterNode(const std::string& node_id,
                                      NetworkNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.count(node_id)) {
    return Status::AlreadyExists("node already registered: " + node_id);
  }
  nodes_[node_id] = node;
  return Status::OK();
}

Status NetworkSimulator::UnregisterNode(const std::string& node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.erase(node_id) == 0) {
    return Status::NotFound("no such node: " + node_id);
  }
  return Status::OK();
}

std::vector<std::string> NetworkSimulator::NodeIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

void NetworkSimulator::SetDefaultLink(const LinkConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  default_link_ = config;
}

void NetworkSimulator::SetLink(const std::string& from, const std::string& to,
                               const LinkConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  links_[{from, to}] = config;
}

const NetworkSimulator::LinkConfig& NetworkSimulator::LinkFor(
    const std::string& from, const std::string& to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

// ------------------------------------------------------- Fault injection

bool NetworkSimulator::FaultBlocksLocked(const std::string& from,
                                         const std::string& to) const {
  if (down_nodes_.count(from) || down_nodes_.count(to)) return true;
  return partitions_.count(from < to ? std::make_pair(from, to)
                                     : std::make_pair(to, from)) > 0;
}

void NetworkSimulator::SetPartitioned(const std::string& a,
                                      const std::string& b, bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (partitioned) {
    partitions_.insert(std::move(key));
  } else {
    partitions_.erase(key);
  }
}

void NetworkSimulator::SetNodeDown(const std::string& node_id, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down) {
    down_nodes_.insert(node_id);
  } else {
    down_nodes_.erase(node_id);
  }
}

bool NetworkSimulator::IsNodeDown(const std::string& node_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return down_nodes_.count(node_id) > 0;
}

void NetworkSimulator::SetLoss(const std::string& from, const std::string& to,
                               double loss_probability) {
  std::lock_guard<std::mutex> lock(mu_);
  LinkConfig link = LinkFor(from, to);
  link.loss_probability = loss_probability;
  links_[{from, to}] = link;
}

void NetworkSimulator::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.clear();
  down_nodes_.clear();
}

void NetworkSimulator::ScheduleAt(Timestamp at, std::function<void()> action) {
  std::lock_guard<std::mutex> lock(mu_);
  ScheduledAction scheduled;
  scheduled.at = at;
  scheduled.sequence = action_sequence_++;
  scheduled.action = std::move(action);
  auto pos = std::upper_bound(
      actions_.begin(), actions_.end(), scheduled,
      [](const ScheduledAction& x, const ScheduledAction& y) {
        return x.at != y.at ? x.at < y.at : x.sequence < y.sequence;
      });
  actions_.insert(pos, std::move(scheduled));
}

Status NetworkSimulator::Send(Timestamp now, const std::string& from,
                              const std::string& to, const std::string& topic,
                              std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!nodes_.count(to)) {
    return Status::NotFound("unknown destination node: " + to);
  }
  sent_->Increment();
  bytes_sent_->Increment(static_cast<int64_t>(payload.size()));
  if (FaultBlocksLocked(from, to)) {
    dropped_->Increment();
    return Status::OK();  // faults are silent, like a cable pull
  }
  const LinkConfig& link = LinkFor(from, to);
  if (link.loss_probability > 0 && rng_.NextBool(link.loss_probability)) {
    dropped_->Increment();
    return Status::OK();  // loss is silent, like UDP
  }
  QueuedMessage qm;
  qm.message.from = from;
  qm.message.to = to;
  qm.message.topic = topic;
  qm.message.payload = std::move(payload);
  qm.message.sent_at = now;
  qm.message.deliver_at =
      now + link.base_latency_micros +
      (link.jitter_micros > 0
           ? static_cast<Timestamp>(rng_.NextUint64(
                 static_cast<uint64_t>(link.jitter_micros) + 1))
           : 0);
  qm.sequence = sequence_++;
  queue_.push(std::move(qm));
  return Status::OK();
}

Status NetworkSimulator::Broadcast(Timestamp now, const std::string& from,
                                   const std::string& topic,
                                   const std::string& payload) {
  std::vector<std::string> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, node] : nodes_) {
      if (id != from) targets.push_back(id);
    }
  }
  for (const std::string& to : targets) {
    GSN_RETURN_IF_ERROR(Send(now, from, to, topic, payload));
  }
  return Status::OK();
}

int NetworkSimulator::DeliverUntil(Timestamp now) {
  int delivered = 0;
  for (;;) {
    Message message;
    NetworkNode* target = nullptr;
    std::function<void()> action;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const bool action_due = !actions_.empty() && actions_.front().at <= now;
      const bool message_due =
          !queue_.empty() && queue_.top().message.deliver_at <= now;
      // Interleave chaos actions with deliveries in global time order;
      // an action due at the same instant as a message runs first (the
      // fault lands before the packet).
      if (action_due &&
          (!message_due ||
           actions_.front().at <= queue_.top().message.deliver_at)) {
        action = std::move(actions_.front().action);
        actions_.erase(actions_.begin());
      } else if (message_due) {
        message = queue_.top().message;
        queue_.pop();
        auto it = nodes_.find(message.to);
        if (it == nodes_.end() ||
            FaultBlocksLocked(message.from, message.to)) {
          // Node departed, crashed, or partitioned while the message
          // was in flight: drop it.
          dropped_->Increment();
          continue;
        }
        target = it->second;
        delivered_->Increment();
        delivery_micros_->Observe(message.deliver_at - message.sent_at);
      } else {
        break;
      }
    }
    // Run handlers/actions outside the lock: both commonly call back
    // into the simulator (Send, SetPartitioned, ...).
    if (action) {
      action();
      continue;
    }
    target->OnMessage(message);
    ++delivered;
  }
  return delivered;
}

NetworkSimulator::Stats NetworkSimulator::stats() const {
  Stats stats;
  stats.sent = sent_->Value();
  stats.delivered = delivered_->Value();
  stats.dropped = dropped_->Value();
  stats.bytes_sent = bytes_sent_->Value();
  return stats;
}

}  // namespace gsn::network

#ifndef GSN_NETWORK_RETRY_POLICY_H_
#define GSN_NETWORK_RETRY_POLICY_H_

#include <cstdint>

#include "gsn/util/clock.h"
#include "gsn/util/result.h"
#include "gsn/util/rng.h"
#include "gsn/wrappers/wrapper.h"

namespace gsn::network {

/// Retry/backoff policy shared by federation control traffic: remote
/// subscribe requests, directory publishes, and NACK/replay rounds.
/// Exponential backoff with jitter and a capped attempt count — the
/// standard shape for intermittent links, which the GSN follow-up work
/// on mobile deployments treats as the common case, not the exception.
///
/// Plain value type; callers hold their own attempt counters and ask
/// BackoffForAttempt(n) how long to wait after the n-th failure.
struct RetryPolicy {
  /// Gives up (and lets higher layers fail over / abandon) after this
  /// many attempts. Attempt numbers are 1-based.
  int max_attempts = 8;
  Timestamp initial_backoff_micros = 100 * kMicrosPerMilli;
  Timestamp max_backoff_micros = 5 * kMicrosPerSecond;
  double multiplier = 2.0;
  /// Jitter fraction in [0, 1]: the computed backoff is scaled by a
  /// uniform factor in [1 - jitter, 1 + jitter]. Deterministic when the
  /// caller's Rng is seeded (all federation tests are).
  double jitter = 0.2;

  /// Backoff to wait after attempt `attempt` (1-based) failed. Grows
  /// exponentially, saturates at max_backoff_micros, then jitters.
  /// `rng` may be null for the undithered value.
  Timestamp BackoffForAttempt(int attempt, Rng* rng) const;

  /// True once `attempt` attempts have been spent.
  bool Exhausted(int attempt) const { return attempt >= max_attempts; }

  /// Parses a policy from wrapper/source parameters, starting from
  /// `defaults`. Recognized keys (all optional):
  ///   retry-max-attempts    int
  ///   retry-initial-backoff duration ("250ms", "1s"; bare int = seconds)
  ///   retry-max-backoff     duration
  ///   retry-multiplier      double >= 1
  ///   retry-jitter          double in [0, 1]
  /// Errors are typed parse errors naming the offending key.
  static Result<RetryPolicy> FromConfig(const wrappers::WrapperConfig& config,
                                        const RetryPolicy& defaults);
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_RETRY_POLICY_H_

#ifndef GSN_NETWORK_TRANSPORT_H_
#define GSN_NETWORK_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gsn/util/clock.h"
#include "gsn/util/result.h"

namespace gsn::network {

/// A message between GSN containers. `topic` selects the protocol
/// handler (directory.publish, subscribe, stream, query, ...); payload
/// bytes are Codec-encoded by the protocol layer.
struct Message {
  std::string from;
  std::string to;
  std::string topic;
  std::string payload;
  Timestamp sent_at = 0;
  Timestamp deliver_at = 0;
};

/// Receiver interface implemented by GSN containers.
class NetworkNode {
 public:
  virtual ~NetworkNode() = default;
  /// Called by the transport when a message is delivered. Handlers may
  /// send further messages but must not block. Real transports invoke
  /// this from their event-loop thread, so implementations must be
  /// internally synchronized.
  virtual void OnMessage(const Message& message) = 0;
};

/// Point-in-time view of one transport connection, surfaced by
/// GET /api/v1/transport and the `transport` management command.
struct ConnectionStats {
  /// Peer node id for the federation plane; "ip:port" for HTTP clients.
  std::string peer;
  std::string kind;   // "peer-out" | "peer-in" | "http"
  std::string state;  // "connecting" | "open" | "draining"
  /// Bytes waiting in this connection's bounded write queue.
  size_t queued_bytes = 0;
  /// HTTP requests served on this connection — the keep-alive reuse
  /// count (0 for peer-plane connections).
  int64_t requests_served = 0;
  int64_t frames_in = 0;
  int64_t frames_out = 0;
  Timestamp age_micros = 0;   // since the connection opened
  Timestamp idle_micros = 0;  // since the last byte in either direction
};

class NetworkSimulator;
class ChaosTransport;

/// The network fabric between GSN containers, extracted from the
/// simulator-coupled federation path so `gsnd` daemons can federate
/// over real sockets (docs/TRANSPORT.md). Two implementations:
///
///  - NetworkSimulator — the in-process deterministic fabric (virtual
///    time, fault injection), kept byte-for-byte for chaos tests.
///  - EpollTransport — an edge-triggered non-blocking TCP transport
///    with framed peer links, an HTTP/1.1 keep-alive role, bounded
///    per-connection write queues, and idle timeouts.
///
/// Delivery is push-based: a registered NetworkNode's OnMessage fires
/// when a message arrives (on Pump for the simulator, on the event
/// loop thread for real transports). Send/Broadcast are asynchronous
/// and may drop — the resilience layer above (sequence numbers,
/// NACK/replay, heartbeats) owns end-to-end delivery.
class Transport {
 public:
  /// Close/error notification: `peer` is the connection's peer id (or
  /// address) and `error` the reason the transport gave up on it.
  using ErrorCallback =
      std::function<void(const std::string& peer, const Status& error)>;
  /// Fired when a peer link becomes live (connect completed, or an
  /// inbound connection identified its node). Containers use it to
  /// re-announce their directory to the newcomer.
  using PeerUpCallback = std::function<void(const std::string& peer)>;

  virtual ~Transport() = default;

  /// Attaches a local delivery target under `node_id`.
  virtual Status RegisterNode(const std::string& node_id,
                              NetworkNode* node) = 0;
  virtual Status UnregisterNode(const std::string& node_id) = 0;

  /// Queues one framed message for `to`. Asynchronous: an OK status
  /// means accepted for delivery, not delivered. Backpressure: a full
  /// per-connection write queue fails the send (ResourceExhausted) and
  /// closes the connection.
  virtual Status Send(Timestamp now, const std::string& from,
                      const std::string& to, const std::string& topic,
                      std::string payload) = 0;

  /// Broadcasts to every reachable peer (and co-located node) except
  /// `from`.
  virtual Status Broadcast(Timestamp now, const std::string& from,
                           const std::string& topic,
                           const std::string& payload) = 0;

  /// Drives deferred delivery up to `now`; returns messages delivered.
  /// The simulator delivers its due queue here; real transports deliver
  /// from their own event loop and return 0.
  virtual int Pump(Timestamp now) = 0;

  /// Live connection snapshot (empty for the simulator: its links are
  /// logical, not connections).
  virtual std::vector<ConnectionStats> Connections() const { return {}; }

  /// Downcast hook for the chaos surfaces (`chaos` management command,
  /// fault-injection tests): non-null only for the simulator.
  virtual NetworkSimulator* AsSimulator() { return nullptr; }

  /// Downcast hook for the chaos decorator (docs/CHAOS.md): non-null
  /// only for ChaosTransport (decorators forward to their inner
  /// transport, so a wrapped simulator still answers AsSimulator).
  virtual ChaosTransport* AsChaos() { return nullptr; }

  /// Forcibly tears down every live connection to `peer` (abrupt
  /// close, no drain) — the chaos "connection reset" fault. The peer
  /// plane redials with backoff afterwards. Transports without real
  /// connections report InvalidArgument.
  virtual Status ResetPeer(const std::string& peer) {
    return Status::InvalidArgument("reset not supported on '" +
                                   transport_name() + "' (peer " + peer + ")");
  }

  /// Implementation name for status surfaces: "simulator" | "epoll".
  virtual std::string transport_name() const = 0;

  virtual void SetErrorCallback(ErrorCallback /*callback*/) {}
  virtual void SetPeerUpCallback(PeerUpCallback /*callback*/) {}
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_TRANSPORT_H_

#ifndef GSN_NETWORK_REPLAY_BUFFER_H_
#define GSN_NETWORK_REPLAY_BUFFER_H_

#include <cstdint>
#include <map>
#include <string>

namespace gsn::network {

/// Bounded per-subscriber buffer of encoded StreamDelivery payloads,
/// keyed by sequence number, kept by the *producer* so a subscriber can
/// NACK gaps and have the missing deliveries replayed. This is the
/// paper's "temporary disconnections ... handled by buffering" applied
/// to the inter-container stream: at-least-once delivery from this
/// buffer plus receiver-side dedup gives exactly-once admission.
///
/// When the byte budget is exceeded the oldest payloads are evicted;
/// a NACK for an evicted sequence cannot be served and the subscriber
/// eventually abandons the gap (counted, never silent).
///
/// Not internally synchronized: the container guards its subscriber
/// table (and these buffers) with its own mutex.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t max_bytes = 1 << 20) : max_bytes_(max_bytes) {}

  /// Stores the payload for `seq`, evicting oldest entries while over
  /// budget. A payload larger than the whole budget is stored alone
  /// (the buffer never refuses the newest delivery).
  void Put(uint64_t seq, std::string payload) {
    bytes_ += payload.size();
    entries_[seq] = std::move(payload);
    while (entries_.size() > 1 && bytes_ > max_bytes_) {
      auto oldest = entries_.begin();
      bytes_ -= oldest->second.size();
      entries_.erase(oldest);
      ++evicted_;
    }
  }

  /// The payload for `seq`, or null when unknown or already evicted.
  const std::string* Get(uint64_t seq) const {
    auto it = entries_.find(seq);
    return it == entries_.end() ? nullptr : &it->second;
  }

  size_t size() const { return entries_.size(); }
  size_t bytes() const { return bytes_; }
  size_t max_bytes() const { return max_bytes_; }
  int64_t evicted_total() const { return evicted_; }
  /// Lowest / highest buffered sequence (0 when empty).
  uint64_t oldest_seq() const {
    return entries_.empty() ? 0 : entries_.begin()->first;
  }
  uint64_t newest_seq() const {
    return entries_.empty() ? 0 : entries_.rbegin()->first;
  }

 private:
  size_t max_bytes_;
  std::map<uint64_t, std::string> entries_;
  size_t bytes_ = 0;
  int64_t evicted_ = 0;
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_REPLAY_BUFFER_H_

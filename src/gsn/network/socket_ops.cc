#include "gsn/network/socket_ops.h"

#include <cerrno>
#include <cstddef>

namespace gsn::network {

int SocketOps::Socket(int domain, int type, int protocol) {
  return ::socket(domain, type, protocol);
}

int SocketOps::Connect(int fd, const sockaddr* addr, socklen_t len) {
  return ::connect(fd, addr, len);
}

int SocketOps::Accept4(int fd, sockaddr* addr, socklen_t* len, int flags) {
  return ::accept4(fd, addr, len, flags);
}

ssize_t SocketOps::Recv(int fd, void* buf, size_t len, int flags) {
  return ::recv(fd, buf, len, flags);
}

ssize_t SocketOps::Send(int fd, const void* buf, size_t len, int flags) {
  return ::send(fd, buf, len, flags);
}

SocketOps* SocketOps::Real() {
  static SocketOps* real = new SocketOps();
  return real;
}

FaultInjectingSocketOps::FaultInjectingSocketOps(Config config)
    : config_(config),
      rng_(config.seed),
      emfile_remaining_(config.accept_emfile_burst) {}

void FaultInjectingSocketOps::ArmAcceptEmfile(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  emfile_remaining_ += n;
}

int FaultInjectingSocketOps::Connect(int fd, const sockaddr* addr,
                                     socklen_t len) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rng_.NextBool(config_.connect_refuse_rate)) {
      connect_faults_.fetch_add(1);
      errno = ECONNREFUSED;
      return -1;
    }
    if (rng_.NextBool(config_.connect_stall_rate)) {
      // Claim an in-flight connect without dialing: the socket never
      // becomes writable with SO_ERROR==0, so only a transport-side
      // connect deadline can reclaim it.
      connect_faults_.fetch_add(1);
      errno = EINPROGRESS;
      return -1;
    }
  }
  return SocketOps::Connect(fd, addr, len);
}

int FaultInjectingSocketOps::Accept4(int fd, sockaddr* addr, socklen_t* len,
                                     int flags) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (emfile_remaining_ > 0) {
      --emfile_remaining_;
      accept_faults_.fetch_add(1);
      errno = EMFILE;
      return -1;
    }
  }
  return SocketOps::Accept4(fd, addr, len, flags);
}

ssize_t FaultInjectingSocketOps::Recv(int fd, void* buf, size_t len,
                                      int flags) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rng_.NextBool(config_.recv_eintr_rate)) {
      recv_faults_.fetch_add(1);
      errno = EINTR;
      return -1;
    }
    if (rng_.NextBool(config_.recv_eagain_rate)) {
      recv_faults_.fetch_add(1);
      errno = EAGAIN;
      return -1;
    }
    if (rng_.NextBool(config_.recv_reset_rate)) {
      recv_faults_.fetch_add(1);
      errno = ECONNRESET;
      return -1;
    }
  }
  return SocketOps::Recv(fd, buf, len, flags);
}

ssize_t FaultInjectingSocketOps::Send(int fd, const void* buf, size_t len,
                                      int flags) {
  size_t effective_len = len;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rng_.NextBool(config_.send_eintr_rate)) {
      send_faults_.fetch_add(1);
      errno = EINTR;
      return -1;
    }
    if (rng_.NextBool(config_.send_eagain_rate)) {
      send_faults_.fetch_add(1);
      errno = EAGAIN;
      return -1;
    }
    if (rng_.NextBool(config_.send_reset_rate)) {
      send_faults_.fetch_add(1);
      errno = ECONNRESET;
      return -1;
    }
    if (len > 1 && rng_.NextBool(config_.short_write_rate)) {
      short_writes_.fetch_add(1);
      effective_len = 1 + static_cast<size_t>(rng_.NextUint64(len - 1));
    }
  }
  return SocketOps::Send(fd, buf, effective_len, flags);
}

}  // namespace gsn::network

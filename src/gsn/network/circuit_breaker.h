#ifndef GSN_NETWORK_CIRCUIT_BREAKER_H_
#define GSN_NETWORK_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <string>

#include "gsn/util/clock.h"

namespace gsn::network {

/// Per-peer circuit breaker (closed -> open -> half-open). The
/// container keeps one per known peer, feeds it heartbeat evidence, and
/// consults it before sending: an open circuit pauses stream/control
/// traffic to the peer and triggers directory re-resolution so
/// `wrapper="remote"` sources can fail over to another producer.
///
/// The breaker is a passive state machine under virtual time: kOpen is
/// stored with its opening timestamp, and kHalfOpen is *derived* — once
/// `open_duration` has elapsed, StateAt() reports half-open, meaning
/// one probe round of traffic may flow. A success in any state closes
/// the circuit; a failure while half-open re-opens it (and re-arms the
/// timer).
///
/// Not internally synchronized: the owner serializes access (the
/// container guards its peer table with its own mutex).
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Config {
    /// Consecutive failures before the circuit opens.
    int failure_threshold = 3;
    /// How long an open circuit blocks traffic before allowing a
    /// half-open probe.
    Timestamp open_duration_micros = 5 * kMicrosPerSecond;
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Config config) : config_(config) {}

  /// The effective state at `now` (derives half-open from elapsed time;
  /// does not mutate).
  State StateAt(Timestamp now) const {
    if (state_ != State::kOpen) return State::kClosed;
    return now - opened_at_ >= config_.open_duration_micros ? State::kHalfOpen
                                                            : State::kOpen;
  }

  /// True when traffic may be sent: closed, or half-open (probe).
  bool AllowSend(Timestamp now) const {
    return StateAt(now) != State::kOpen;
  }

  /// Evidence of a live peer: closes the circuit and clears the
  /// failure streak. Returns true when this closed a non-closed
  /// circuit (recovery edge, for logging/metrics).
  bool RecordSuccess() {
    consecutive_failures_ = 0;
    if (state_ == State::kOpen) {
      state_ = State::kClosed;
      return true;
    }
    return false;
  }

  /// Evidence of a dead peer (missed heartbeats, send errors). Returns
  /// true when this call opened (or re-opened) the circuit — the edge
  /// on which the container starts failover.
  bool RecordFailure(Timestamp now) {
    if (state_ == State::kOpen) {
      if (StateAt(now) == State::kHalfOpen) {
        // Probe failed: re-open and re-arm the timer.
        opened_at_ = now;
        ++opened_total_;
        return true;
      }
      return false;  // already open, still waiting
    }
    if (++consecutive_failures_ >= config_.failure_threshold) {
      state_ = State::kOpen;
      opened_at_ = now;
      consecutive_failures_ = 0;
      ++opened_total_;
      return true;
    }
    return false;
  }

  const Config& config() const { return config_; }
  /// Times the circuit transitioned into open over its lifetime.
  int64_t opened_total() const { return opened_total_; }

  static const char* StateName(State state) {
    switch (state) {
      case State::kClosed:
        return "closed";
      case State::kOpen:
        return "open";
      case State::kHalfOpen:
        return "half-open";
    }
    return "unknown";
  }

 private:
  Config config_;
  State state_ = State::kClosed;  // kClosed or kOpen; half-open derived
  Timestamp opened_at_ = 0;
  int consecutive_failures_ = 0;
  int64_t opened_total_ = 0;
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_CIRCUIT_BREAKER_H_

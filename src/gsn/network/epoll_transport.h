#ifndef GSN_NETWORK_EPOLL_TRANSPORT_H_
#define GSN_NETWORK_EPOLL_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gsn/network/http_server.h"
#include "gsn/network/retry_policy.h"
#include "gsn/network/socket_ops.h"
#include "gsn/network/transport.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/util/clock.h"
#include "gsn/util/result.h"
#include "gsn/util/rng.h"

namespace gsn::network {

/// The real-socket Transport (docs/TRANSPORT.md): one edge-triggered
/// epoll event loop drives every connection of a process without
/// blocking — the C10k design the paper's "access via the Web" layer
/// needs at scale. Two planes share the loop:
///
///  - Peer plane (`ListenPeer` + `AddPeer`): length-prefixed frames
///    carrying Transport messages between containers. Outbound links
///    dial lazily on first Send and redial on the next Send after a
///    failure; inbound links learn their peer's node id from the first
///    frame, and replies prefer that live connection over dialing back
///    — which is what lets a consumer behind a NAT-style forwarder
///    subscribe to a producer that cannot connect back (the sensd
///    gateway topology).
///  - HTTP plane (`ListenHttp`): incremental HTTP/1.1 parsing with
///    keep-alive and pipelining; the handler runs on the loop thread,
///    so handlers must not block indefinitely (the web interface
///    copies snapshots out and serializes without container locks).
///
/// Backpressure: every connection owns a bounded write queue
/// (`max_write_queue_bytes`). A send that would overflow it closes the
/// connection and counts an overflow — slow readers are disconnected
/// rather than allowed to pin memory, and the federation resilience
/// layer (sequence numbers, NACK/replay) re-delivers what the closed
/// link lost. Idle connections (no bytes either way for
/// `idle_timeout_micros`, which also bounds stalled half-requests) are
/// reaped by a periodic sweep.
///
/// Thread-safe; delivery callbacks run on the event-loop thread.
class EpollTransport : public Transport {
 public:
  struct Options {
    /// Per-connection write queue bound: a send finding the queue
    /// already at the bound closes the connection (ResourceExhausted).
    /// One item may exceed the bound, so an oversized response still
    /// reaches a healthy reader.
    size_t max_write_queue_bytes = 4 * 1024 * 1024;
    /// Peer-plane frames above this are a protocol error (close).
    size_t max_frame_bytes = 16 * 1024 * 1024;
    /// Connections idle this long are closed (0 disables). Also serves
    /// as the read timeout for stalled half-written requests.
    Timestamp idle_timeout_micros = 60 * kMicrosPerSecond;
    /// gsn_transport_* metrics register here when non-null, labelled
    /// {role=<metrics_role>} so a daemon's peer and HTTP transports
    /// stay distinct families.
    telemetry::MetricRegistry* metrics = nullptr;
    std::string metrics_role = "peer";
    /// Syscall seam (docs/CHAOS.md): every accept/connect/recv/send
    /// goes through this, so tests inject EINTR/EAGAIN storms, short
    /// writes, mid-frame resets, and EMFILE. Null uses the real
    /// syscalls; the instance must outlive the transport.
    SocketOps* socket_ops = nullptr;
    /// Non-blocking connects that have not completed within this are
    /// failed (counted as dial failures) and redialed with backoff.
    /// 0 disables the deadline.
    Timestamp connect_timeout_micros = 5 * kMicrosPerSecond;
    /// After EMFILE/ENFILE on accept, the listen fd is unregistered
    /// from epoll and re-armed this much later — pausing accepts
    /// instead of hot-spinning on level-triggered readiness.
    Timestamp accept_rearm_micros = 100 * kMicrosPerMilli;
    /// Automatic redial of failed dial-table peer links: exponential
    /// backoff per RetryPolicy, attempts reset when a connect
    /// completes. Once exhausted, auto-redial stops until the next
    /// explicit Send restarts the cycle.
    bool auto_redial = true;
    RetryPolicy redial_policy;
    /// Seed for redial backoff jitter (deterministic in tests).
    uint64_t redial_seed = 1;
  };

  using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

  EpollTransport();
  explicit EpollTransport(Options options);
  ~EpollTransport() override;

  EpollTransport(const EpollTransport&) = delete;
  EpollTransport& operator=(const EpollTransport&) = delete;

  /// Creates the epoll instance and starts the event loop. Call before
  /// ListenPeer/ListenHttp/AddPeer/Send.
  Status Start();
  /// Stops the loop and closes every socket. Idempotent.
  void Stop();
  bool running() const { return running_.load(); }

  /// Binds the framed peer plane on 127.0.0.1:`port` (0 = ephemeral).
  Status ListenPeer(uint16_t port);
  uint16_t peer_port() const { return peer_port_.load(); }

  /// Binds the HTTP plane on 127.0.0.1:`port` (0 = ephemeral);
  /// `handler` serves every request on the loop thread.
  Status ListenHttp(uint16_t port, HttpHandler handler);
  uint16_t http_port() const { return http_port_.load(); }

  /// Static dial table: Send/Broadcast to `node_id` connects to
  /// `host`:`port` when no live connection exists.
  void AddPeer(const std::string& node_id, const std::string& host,
               uint16_t port);

  // -- Transport ------------------------------------------------------------

  Status RegisterNode(const std::string& node_id, NetworkNode* node) override;
  Status UnregisterNode(const std::string& node_id) override;
  Status Send(Timestamp now, const std::string& from, const std::string& to,
              const std::string& topic, std::string payload) override;
  Status Broadcast(Timestamp now, const std::string& from,
                   const std::string& topic,
                   const std::string& payload) override;
  /// Real transports deliver from the event loop; Pump is a no-op.
  int Pump(Timestamp /*now*/) override { return 0; }
  std::vector<ConnectionStats> Connections() const override;
  std::string transport_name() const override { return "epoll"; }
  void SetErrorCallback(ErrorCallback callback) override;
  void SetPeerUpCallback(PeerUpCallback callback) override;
  /// Abruptly tears down every live connection to `peer` (the chaos
  /// "connection reset" fault). Closes happen on the loop thread; the
  /// peer plane redials with backoff afterwards.
  Status ResetPeer(const std::string& peer) override;

  // -- Introspection (tests, status surfaces) -------------------------------

  size_t connection_count() const;
  int64_t accepted_total() const { return accepted_total_.load(); }
  int64_t timeouts_total() const { return timeouts_total_.load(); }
  int64_t overflows_total() const { return overflows_total_.load(); }
  int64_t connect_failures_total() const {
    return connect_failures_total_.load();
  }
  int64_t http_requests_total() const { return http_requests_total_.load(); }
  int64_t frames_delivered_total() const {
    return frames_delivered_total_.load();
  }
  int64_t accept_errors_total() const { return accept_errors_total_.load(); }
  int64_t dial_failures_total() const { return dial_failures_total_.load(); }
  int64_t reconnects_total() const { return reconnects_total_.load(); }
  int64_t resets_total() const { return resets_total_.load(); }

 private:
  enum class ConnKind { kPeerOut, kPeerIn, kHttp };

  /// One socket. Created under mu_; mutated under mu_; destroyed only
  /// on the loop thread (so the loop may hold a Conn* across unlocked
  /// handler calls).
  struct Conn {
    int fd = -1;
    ConnKind kind = ConnKind::kPeerIn;
    /// Peer node id (peer plane; empty on inbound links until the
    /// first frame identifies the sender) or "ip:port" (HTTP plane).
    std::string peer;
    bool connecting = false;   // non-blocking connect in flight
    bool read_closed = false;  // peer half-closed its write side
    bool want_close = false;   // close once the write queue drains
    std::string inbuf;
    std::deque<std::string> outq;  // front may be partially written
    size_t out_off = 0;
    size_t out_bytes = 0;  // queued bytes across outq
    int64_t frames_in = 0;
    int64_t frames_out = 0;
    int64_t requests_served = 0;
    Timestamp opened_steady = 0;
    Timestamp last_activity_steady = 0;
    /// Deadline for an in-flight non-blocking connect (0 = none); a
    /// connecting conn past it is failed and redialed with backoff.
    Timestamp connect_deadline_steady = 0;
  };

  /// Redial bookkeeping for one dial-table peer whose link failed.
  struct DialState {
    int attempts = 0;  // consecutive failures (resets on success)
    /// When the loop should redial; meaningful while auto_pending.
    Timestamp next_redial_steady = 0;
    bool auto_pending = false;
  };

  /// A delivery decoded from a frame, dispatched outside mu_.
  struct PendingDelivery {
    NetworkNode* node = nullptr;
    Message message;
  };

  // Loop-side machinery. All sockets are closed only by the loop.
  void LoopMain();
  void HandleWake();
  void AcceptReady(int listen_fd, ConnKind kind);
  void ConnReady(int fd, uint32_t events);
  /// Reads until EAGAIN/EOF; returns false when the conn died.
  bool ReadReady(Conn* conn);
  void ProcessPeerInput(Conn* conn);
  void ProcessHttpInput(Conn* conn);
  /// Drains the write queue until EAGAIN; closes on error or when
  /// want_close hits an empty queue.
  void FlushLocked(Conn* conn);
  /// `allow_redial` is false for deliberate closes (idle reaping) that
  /// must not bounce the link back up.
  void CloseConnLocked(Conn* conn, const Status& reason,
                       bool allow_redial = true);
  void SweepIdleLocked(Timestamp steady_now);
  /// Periodic peer-plane upkeep (loop thread, ~50ms cadence): connect
  /// deadlines, due redials, paused-listener re-arm, flush retries,
  /// and a defensive EPOLL_CTL_MOD edge re-arm on peer conns (missed
  /// edges — e.g. a spurious EAGAIN — otherwise strand buffered data).
  void MaintainLocked(Timestamp steady_now);
  void FirePending();  // deliveries + callbacks queued under mu_

  // Shared helpers (any thread, mu_ held).
  Status EnqueueFrameLocked(const std::string& to, const std::string& bytes);
  /// `force` skips the backoff gate (the loop redialing a due peer).
  Conn* DialLocked(const std::string& node_id, bool force);
  /// Counts a dial failure, surfaces it on the error callback with the
  /// peer id and errno string, and schedules the backoff redial.
  void NoteDialFailureLocked(const std::string& peer, const Status& reason);
  /// A completed connect: counts a reconnect when failures preceded it
  /// and clears the peer's redial state.
  void NoteDialSuccessLocked(const std::string& peer);
  void ScheduleRedialLocked(const std::string& peer, Timestamp steady_now);
  void WakeLoop();
  void UpdateGaugesLocked();

  static Result<int> MakeListener(uint16_t port, uint16_t* bound_port);

  const Options options_;
  SocketOps* const ops_;  // options_.socket_ops or SocketOps::Real()

  std::atomic<bool> running_{false};
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<int> peer_listen_fd_{-1};
  std::atomic<int> http_listen_fd_{-1};
  std::atomic<uint16_t> peer_port_{0};
  std::atomic<uint16_t> http_port_{0};
  std::thread loop_;

  mutable std::mutex mu_;
  HttpHandler http_handler_;                      // guarded by mu_
  ErrorCallback error_callback_;                  // guarded by mu_
  PeerUpCallback peer_up_callback_;               // guarded by mu_
  std::map<std::string, NetworkNode*> local_nodes_;  // guarded by mu_
  std::map<int, std::unique_ptr<Conn>> conns_;       // guarded by mu_
  /// node id -> fd of the preferred live link (latest learned wins).
  std::map<std::string, int> peer_conns_;  // guarded by mu_
  /// Static dial table: node id -> (host, port).
  std::map<std::string, std::pair<std::string, uint16_t>> peer_addrs_;
  /// Fds with freshly queued output (Send from non-loop threads).
  std::set<int> flush_pending_;  // guarded by mu_
  /// Fds queued for forced close by ResetPeer (closed on loop thread).
  std::set<int> reset_pending_;  // guarded by mu_
  /// Redial bookkeeping per failed dial-table peer.
  std::map<std::string, DialState> dial_states_;  // guarded by mu_
  Rng redial_rng_;  // guarded by mu_ (backoff jitter)
  /// Listen fds paused after EMFILE, with their re-arm deadline.
  std::map<int, Timestamp> paused_listeners_;  // guarded by mu_
  /// True once the peer plane is in use (listener bound or dial table
  /// non-empty): the loop then ticks at the maintenance cadence.
  std::atomic<bool> peer_plane_active_{false};
  /// Deliveries/callbacks accumulated under mu_, fired by FirePending.
  std::vector<PendingDelivery> pending_deliveries_;   // guarded by mu_
  std::vector<std::string> pending_peer_ups_;         // guarded by mu_
  std::vector<std::pair<std::string, Status>> pending_errors_;
  /// Running total of queued write bytes across connections.
  size_t total_out_bytes_ = 0;  // guarded by mu_
  Timestamp last_sweep_steady_ = 0;     // loop thread only
  Timestamp last_maintain_steady_ = 0;  // loop thread only

  std::atomic<int64_t> accepted_total_{0};
  std::atomic<int64_t> timeouts_total_{0};
  std::atomic<int64_t> overflows_total_{0};
  std::atomic<int64_t> connect_failures_total_{0};
  std::atomic<int64_t> http_requests_total_{0};
  std::atomic<int64_t> frames_delivered_total_{0};
  std::atomic<int64_t> accept_errors_total_{0};
  std::atomic<int64_t> dial_failures_total_{0};
  std::atomic<int64_t> reconnects_total_{0};
  std::atomic<int64_t> resets_total_{0};

  // gsn_transport_* (null when no registry was injected).
  std::shared_ptr<telemetry::Gauge> connections_gauge_;
  std::shared_ptr<telemetry::Counter> accepted_counter_;
  std::shared_ptr<telemetry::Gauge> queued_bytes_gauge_;
  std::shared_ptr<telemetry::Counter> timeouts_counter_;
  std::shared_ptr<telemetry::Counter> overflows_counter_;
  std::shared_ptr<telemetry::Counter> http_requests_counter_;
  std::shared_ptr<telemetry::Counter> accept_errors_counter_;
  std::shared_ptr<telemetry::Counter> dial_failures_counter_;
  std::shared_ptr<telemetry::Counter> reconnects_counter_;
  std::shared_ptr<telemetry::Counter> resets_counter_;
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_EPOLL_TRANSPORT_H_

#ifndef GSN_NETWORK_SOCKET_OPS_H_
#define GSN_NETWORK_SOCKET_OPS_H_

#include <sys/epoll.h>
#include <sys/socket.h>

#include <atomic>
#include <cstdint>
#include <mutex>

#include "gsn/util/rng.h"

namespace gsn::network {

/// Syscall seam for EpollTransport (docs/CHAOS.md). Every socket
/// operation the transport performs goes through one of these virtual
/// wrappers, so tests can interpose deterministic syscall-level faults
/// — EINTR/EAGAIN storms, short writes, ECONNRESET mid-frame, EMFILE
/// on accept — without kernels, namespaces, or LD_PRELOAD tricks.
///
/// The base class IS the real implementation (thin passthroughs to the
/// syscalls); FaultInjectingSocketOps below decorates it. Instances
/// must outlive every transport using them.
class SocketOps {
 public:
  virtual ~SocketOps() = default;

  virtual int Socket(int domain, int type, int protocol);
  virtual int Connect(int fd, const sockaddr* addr, socklen_t len);
  virtual int Accept4(int fd, sockaddr* addr, socklen_t* len, int flags);
  virtual ssize_t Recv(int fd, void* buf, size_t len, int flags);
  virtual ssize_t Send(int fd, const void* buf, size_t len, int flags);

  /// Process-wide real instance (the default when EpollTransport's
  /// Options carry no explicit seam).
  static SocketOps* Real();
};

/// Deterministic syscall-fault decorator: each rate is the probability
/// (seeded Bernoulli, one draw per call site in call order) that the
/// corresponding fault is injected *instead of* performing the real
/// syscall — except short writes, which perform a real send of a
/// truncated length (the classic partial-write path). Counters record
/// every injected fault so tests can assert the storm actually
/// happened. Thread-safe (EpollTransport calls Connect from sender
/// threads and everything else from the loop thread).
class FaultInjectingSocketOps : public SocketOps {
 public:
  struct Config {
    uint64_t seed = 1;
    /// Recv faults: EINTR/EAGAIN return -1 with errno before touching
    /// the socket (an interrupt/spurious-readiness storm); reset
    /// returns -1 ECONNRESET, the mid-frame connection teardown.
    double recv_eintr_rate = 0.0;
    double recv_eagain_rate = 0.0;
    double recv_reset_rate = 0.0;
    /// Send faults: EINTR/EAGAIN storms, ECONNRESET/EPIPE on write,
    /// and short writes (len truncated to ~half before the real send).
    double send_eintr_rate = 0.0;
    double send_eagain_rate = 0.0;
    double send_reset_rate = 0.0;
    double short_write_rate = 0.0;
    /// Connect faults: refuse fails immediately with ECONNREFUSED;
    /// stall reports EINPROGRESS without dialing, so the connect never
    /// completes and the transport's handshake deadline must fire.
    double connect_refuse_rate = 0.0;
    double connect_stall_rate = 0.0;
    /// The next `accept_emfile_burst` accepts fail with EMFILE — the
    /// fd-exhaustion scenario the accept loop must pause on instead of
    /// hot-spinning (docs/CHAOS.md).
    int accept_emfile_burst = 0;
  };

  explicit FaultInjectingSocketOps(Config config);

  int Connect(int fd, const sockaddr* addr, socklen_t len) override;
  int Accept4(int fd, sockaddr* addr, socklen_t* len, int flags) override;
  ssize_t Recv(int fd, void* buf, size_t len, int flags) override;
  ssize_t Send(int fd, const void* buf, size_t len, int flags) override;

  /// Arms `n` more EMFILE accept failures (runtime re-injection).
  void ArmAcceptEmfile(int n);

  int64_t injected_recv_faults() const { return recv_faults_.load(); }
  int64_t injected_send_faults() const { return send_faults_.load(); }
  int64_t injected_short_writes() const { return short_writes_.load(); }
  int64_t injected_connect_faults() const { return connect_faults_.load(); }
  int64_t injected_accept_faults() const { return accept_faults_.load(); }

 private:
  const Config config_;
  std::mutex mu_;
  Rng rng_;                    // guarded by mu_
  int emfile_remaining_ = 0;   // guarded by mu_
  std::atomic<int64_t> recv_faults_{0};
  std::atomic<int64_t> send_faults_{0};
  std::atomic<int64_t> short_writes_{0};
  std::atomic<int64_t> connect_faults_{0};
  std::atomic<int64_t> accept_faults_{0};
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_SOCKET_OPS_H_

#include "gsn/network/retry_policy.h"

#include <algorithm>

namespace gsn::network {

Timestamp RetryPolicy::BackoffForAttempt(int attempt, Rng* rng) const {
  if (attempt < 1) attempt = 1;
  double backoff = static_cast<double>(initial_backoff_micros);
  const double cap = static_cast<double>(max_backoff_micros);
  for (int i = 1; i < attempt && backoff < cap; ++i) backoff *= multiplier;
  backoff = std::min(backoff, cap);
  if (rng != nullptr && jitter > 0) {
    backoff *= rng->NextDouble(1.0 - jitter, 1.0 + jitter);
  }
  return std::max<Timestamp>(1, static_cast<Timestamp>(backoff));
}

Result<RetryPolicy> RetryPolicy::FromConfig(
    const wrappers::WrapperConfig& config, const RetryPolicy& defaults) {
  RetryPolicy policy = defaults;
  GSN_ASSIGN_OR_RETURN(
      int64_t attempts,
      config.GetInt("retry-max-attempts", policy.max_attempts));
  GSN_ASSIGN_OR_RETURN(policy.initial_backoff_micros,
                       config.GetDuration("retry-initial-backoff",
                                          policy.initial_backoff_micros));
  GSN_ASSIGN_OR_RETURN(
      policy.max_backoff_micros,
      config.GetDuration("retry-max-backoff", policy.max_backoff_micros));
  GSN_ASSIGN_OR_RETURN(policy.multiplier,
                       config.GetDouble("retry-multiplier", policy.multiplier));
  GSN_ASSIGN_OR_RETURN(policy.jitter,
                       config.GetDouble("retry-jitter", policy.jitter));
  if (attempts < 1) {
    return Status::InvalidArgument("param 'retry-max-attempts': must be >= 1");
  }
  policy.max_attempts = static_cast<int>(attempts);
  if (policy.initial_backoff_micros < 1) {
    return Status::InvalidArgument(
        "param 'retry-initial-backoff': must be positive");
  }
  if (policy.max_backoff_micros < policy.initial_backoff_micros) {
    return Status::InvalidArgument(
        "param 'retry-max-backoff': must be >= retry-initial-backoff");
  }
  if (policy.multiplier < 1.0) {
    return Status::InvalidArgument("param 'retry-multiplier': must be >= 1");
  }
  if (policy.jitter < 0.0 || policy.jitter > 1.0) {
    return Status::InvalidArgument("param 'retry-jitter': must be in [0, 1]");
  }
  return policy;
}

}  // namespace gsn::network

#include "gsn/network/chaos_transport.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "gsn/network/simulator.h"
#include "gsn/util/rng.h"

namespace gsn::network {

namespace {

Timestamp SteadyMicros() {
  return telemetry::SteadyClock::Instance()->NowMicros();
}

/// How long a "reorder" decision holds a frame back: long enough that
/// frames sent a few milliseconds later overtake it on loopback.
constexpr Timestamp kReorderHoldMicros = 25 * kMicrosPerMilli;

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t hash, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  return FnvMix(hash, &value, sizeof(value));
}

uint64_t FnvMix(uint64_t hash, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvMix(hash, bits);
}

uint64_t LinkHash(const std::string& peer, ChaosTransport::Direction dir) {
  uint64_t hash = FnvMix(kFnvBasis, peer.data(), peer.size());
  return FnvMix(hash, static_cast<uint64_t>(dir));
}

}  // namespace

const char* DirectionName(ChaosTransport::Direction direction) {
  return direction == ChaosTransport::Direction::kIn ? "in" : "out";
}

/// The NetworkNode the inner transport actually delivers to: routes
/// every inbound message through the owner's inbound rules before the
/// real node sees it.
class ChaosTransport::InboundShim : public NetworkNode {
 public:
  InboundShim(ChaosTransport* owner, std::string node_id, NetworkNode* target)
      : owner_(owner), node_id_(std::move(node_id)), target_(target) {}

  void OnMessage(const Message& message) override {
    owner_->OnInboundMessage(node_id_, message);
  }

  NetworkNode* target() const { return target_; }

 private:
  ChaosTransport* const owner_;
  const std::string node_id_;
  NetworkNode* const target_;
};

ChaosTransport::ChaosTransport(Transport* inner)
    : ChaosTransport(inner, Options()) {}

ChaosTransport::ChaosTransport(Transport* inner, Options options)
    : inner_(inner), metrics_(options.metrics), seed_(options.seed) {
  scheduler_ = std::thread([this] { SchedulerMain(); });
}

ChaosTransport::~ChaosTransport() {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    stopping_ = true;
  }
  sched_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

Status ChaosTransport::RegisterNode(const std::string& node_id,
                                    NetworkNode* node) {
  auto shim = std::make_unique<InboundShim>(this, node_id, node);
  GSN_RETURN_IF_ERROR(inner_->RegisterNode(node_id, shim.get()));
  std::lock_guard<std::mutex> lock(mu_);
  shims_[node_id] = std::move(shim);
  return Status::OK();
}

Status ChaosTransport::UnregisterNode(const std::string& node_id) {
  GSN_RETURN_IF_ERROR(inner_->UnregisterNode(node_id));
  std::lock_guard<std::mutex> lock(mu_);
  shims_.erase(node_id);
  return Status::OK();
}

Status ChaosTransport::Send(Timestamp now, const std::string& from,
                            const std::string& to, const std::string& topic,
                            std::string payload) {
  bool duplicate = false;
  bool reset = false;
  Timestamp wait = 0;
  bool admitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    admitted = AdmitFrameLocked(to, Direction::kOut, payload.size(),
                                SteadyMicros(), &duplicate, &reset, &wait);
  }
  if (reset) (void)inner_->ResetPeer(to);
  if (!admitted) return Status::OK();  // lost on the wire: sender can't know
  if (duplicate) {
    Schedule(SteadyMicros() + wait + kMicrosPerMilli,
             [this, now, from, to, topic, payload] {
               (void)inner_->Send(now, from, to, topic, payload);
             });
  }
  if (wait == 0) {
    return inner_->Send(now, from, to, topic, std::move(payload));
  }
  Schedule(SteadyMicros() + wait,
           [this, now, from, to, topic,
            payload = std::move(payload)]() mutable {
             (void)inner_->Send(now, from, to, topic, std::move(payload));
           });
  return Status::OK();
}

Status ChaosTransport::Broadcast(Timestamp now, const std::string& from,
                                 const std::string& topic,
                                 const std::string& payload) {
  return inner_->Broadcast(now, from, topic, payload);
}

void ChaosTransport::OnInboundMessage(const std::string& node_id,
                                      const Message& message) {
  bool duplicate = false;
  bool reset = false;
  Timestamp wait = 0;
  bool admitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    admitted =
        AdmitFrameLocked(message.from, Direction::kIn, message.payload.size(),
                         SteadyMicros(), &duplicate, &reset, &wait);
  }
  if (reset) (void)inner_->ResetPeer(message.from);
  if (!admitted) return;
  if (duplicate) {
    Schedule(SteadyMicros() + wait + kMicrosPerMilli,
             [this, node_id, message] { DeliverInbound(node_id, message); });
  }
  if (wait == 0) {
    DeliverInbound(node_id, message);
    return;
  }
  Schedule(SteadyMicros() + wait,
           [this, node_id, message] { DeliverInbound(node_id, message); });
}

void ChaosTransport::DeliverInbound(const std::string& node_id,
                                    const Message& message) {
  NetworkNode* target = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shims_.find(node_id);
    if (it == shims_.end()) return;  // unregistered while frame was held
    target = it->second->target();
  }
  target->OnMessage(message);
}

void ChaosTransport::SetRule(const std::string& peer, Direction direction,
                             const Rule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(peer, static_cast<int>(direction));
  if (rule.IsDefault()) {
    links_.erase(key);  // keep the no-rule fast path fast
    return;
  }
  LinkState& link = links_[key];
  link.rule = rule;
}

ChaosTransport::Rule ChaosTransport::GetRule(const std::string& peer,
                                             Direction direction) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(std::make_pair(peer, static_cast<int>(direction)));
  return it == links_.end() ? Rule() : it->second.rule;
}

void ChaosTransport::ClearRules(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (peer.empty()) {
    links_.clear();
    return;
  }
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->first.first == peer) {
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChaosTransport::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (auto& [key, link] : links_) {
    link.frames = 0;
    link.throttle_free_steady = 0;
  }
}

uint64_t ChaosTransport::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

std::vector<ChaosTransport::RuleEntry> ChaosTransport::Rules() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RuleEntry> out;
  out.reserve(links_.size());
  for (const auto& [key, link] : links_) {
    RuleEntry entry;
    entry.peer = key.first;
    entry.direction = static_cast<Direction>(key.second);
    entry.rule = link.rule;
    entry.frames = link.frames;
    out.push_back(std::move(entry));
  }
  return out;
}

ChaosTransport::Counters ChaosTransport::counters() const {
  Counters out;
  out.dropped = dropped_total_.load();
  out.duplicated = duplicated_total_.load();
  out.reordered = reordered_total_.load();
  out.delayed = delayed_total_.load();
  out.throttled = throttled_total_.load();
  out.partitioned = partitioned_total_.load();
  out.resets = resets_total_.load();
  return out;
}

ChaosTransport::Decision ChaosTransport::DecisionFor(const std::string& peer,
                                                     Direction direction,
                                                     uint64_t frame_index)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(std::make_pair(peer, static_cast<int>(direction)));
  const Rule rule = it == links_.end() ? Rule() : it->second.rule;
  return DecideLocked(rule, LinkHash(peer, direction), frame_index);
}

uint64_t ChaosTransport::ScheduleDigest(uint64_t frames_per_link) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t hash = FnvMix(kFnvBasis, seed_);
  for (const auto& [key, link] : links_) {  // map: deterministic order
    hash = FnvMix(hash, key.first.data(), key.first.size());
    hash = FnvMix(hash, static_cast<uint64_t>(key.second));
    hash = FnvMix(hash, link.rule.drop);
    hash = FnvMix(hash, link.rule.dup);
    hash = FnvMix(hash, link.rule.reorder);
    hash = FnvMix(hash, link.rule.reset);
    hash = FnvMix(hash, static_cast<uint64_t>(link.rule.delay_micros));
    hash = FnvMix(hash, static_cast<uint64_t>(link.rule.delay_jitter_micros));
    hash = FnvMix(hash,
                  static_cast<uint64_t>(link.rule.throttle_bytes_per_sec));
    hash = FnvMix(hash, static_cast<uint64_t>(link.rule.partitioned));
    const uint64_t link_hash = LinkHash(
        key.first, static_cast<Direction>(key.second));
    for (uint64_t i = 0; i < frames_per_link; ++i) {
      const Decision d = DecideLocked(link.rule, link_hash, i);
      const uint64_t bits = static_cast<uint64_t>(d.drop) |
                            static_cast<uint64_t>(d.dup) << 1 |
                            static_cast<uint64_t>(d.reorder) << 2 |
                            static_cast<uint64_t>(d.reset) << 3;
      hash = FnvMix(hash, bits);
      hash = FnvMix(hash, static_cast<uint64_t>(d.delay_micros));
    }
  }
  return hash;
}

ChaosTransport::Decision ChaosTransport::DecideLocked(
    const Rule& rule, uint64_t link_hash, uint64_t frame_index) const {
  // One PRNG stream per frame: the decision depends only on (seed,
  // link, frame index), never on interleaving — the determinism
  // contract in the class comment.
  Rng rng(seed_ ^ link_hash ^
          ((frame_index + 1) * 0x9e3779b97f4a7c15ULL));
  Decision d;
  d.drop = rng.NextBool(rule.drop);
  d.dup = rng.NextBool(rule.dup);
  d.reorder = rng.NextBool(rule.reorder);
  d.reset = rng.NextBool(rule.reset);
  if (rule.delay_micros > 0 || rule.delay_jitter_micros > 0) {
    d.delay_micros = rule.delay_micros;
    if (rule.delay_jitter_micros > 0) {
      d.delay_micros += static_cast<Timestamp>(
          rng.NextDouble() * static_cast<double>(rule.delay_jitter_micros));
    }
  }
  return d;
}

bool ChaosTransport::AdmitFrameLocked(const std::string& peer,
                                      Direction direction, size_t bytes,
                                      Timestamp steady_now, bool* duplicate,
                                      bool* reset, Timestamp* wait_micros) {
  auto it = links_.find(std::make_pair(peer, static_cast<int>(direction)));
  if (it == links_.end()) return true;
  LinkState& link = it->second;
  const Rule& rule = link.rule;
  const uint64_t frame_index = link.frames++;
  if (rule.partitioned) {
    CountFault("partition", &partitioned_total_);
    return false;
  }
  const Decision d = DecideLocked(rule, LinkHash(peer, direction),
                                  frame_index);
  if (d.reset) {
    *reset = true;
    CountFault("reset", &resets_total_);
    return false;  // the frame rides the torn-down connection
  }
  if (d.drop) {
    CountFault("drop", &dropped_total_);
    return false;
  }
  Timestamp wait = d.delay_micros;
  if (d.delay_micros > 0) CountFault("delay", &delayed_total_);
  if (d.reorder) {
    wait += kReorderHoldMicros;
    CountFault("reorder", &reordered_total_);
  }
  if (rule.throttle_bytes_per_sec > 0) {
    const Timestamp cost =
        static_cast<Timestamp>(bytes) * kMicrosPerSecond /
        rule.throttle_bytes_per_sec;
    const Timestamp start = std::max(steady_now, link.throttle_free_steady);
    link.throttle_free_steady = start + cost;
    const Timestamp throttle_wait = start + cost - steady_now;
    if (throttle_wait > 0) {
      wait += throttle_wait;
      CountFault("throttle", &throttled_total_);
    }
  }
  if (d.dup) {
    *duplicate = true;
    CountFault("dup", &duplicated_total_);
  }
  *wait_micros = wait;
  return true;
}

void ChaosTransport::CountFault(const char* fault,
                                std::atomic<int64_t>* counter) {
  counter->fetch_add(1);
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("gsn_chaos_injected_total", {{"fault", fault}},
                     "Frames affected by injected chaos faults")
        ->Increment();
  }
}

void ChaosTransport::Schedule(Timestamp due_steady, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (stopping_) return;
    scheduled_.push({due_steady, sched_seq_++, std::move(fn)});
  }
  sched_cv_.notify_one();
}

void ChaosTransport::SchedulerMain() {
  std::unique_lock<std::mutex> lock(sched_mu_);
  while (!stopping_) {
    if (scheduled_.empty()) {
      sched_cv_.wait(lock);
      continue;
    }
    const Timestamp now = SteadyMicros();
    const Timestamp due = scheduled_.top().due_steady;
    if (due > now) {
      sched_cv_.wait_for(lock, std::chrono::microseconds(due - now));
      continue;
    }
    // The queue owns the closure; move it out before popping.
    auto fn = std::move(const_cast<ScheduledAction&>(scheduled_.top()).fn);
    scheduled_.pop();
    lock.unlock();
    fn();
    lock.lock();
  }
}

// ----------------------------------------------------- Shared chaos grammar

namespace {

std::vector<std::string> SplitWords(const std::string& text) {
  std::vector<std::string> words;
  std::string word;
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!word.empty()) words.push_back(std::move(word));
      word.clear();
    } else {
      word.push_back(c);
    }
  }
  if (!word.empty()) words.push_back(std::move(word));
  return words;
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool ParseDouble(const std::string& word, double* out) {
  char* end = nullptr;
  *out = std::strtod(word.c_str(), &end);
  return end != word.c_str() && *end == '\0';
}

bool ParseProbability(const std::string& word, double* out) {
  return ParseDouble(word, out) && *out >= 0.0 && *out <= 1.0;
}

/// Parses a trailing direction word; defaults to both directions.
bool ParseDirections(const std::vector<std::string>& words, size_t index,
                     std::vector<ChaosTransport::Direction>* out) {
  if (index >= words.size()) {
    *out = {ChaosTransport::Direction::kIn, ChaosTransport::Direction::kOut};
    return true;
  }
  const std::string dir = ToLower(words[index]);
  if (dir == "in") {
    *out = {ChaosTransport::Direction::kIn};
  } else if (dir == "out") {
    *out = {ChaosTransport::Direction::kOut};
  } else if (dir == "both") {
    *out = {ChaosTransport::Direction::kIn, ChaosTransport::Direction::kOut};
  } else {
    return false;
  }
  return true;
}

Result<std::string> ExecuteSimulatorChaos(
    NetworkSimulator* net, const std::vector<std::string>& words) {
  const Status usage = Status::InvalidArgument(
      "usage: chaos partition <a> <b> | chaos heal [<a> <b>] | "
      "chaos down <node> | chaos up <node> | chaos loss <from> <to> <p>");
  if (words.empty()) return usage;
  const std::string sub = ToLower(words[0]);
  if (sub == "partition" && words.size() == 3) {
    net->SetPartitioned(words[1], words[2], true);
    return std::string("partitioned " + words[1] + " <-> " + words[2] + "\n");
  }
  if (sub == "heal") {
    if (words.size() == 3) {
      net->SetPartitioned(words[1], words[2], false);
      return std::string("healed " + words[1] + " <-> " + words[2] + "\n");
    }
    if (words.size() == 1) {
      net->ClearFaults();
      return std::string("cleared all partitions and downed nodes\n");
    }
    return usage;
  }
  if (sub == "down" && words.size() == 2) {
    net->SetNodeDown(words[1], true);
    return std::string("node " + words[1] + " down\n");
  }
  if (sub == "up" && words.size() == 2) {
    net->SetNodeDown(words[1], false);
    return std::string("node " + words[1] + " up\n");
  }
  if (sub == "loss" && words.size() == 4) {
    double p = 0.0;
    if (!ParseProbability(words[3], &p)) {
      return Status::InvalidArgument(
          "chaos loss takes a probability between 0 and 1");
    }
    net->SetLoss(words[1], words[2], p);
    return std::string("loss " + words[1] + " -> " + words[2] + " = " +
                       words[3] + "\n");
  }
  return usage;
}

std::string FormatRule(const ChaosTransport::RuleEntry& entry) {
  std::ostringstream out;
  out << entry.peer << " " << DirectionName(entry.direction) << ": ";
  const ChaosTransport::Rule& r = entry.rule;
  if (r.partitioned) out << "partitioned ";
  if (r.drop > 0) out << "drop=" << r.drop << " ";
  if (r.dup > 0) out << "dup=" << r.dup << " ";
  if (r.reorder > 0) out << "reorder=" << r.reorder << " ";
  if (r.reset > 0) out << "reset=" << r.reset << " ";
  if (r.delay_micros > 0 || r.delay_jitter_micros > 0) {
    out << "delay=" << r.delay_micros / kMicrosPerMilli << "ms+"
        << r.delay_jitter_micros / kMicrosPerMilli << "ms ";
  }
  if (r.throttle_bytes_per_sec > 0) {
    out << "throttle=" << r.throttle_bytes_per_sec << "B/s ";
  }
  out << "(frames=" << entry.frames << ")";
  return out.str();
}

/// Applies `update` to the rule of every (peer, direction) pair named.
template <typename Fn>
void UpdateRules(ChaosTransport* chaos, const std::string& peer,
                 const std::vector<ChaosTransport::Direction>& dirs,
                 Fn update) {
  for (const ChaosTransport::Direction dir : dirs) {
    ChaosTransport::Rule rule = chaos->GetRule(peer, dir);
    update(&rule);
    chaos->SetRule(peer, dir, rule);
  }
}

Result<std::string> ExecuteDecoratorChaos(
    ChaosTransport* chaos, const std::vector<std::string>& words) {
  const Status usage = Status::InvalidArgument(
      "usage: chaos status | chaos seed <n> | "
      "chaos loss <peer> <p> [in|out|both] | "
      "chaos dup <peer> <p> [dir] | chaos reorder <peer> <p> [dir] | "
      "chaos delay <peer> <ms> [<jitter_ms>] [dir] | "
      "chaos throttle <peer> <bytes_per_sec> [dir] | "
      "chaos partition <peer> | chaos heal [<peer>] | "
      "chaos reset <peer> [<p>]");
  if (words.empty()) return usage;
  const std::string sub = ToLower(words[0]);

  if (sub == "status" && words.size() == 1) {
    std::ostringstream out;
    const ChaosTransport::Counters c = chaos->counters();
    out << "seed " << chaos->seed() << "  digest "
        << chaos->ScheduleDigest() << "\n";
    out << "injected: drop=" << c.dropped << " dup=" << c.duplicated
        << " reorder=" << c.reordered << " delay=" << c.delayed
        << " throttle=" << c.throttled << " partition=" << c.partitioned
        << " reset=" << c.resets << "\n";
    const std::vector<ChaosTransport::RuleEntry> rules = chaos->Rules();
    if (rules.empty()) {
      out << "no rules\n";
    } else {
      for (const ChaosTransport::RuleEntry& entry : rules) {
        out << FormatRule(entry) << "\n";
      }
    }
    return out.str();
  }
  if (sub == "seed" && words.size() == 2) {
    char* end = nullptr;
    const uint64_t seed = std::strtoull(words[1].c_str(), &end, 10);
    if (end == words[1].c_str() || *end != '\0') {
      return Status::InvalidArgument("chaos seed takes an integer");
    }
    chaos->Reseed(seed);
    return std::string("reseeded to " + words[1] + "\n");
  }
  if ((sub == "loss" || sub == "dup" || sub == "reorder") &&
      (words.size() == 3 || words.size() == 4)) {
    double p = 0.0;
    if (!ParseProbability(words[2], &p)) {
      return Status::InvalidArgument("chaos " + sub +
                                     " takes a probability between 0 and 1");
    }
    std::vector<ChaosTransport::Direction> dirs;
    if (!ParseDirections(words, 3, &dirs)) return usage;
    UpdateRules(chaos, words[1], dirs, [&](ChaosTransport::Rule* rule) {
      if (sub == "loss") rule->drop = p;
      if (sub == "dup") rule->dup = p;
      if (sub == "reorder") rule->reorder = p;
    });
    return std::string(sub + " " + words[1] + " = " + words[2] + "\n");
  }
  if (sub == "delay" && words.size() >= 3 && words.size() <= 5) {
    double delay_ms = 0.0;
    if (!ParseDouble(words[2], &delay_ms) || delay_ms < 0) {
      return Status::InvalidArgument(
          "chaos delay takes a delay in milliseconds");
    }
    double jitter_ms = 0.0;
    size_t dir_index = 3;
    if (words.size() >= 4 && ParseDouble(words[3], &jitter_ms)) {
      if (jitter_ms < 0) {
        return Status::InvalidArgument("chaos delay jitter must be >= 0");
      }
      dir_index = 4;
    } else {
      jitter_ms = 0.0;
    }
    std::vector<ChaosTransport::Direction> dirs;
    if (!ParseDirections(words, dir_index, &dirs)) return usage;
    UpdateRules(chaos, words[1], dirs, [&](ChaosTransport::Rule* rule) {
      rule->delay_micros =
          static_cast<Timestamp>(delay_ms * kMicrosPerMilli);
      rule->delay_jitter_micros =
          static_cast<Timestamp>(jitter_ms * kMicrosPerMilli);
    });
    return std::string("delay " + words[1] + " = " + words[2] + "ms\n");
  }
  if (sub == "throttle" && (words.size() == 3 || words.size() == 4)) {
    char* end = nullptr;
    const long long rate = std::strtoll(words[2].c_str(), &end, 10);
    if (end == words[2].c_str() || *end != '\0' || rate < 0) {
      return Status::InvalidArgument(
          "chaos throttle takes a byte rate >= 0 (0 clears)");
    }
    std::vector<ChaosTransport::Direction> dirs;
    if (!ParseDirections(words, 3, &dirs)) return usage;
    UpdateRules(chaos, words[1], dirs, [&](ChaosTransport::Rule* rule) {
      rule->throttle_bytes_per_sec = rate;
    });
    return std::string("throttle " + words[1] + " = " + words[2] + " B/s\n");
  }
  if (sub == "partition" && words.size() == 2) {
    UpdateRules(chaos, words[1],
                {ChaosTransport::Direction::kIn,
                 ChaosTransport::Direction::kOut},
                [](ChaosTransport::Rule* rule) { rule->partitioned = true; });
    return std::string("partitioned " + words[1] + "\n");
  }
  if (sub == "heal") {
    if (words.size() == 2) {
      chaos->ClearRules(words[1]);
      return std::string("healed " + words[1] + "\n");
    }
    if (words.size() == 1) {
      chaos->ClearRules();
      return std::string("cleared all chaos rules\n");
    }
    return usage;
  }
  if (sub == "reset" && (words.size() == 2 || words.size() == 3)) {
    if (words.size() == 3) {
      double p = 0.0;
      if (!ParseProbability(words[2], &p)) {
        return Status::InvalidArgument(
            "chaos reset takes a probability between 0 and 1");
      }
      UpdateRules(chaos, words[1],
                  {ChaosTransport::Direction::kIn,
                   ChaosTransport::Direction::kOut},
                  [&](ChaosTransport::Rule* rule) { rule->reset = p; });
      return std::string("reset " + words[1] + " = " + words[2] + "\n");
    }
    const Status status = chaos->ResetPeer(words[1]);
    if (!status.ok()) return status;
    return std::string("reset " + words[1] + "\n");
  }
  return usage;
}

}  // namespace

Result<std::string> ExecuteChaosCommand(Transport* transport,
                                        const std::string& args) {
  if (transport == nullptr) {
    return Status::InvalidArgument(
        "chaos requires a network transport (standalone container has none)");
  }
  const std::vector<std::string> words = SplitWords(args);
  // The simulator keeps its historical node-pair grammar; the decorator
  // grammar is per-peer. AsSimulator is checked first so a
  // ChaosTransport-wrapped simulator still scripts the simulator.
  if (NetworkSimulator* net = transport->AsSimulator(); net != nullptr) {
    return ExecuteSimulatorChaos(net, words);
  }
  if (ChaosTransport* chaos = transport->AsChaos(); chaos != nullptr) {
    return ExecuteDecoratorChaos(chaos, words);
  }
  return Status::InvalidArgument(
      "chaos requires the simulator or a chaos transport (this container "
      "runs on '" +
      transport->transport_name() + "')");
}

}  // namespace gsn::network

#include "gsn/network/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "gsn/util/logging.h"
#include "gsn/util/strings.h"

namespace gsn::network {

namespace {

void ParseQueryString(std::string_view qs,
                      std::map<std::string, std::string>* out) {
  for (const std::string& pair : StrSplit(qs, '&')) {
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      (*out)[UrlDecode(pair)] = "";
    } else {
      (*out)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
}

void WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

/// Content-Length of the head ending at `header_end`, or an error when
/// the value does not parse.
Result<size_t> HeadContentLength(std::string_view head) {
  const std::string lowered = StrToLower(std::string(head));
  const size_t cl = lowered.find("content-length:");
  if (cl == std::string::npos) return size_t{0};
  const size_t eol = lowered.find("\r\n", cl);
  const std::string len_str =
      StrTrim(lowered.substr(cl + 15, eol - cl - 15));
  Result<int64_t> len = ParseInt64(len_str);
  if (!len.ok() || *len < 0) {
    return Status::ParseError("http: bad Content-Length");
  }
  return static_cast<size_t>(*len);
}

}  // namespace

std::string HttpRequest::QueryOr(const std::string& key,
                                 const std::string& fallback) const {
  auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

std::string HttpRequest::HeaderOr(const std::string& key,
                                  const std::string& fallback) const {
  auto it = headers.find(StrToLower(key));
  return it == headers.end() ? fallback : it->second;
}

bool HttpRequest::WantsKeepAlive() const {
  const std::string connection = StrToLower(HeaderOr("connection", ""));
  if (connection.find("close") != std::string::npos) return false;
  if (version == "HTTP/1.1") return true;
  return connection.find("keep-alive") != std::string::npos;
}

HttpResponse HttpResponse::Text(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Json(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Html(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/html; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  return Text(message + "\n", status);
}

std::string UrlDecode(std::string_view encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < encoded.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(encoded[i + 1]);
      const int lo = hex(encoded[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 410:
      return "Gone";
    case 413:
      return "Payload Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

Result<size_t> HttpRequestLength(std::string_view buffer,
                                 size_t max_head_bytes,
                                 size_t max_body_bytes) {
  const size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (buffer.size() > max_head_bytes) {
      return Status::ResourceExhausted("http: request head too large");
    }
    return size_t{0};
  }
  if (header_end > max_head_bytes) {
    return Status::ResourceExhausted("http: request head too large");
  }
  Result<size_t> body = HeadContentLength(buffer.substr(0, header_end));
  GSN_RETURN_IF_ERROR(body.status());
  if (*body > max_body_bytes) {
    return Status::ResourceExhausted("http: request body too large");
  }
  const size_t total = header_end + 4 + *body;
  if (buffer.size() < total) return size_t{0};
  return total;
}

Result<HttpRequest> ParseHttpRequest(std::string_view raw) {
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return Status::ParseError("http: no header terminator");
  }
  const std::vector<std::string> lines =
      StrSplit(raw.substr(0, header_end), '\n');
  if (lines.empty()) return Status::ParseError("http: empty request");
  // Request line: METHOD SP target SP version.
  const std::vector<std::string> parts = StrSplit(StrTrim(lines[0]), ' ');
  if (parts.size() < 2) return Status::ParseError("http: bad request line");
  HttpRequest request;
  request.method = StrToUpper(parts[0]);
  request.version = parts.size() >= 3 ? StrToUpper(parts[2]) : "HTTP/1.0";
  std::string target = parts[1];
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    ParseQueryString(target.substr(qmark + 1), &request.query);
    target = target.substr(0, qmark);
  }
  request.path = UrlDecode(target);
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string line = StrTrim(lines[i]);
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    request.headers[StrToLower(line.substr(0, colon))] =
        StrTrim(line.substr(colon + 1));
  }
  request.body = std::string(raw.substr(header_end + 4));
  return request;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

Result<HttpClientResponse> HttpFetch(uint16_t port, const std::string& method,
                                     const std::string& path,
                                     const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect() failed to 127.0.0.1:" +
                               std::to_string(port));
  }
  std::string request = method + " " + path + " HTTP/1.0\r\n";
  request += "Host: 127.0.0.1\r\n";
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  WriteAll(fd, request);
  ::shutdown(fd, SHUT_WR);

  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::ParseError("http: malformed response");
  }
  HttpClientResponse response;
  // Status line: HTTP/1.1 200 OK
  const std::vector<std::string> parts =
      StrSplit(raw.substr(0, raw.find("\r\n")), ' ');
  if (parts.size() >= 2) {
    Result<int64_t> status = ParseInt64(parts[1]);
    response.status = status.ok() ? static_cast<int>(*status) : 0;
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace gsn::network

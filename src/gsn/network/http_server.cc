#include "gsn/network/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "gsn/util/logging.h"
#include "gsn/util/strings.h"

namespace gsn::network {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

/// Reads until the peer closes or `terminator` logic says complete.
/// Returns raw request bytes (headers + body).
std::string ReadRequest(int fd) {
  std::string data;
  char buf[4096];
  size_t body_expected = std::string::npos;
  size_t header_end = std::string::npos;
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
    if (header_end == std::string::npos) {
      header_end = data.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        // Parse Content-Length if present.
        const std::string head = StrToLower(data.substr(0, header_end));
        const size_t cl = head.find("content-length:");
        if (cl != std::string::npos) {
          const size_t eol = head.find("\r\n", cl);
          const std::string len_str =
              StrTrim(head.substr(cl + 15, eol - cl - 15));
          Result<int64_t> len = ParseInt64(len_str);
          body_expected = len.ok() ? static_cast<size_t>(*len) : 0;
        } else {
          body_expected = 0;
        }
      }
    }
    if (header_end != std::string::npos &&
        data.size() >= header_end + 4 + body_expected) {
      break;
    }
    if (data.size() > 16 * 1024 * 1024) break;  // runaway request
  }
  return data;
}

void ParseQueryString(std::string_view qs,
                      std::map<std::string, std::string>* out) {
  for (const std::string& pair : StrSplit(qs, '&')) {
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      (*out)[UrlDecode(pair)] = "";
    } else {
      (*out)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
}

Result<HttpRequest> ParseRequest(const std::string& raw) {
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::ParseError("http: no header terminator");
  }
  const std::vector<std::string> lines =
      StrSplit(raw.substr(0, header_end), '\n');
  if (lines.empty()) return Status::ParseError("http: empty request");
  // Request line: METHOD SP target SP version.
  const std::vector<std::string> parts = StrSplit(StrTrim(lines[0]), ' ');
  if (parts.size() < 2) return Status::ParseError("http: bad request line");
  HttpRequest request;
  request.method = StrToUpper(parts[0]);
  std::string target = parts[1];
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    ParseQueryString(target.substr(qmark + 1), &request.query);
    target = target.substr(0, qmark);
  }
  request.path = UrlDecode(target);
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string line = StrTrim(lines[i]);
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    request.headers[StrToLower(line.substr(0, colon))] =
        StrTrim(line.substr(colon + 1));
  }
  request.body = raw.substr(header_end + 4);
  return request;
}

void WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

}  // namespace

std::string HttpRequest::QueryOr(const std::string& key,
                                 const std::string& fallback) const {
  auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

std::string HttpRequest::HeaderOr(const std::string& key,
                                  const std::string& fallback) const {
  auto it = headers.find(StrToLower(key));
  return it == headers.end() ? fallback : it->second;
}

HttpResponse HttpResponse::Text(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Json(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Html(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/html; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  return Text(message + "\n", status);
}

std::string UrlDecode(std::string_view encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < encoded.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(encoded[i + 1]);
      const int lo = hex(encoded[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port) {
  if (running_.load()) return Status::AlreadyExists("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind() failed on port " + std::to_string(port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  GSN_LOG(kInfo, "http") << "web interface listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listening socket unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    HandleConnection(client_fd);
    ::close(client_fd);
  }
}

void HttpServer::HandleConnection(int client_fd) {
  const std::string raw = ReadRequest(client_fd);
  HttpResponse response;
  Result<HttpRequest> request = ParseRequest(raw);
  if (!request.ok()) {
    response = HttpResponse::Error(400, request.status().message());
  } else {
    response = handler_(*request);
  }
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  WriteAll(client_fd, out);
  requests_served_.fetch_add(1);
}

Result<HttpClientResponse> HttpFetch(uint16_t port, const std::string& method,
                                     const std::string& path,
                                     const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect() failed to 127.0.0.1:" +
                               std::to_string(port));
  }
  std::string request = method + " " + path + " HTTP/1.0\r\n";
  request += "Host: 127.0.0.1\r\n";
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  WriteAll(fd, request);
  ::shutdown(fd, SHUT_WR);

  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::ParseError("http: malformed response");
  }
  HttpClientResponse response;
  // Status line: HTTP/1.0 200 OK
  const std::vector<std::string> parts =
      StrSplit(raw.substr(0, raw.find("\r\n")), ' ');
  if (parts.size() >= 2) {
    Result<int64_t> status = ParseInt64(parts[1]);
    response.status = status.ok() ? static_cast<int>(*status) : 0;
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace gsn::network

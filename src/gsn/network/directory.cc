#include "gsn/network/directory.h"

#include "gsn/types/codec.h"
#include "gsn/util/strings.h"

namespace gsn::network {

bool DirectoryEntry::Matches(
    const std::map<std::string, std::string>& query) const {
  for (const auto& [key, val] : query) {
    if (StrEqualsIgnoreCase(key, "name")) {
      if (!StrEqualsIgnoreCase(sensor_name, val)) return false;
      continue;
    }
    if (StrEqualsIgnoreCase(key, "node")) {
      if (!StrEqualsIgnoreCase(node_id, val)) return false;
      continue;
    }
    bool found = false;
    for (const auto& [ekey, eval] : predicates) {
      if (StrEqualsIgnoreCase(ekey, key) && StrEqualsIgnoreCase(eval, val)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string DirectoryEntry::Encode() const {
  std::string out;
  Codec::EncodeString(sensor_name, &out);
  Codec::EncodeString(node_id, &out);
  Codec::EncodeU32(static_cast<uint32_t>(predicates.size()), &out);
  for (const auto& [key, val] : predicates) {
    Codec::EncodeString(key, &out);
    Codec::EncodeString(val, &out);
  }
  Codec::EncodeSchema(output_schema, &out);
  return out;
}

Result<DirectoryEntry> DirectoryEntry::Decode(std::string_view data) {
  DirectoryEntry entry;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(entry.sensor_name, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(entry.node_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(uint32_t count, Codec::DecodeU32(data, &pos));
  for (uint32_t i = 0; i < count; ++i) {
    GSN_ASSIGN_OR_RETURN(std::string key, Codec::DecodeString(data, &pos));
    GSN_ASSIGN_OR_RETURN(std::string val, Codec::DecodeString(data, &pos));
    entry.predicates[std::move(key)] = std::move(val);
  }
  GSN_ASSIGN_OR_RETURN(entry.output_schema, Codec::DecodeSchema(data, &pos));
  if (pos != data.size()) {
    return Status::ParseError("directory entry: trailing bytes");
  }
  return entry;
}

void DirectoryService::Upsert(DirectoryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(entry.node_id, entry.sensor_name);
  entries_[key] = std::move(entry);
}

void DirectoryService::Remove(const std::string& node_id,
                              const std::string& sensor_name) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase({node_id, sensor_name});
}

void DirectoryService::RemoveNode(const std::string& node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first == node_id) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<DirectoryEntry> DirectoryService::Discover(
    const std::map<std::string, std::string>& query) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DirectoryEntry> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.Matches(query)) out.push_back(entry);
  }
  return out;
}

size_t DirectoryService::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace gsn::network

#include "gsn/network/protocol.h"

#include "gsn/types/codec.h"

namespace gsn::network {

namespace {
Status CheckFullyConsumed(std::string_view data, size_t pos,
                          const char* what) {
  if (pos != data.size()) {
    return Status::ParseError(std::string(what) + ": trailing bytes");
  }
  return Status::OK();
}
}  // namespace

std::string DirRemove::Encode() const {
  std::string out;
  Codec::EncodeString(node_id, &out);
  Codec::EncodeString(sensor_name, &out);
  return out;
}

Result<DirRemove> DirRemove::Decode(std::string_view data) {
  DirRemove msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.node_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.sensor_name, Codec::DecodeString(data, &pos));
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "DirRemove"));
  return msg;
}

std::string SubscribeRequest::Encode() const {
  std::string out;
  Codec::EncodeString(subscription_id, &out);
  Codec::EncodeString(sensor_name, &out);
  Codec::EncodeString(subscriber_node, &out);
  return out;
}

Result<SubscribeRequest> SubscribeRequest::Decode(std::string_view data) {
  SubscribeRequest msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.subscription_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.sensor_name, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.subscriber_node, Codec::DecodeString(data, &pos));
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "SubscribeRequest"));
  return msg;
}

std::string UnsubscribeRequest::Encode() const {
  std::string out;
  Codec::EncodeString(subscription_id, &out);
  return out;
}

Result<UnsubscribeRequest> UnsubscribeRequest::Decode(std::string_view data) {
  UnsubscribeRequest msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.subscription_id, Codec::DecodeString(data, &pos));
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "UnsubscribeRequest"));
  return msg;
}

std::string StreamDelivery::Encode() const {
  std::string out;
  Codec::EncodeString(subscription_id, &out);
  Codec::EncodeString(sensor_name, &out);
  Codec::EncodeString(signature, &out);
  Codec::EncodeElement(element, &out);
  return out;
}

Result<StreamDelivery> StreamDelivery::Decode(std::string_view data) {
  StreamDelivery msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.subscription_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.sensor_name, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.signature, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.element, Codec::DecodeElement(data, &pos));
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "StreamDelivery"));
  return msg;
}

}  // namespace gsn::network

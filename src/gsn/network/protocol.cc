#include "gsn/network/protocol.h"

#include "gsn/types/codec.h"

namespace gsn::network {

namespace {
Status CheckFullyConsumed(std::string_view data, size_t pos,
                          const char* what) {
  if (pos != data.size()) {
    return Status::ParseError(std::string(what) + ": trailing bytes");
  }
  return Status::OK();
}
}  // namespace

std::string DirRemove::Encode() const {
  std::string out;
  Codec::EncodeString(node_id, &out);
  Codec::EncodeString(sensor_name, &out);
  return out;
}

Result<DirRemove> DirRemove::Decode(std::string_view data) {
  DirRemove msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.node_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.sensor_name, Codec::DecodeString(data, &pos));
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "DirRemove"));
  return msg;
}

std::string SubscribeRequest::Encode() const {
  std::string out;
  Codec::EncodeString(subscription_id, &out);
  Codec::EncodeString(sensor_name, &out);
  Codec::EncodeString(subscriber_node, &out);
  return out;
}

Result<SubscribeRequest> SubscribeRequest::Decode(std::string_view data) {
  SubscribeRequest msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.subscription_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.sensor_name, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.subscriber_node, Codec::DecodeString(data, &pos));
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "SubscribeRequest"));
  return msg;
}

std::string UnsubscribeRequest::Encode() const {
  std::string out;
  Codec::EncodeString(subscription_id, &out);
  return out;
}

Result<UnsubscribeRequest> UnsubscribeRequest::Decode(std::string_view data) {
  UnsubscribeRequest msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.subscription_id, Codec::DecodeString(data, &pos));
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "UnsubscribeRequest"));
  return msg;
}

std::string StreamDelivery::Encode() const {
  std::string out;
  Codec::EncodeString(subscription_id, &out);
  Codec::EncodeString(sensor_name, &out);
  Codec::EncodeString(signature, &out);
  Codec::EncodeElement(element, &out);
  // Trace context rides after the signed payload: the signature covers
  // (sensor name, element) only, so tracing on/off never invalidates it.
  Codec::EncodeI64(static_cast<int64_t>(trace.trace_hi), &out);
  Codec::EncodeI64(static_cast<int64_t>(trace.trace_lo), &out);
  Codec::EncodeI64(static_cast<int64_t>(trace.span_id), &out);
  Codec::EncodeU32(trace.sampled ? 1 : 0, &out);
  Codec::EncodeI64(static_cast<int64_t>(sequence), &out);
  return out;
}

Result<StreamDelivery> StreamDelivery::Decode(std::string_view data) {
  StreamDelivery msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.subscription_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.sensor_name, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.signature, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(msg.element, Codec::DecodeElement(data, &pos));
  GSN_ASSIGN_OR_RETURN(int64_t hi, Codec::DecodeI64(data, &pos));
  GSN_ASSIGN_OR_RETURN(int64_t lo, Codec::DecodeI64(data, &pos));
  GSN_ASSIGN_OR_RETURN(int64_t span, Codec::DecodeI64(data, &pos));
  GSN_ASSIGN_OR_RETURN(uint32_t sampled, Codec::DecodeU32(data, &pos));
  msg.trace.trace_hi = static_cast<uint64_t>(hi);
  msg.trace.trace_lo = static_cast<uint64_t>(lo);
  msg.trace.span_id = static_cast<uint64_t>(span);
  msg.trace.sampled = sampled != 0;
  GSN_ASSIGN_OR_RETURN(int64_t sequence, Codec::DecodeI64(data, &pos));
  msg.sequence = static_cast<uint64_t>(sequence);
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "StreamDelivery"));
  return msg;
}

std::string SubscribeAck::Encode() const {
  std::string out;
  Codec::EncodeString(subscription_id, &out);
  return out;
}

Result<SubscribeAck> SubscribeAck::Decode(std::string_view data) {
  SubscribeAck msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.subscription_id, Codec::DecodeString(data, &pos));
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "SubscribeAck"));
  return msg;
}

std::string NackRequest::Encode() const {
  std::string out;
  Codec::EncodeString(subscription_id, &out);
  Codec::EncodeU32(static_cast<uint32_t>(ranges.size()), &out);
  for (const SeqRange& range : ranges) {
    Codec::EncodeI64(static_cast<int64_t>(range.from), &out);
    Codec::EncodeI64(static_cast<int64_t>(range.to), &out);
  }
  return out;
}

Result<NackRequest> NackRequest::Decode(std::string_view data) {
  NackRequest msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.subscription_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(uint32_t count, Codec::DecodeU32(data, &pos));
  msg.ranges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SeqRange range;
    GSN_ASSIGN_OR_RETURN(int64_t from, Codec::DecodeI64(data, &pos));
    GSN_ASSIGN_OR_RETURN(int64_t to, Codec::DecodeI64(data, &pos));
    range.from = static_cast<uint64_t>(from);
    range.to = static_cast<uint64_t>(to);
    if (range.to < range.from) {
      return Status::ParseError("NackRequest: inverted range");
    }
    msg.ranges.push_back(range);
  }
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "NackRequest"));
  return msg;
}

std::string StreamTip::Encode() const {
  std::string out;
  Codec::EncodeString(subscription_id, &out);
  Codec::EncodeI64(static_cast<int64_t>(last_sequence), &out);
  return out;
}

Result<StreamTip> StreamTip::Decode(std::string_view data) {
  StreamTip msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.subscription_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(int64_t last, Codec::DecodeI64(data, &pos));
  msg.last_sequence = static_cast<uint64_t>(last);
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "StreamTip"));
  return msg;
}

std::string Heartbeat::Encode() const {
  std::string out;
  Codec::EncodeString(node_id, &out);
  Codec::EncodeI64(static_cast<int64_t>(beat), &out);
  return out;
}

Result<Heartbeat> Heartbeat::Decode(std::string_view data) {
  Heartbeat msg;
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(msg.node_id, Codec::DecodeString(data, &pos));
  GSN_ASSIGN_OR_RETURN(int64_t beat, Codec::DecodeI64(data, &pos));
  msg.beat = static_cast<uint64_t>(beat);
  GSN_RETURN_IF_ERROR(CheckFullyConsumed(data, pos, "Heartbeat"));
  return msg;
}

}  // namespace gsn::network

#ifndef GSN_NETWORK_HTTP_SERVER_H_
#define GSN_NETWORK_HTTP_SERVER_H_

#include <map>
#include <string>
#include <string_view>

#include "gsn/util/result.h"

namespace gsn::network {

/// A parsed HTTP request (the subset the GSN web interface needs:
/// method, path, decoded query parameters, headers, body).
struct HttpRequest {
  std::string method;   // GET, POST
  std::string path;     // "/api/v1/sensors" (query string stripped)
  std::string version;  // "HTTP/1.1" (uppercased; absent = "HTTP/1.0")
  std::map<std::string, std::string> query;    // decoded key=value pairs
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;

  std::string QueryOr(const std::string& key,
                      const std::string& fallback) const;
  std::string HeaderOr(const std::string& key,
                       const std::string& fallback) const;
  /// HTTP/1.1 defaults to persistent connections; HTTP/1.0 opts in via
  /// "Connection: keep-alive". "Connection: close" always wins.
  bool WantsKeepAlive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(std::string body, int status = 200);
  static HttpResponse Json(std::string body, int status = 200);
  static HttpResponse Html(std::string body, int status = 200);
  static HttpResponse Error(int status, const std::string& message);
};

/// Percent-decoding of URL components ("%20" → ' ', '+' → ' ').
std::string UrlDecode(std::string_view encoded);

/// Reason phrase for `status` ("OK", "Not Found", ...).
const char* HttpStatusText(int status);

/// Incremental request framing for a streaming server: decides whether
/// `buffer` starts with one complete request (head terminator seen and
/// Content-Length bytes of body present). Returns the total byte length
/// of that request, 0 while more bytes are needed, or an error for
/// malformed or oversized heads/bodies.
Result<size_t> HttpRequestLength(std::string_view buffer,
                                 size_t max_head_bytes = 64 * 1024,
                                 size_t max_body_bytes = 16 * 1024 * 1024);

/// Parses one complete request (request line, headers, body). `raw`
/// must hold exactly the bytes HttpRequestLength accounted for.
Result<HttpRequest> ParseHttpRequest(std::string_view raw);

/// Serializes `response` with Content-Length framing. `keep_alive`
/// selects the Connection header (the caller owns the close decision).
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive);

/// Blocking one-shot HTTP client for tests and examples: requests
/// `path` (with query string) from 127.0.0.1:`port` and reads to EOF
/// (it sends HTTP/1.0, so keep-alive servers close after the reply).
struct HttpClientResponse {
  int status = 0;
  std::string body;
};
Result<HttpClientResponse> HttpFetch(uint16_t port, const std::string& method,
                                     const std::string& path,
                                     const std::string& body = "");

}  // namespace gsn::network

#endif  // GSN_NETWORK_HTTP_SERVER_H_

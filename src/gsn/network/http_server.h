#ifndef GSN_NETWORK_HTTP_SERVER_H_
#define GSN_NETWORK_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "gsn/util/result.h"

namespace gsn::network {

/// A parsed HTTP request (the subset the GSN web interface needs:
/// method, path, decoded query parameters, headers, body).
struct HttpRequest {
  std::string method;  // GET, POST
  std::string path;    // "/sensors" (query string stripped)
  std::map<std::string, std::string> query;    // decoded key=value pairs
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;

  std::string QueryOr(const std::string& key,
                      const std::string& fallback) const;
  std::string HeaderOr(const std::string& key,
                       const std::string& fallback) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(std::string body, int status = 200);
  static HttpResponse Json(std::string body, int status = 200);
  static HttpResponse Html(std::string body, int status = 200);
  static HttpResponse Error(int status, const std::string& message);
};

/// Percent-decoding of URL components ("%20" → ' ', '+' → ' ').
std::string UrlDecode(std::string_view encoded);

/// Minimal threaded HTTP/1.0 server bound to 127.0.0.1 — the transport
/// behind the container's web interface (paper §4: access "via the Web
/// (through a browser or via web services)"). One handler serves every
/// route; connections are handled sequentially per worker accept loop
/// (adequate for a management plane, not a data plane).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = pick an ephemeral port) and starts the
  /// accept thread. Fails if the port is taken.
  Status Start(uint16_t port = 0);
  void Stop();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  int64_t requests_served() const { return requests_served_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);

  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_served_{0};
};

/// Blocking HTTP/1.0 client for tests and examples: requests
/// `path` (with query string) from 127.0.0.1:`port`.
struct HttpClientResponse {
  int status = 0;
  std::string body;
};
Result<HttpClientResponse> HttpFetch(uint16_t port, const std::string& method,
                                     const std::string& path,
                                     const std::string& body = "");

}  // namespace gsn::network

#endif  // GSN_NETWORK_HTTP_SERVER_H_

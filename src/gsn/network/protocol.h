#ifndef GSN_NETWORK_PROTOCOL_H_
#define GSN_NETWORK_PROTOCOL_H_

#include <string>
#include <string_view>

#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::network {

/// Message topics of the inter-container protocol. Containers speak a
/// small peer-to-peer protocol replacing the Java GSN's HTTP/RMI plane:
///
///   kTopicDirPublish  — gossip a DirectoryEntry (payload: entry)
///   kTopicDirRemove   — retract a sensor (payload: DirRemove)
///   kTopicSubscribe   — subscribe to a remote sensor's output stream
///   kTopicUnsubscribe — cancel a subscription
///   kTopicStream      — one output element for a subscription
inline constexpr char kTopicDirPublish[] = "dir.publish";
inline constexpr char kTopicDirRemove[] = "dir.remove";
inline constexpr char kTopicSubscribe[] = "sub.request";
inline constexpr char kTopicUnsubscribe[] = "sub.cancel";
inline constexpr char kTopicStream[] = "sub.stream";

/// Retraction of a published sensor.
struct DirRemove {
  std::string node_id;
  std::string sensor_name;

  std::string Encode() const;
  static Result<DirRemove> Decode(std::string_view data);
};

/// Subscription request: `subscriber_node` asks the receiving container
/// to push `sensor_name`'s output stream, tagged with subscription_id.
struct SubscribeRequest {
  std::string subscription_id;
  std::string sensor_name;
  std::string subscriber_node;

  std::string Encode() const;
  static Result<SubscribeRequest> Decode(std::string_view data);
};

/// Cancellation of a subscription.
struct UnsubscribeRequest {
  std::string subscription_id;

  std::string Encode() const;
  static Result<UnsubscribeRequest> Decode(std::string_view data);
};

/// One pushed stream element. `signature` is the producing container's
/// HMAC over (sensor name, element) — the integrity layer of Fig 2;
/// empty means unsigned. `trace` carries the producing container's
/// trace context so the receiving container continues the same trace;
/// it rides outside the signed payload (observability metadata, not
/// sensor data).
struct StreamDelivery {
  std::string subscription_id;
  std::string sensor_name;
  std::string signature;
  StreamElement element;
  TraceContext trace;

  std::string Encode() const;
  static Result<StreamDelivery> Decode(std::string_view data);
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_PROTOCOL_H_

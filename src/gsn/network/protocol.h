#ifndef GSN_NETWORK_PROTOCOL_H_
#define GSN_NETWORK_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::network {

/// Message topics of the inter-container protocol. Containers speak a
/// small peer-to-peer protocol replacing the Java GSN's HTTP/RMI plane:
///
///   kTopicDirPublish  — gossip a DirectoryEntry (payload: entry)
///   kTopicDirRemove   — retract a sensor (payload: DirRemove)
///   kTopicSubscribe   — subscribe to a remote sensor's output stream
///   kTopicSubAck      — producer's acknowledgement of a subscription
///   kTopicUnsubscribe — cancel a subscription
///   kTopicStream      — one output element for a subscription
///   kTopicStreamTip   — producer's highest assigned sequence number
///   kTopicStreamNack  — subscriber's replay request for missing seqs
///   kTopicHeartbeat   — periodic liveness beacon (broadcast)
inline constexpr char kTopicDirPublish[] = "dir.publish";
inline constexpr char kTopicDirRemove[] = "dir.remove";
inline constexpr char kTopicSubscribe[] = "sub.request";
inline constexpr char kTopicSubAck[] = "sub.ack";
inline constexpr char kTopicUnsubscribe[] = "sub.cancel";
inline constexpr char kTopicStream[] = "sub.stream";
inline constexpr char kTopicStreamTip[] = "sub.tip";
inline constexpr char kTopicStreamNack[] = "sub.nack";
inline constexpr char kTopicHeartbeat[] = "peer.heartbeat";

/// Retraction of a published sensor.
struct DirRemove {
  std::string node_id;
  std::string sensor_name;

  std::string Encode() const;
  static Result<DirRemove> Decode(std::string_view data);
};

/// Subscription request: `subscriber_node` asks the receiving container
/// to push `sensor_name`'s output stream, tagged with subscription_id.
struct SubscribeRequest {
  std::string subscription_id;
  std::string sensor_name;
  std::string subscriber_node;

  std::string Encode() const;
  static Result<SubscribeRequest> Decode(std::string_view data);
};

/// Cancellation of a subscription.
struct UnsubscribeRequest {
  std::string subscription_id;

  std::string Encode() const;
  static Result<UnsubscribeRequest> Decode(std::string_view data);
};

/// One pushed stream element. `signature` is the producing container's
/// HMAC over (sensor name, element) — the integrity layer of Fig 2;
/// empty means unsigned. `trace` carries the producing container's
/// trace context so the receiving container continues the same trace;
/// it rides outside the signed payload (observability metadata, not
/// sensor data). `sequence` is the per-subscription delivery number
/// (1-based, dense): the receiving RemoteStreamWrapper uses it to
/// detect gaps (→ NACK/replay) and drop duplicates, so lossy links
/// still yield exactly-once admission. 0 marks a legacy unsequenced
/// delivery, admitted as-is.
struct StreamDelivery {
  std::string subscription_id;
  std::string sensor_name;
  std::string signature;
  StreamElement element;
  TraceContext trace;
  uint64_t sequence = 0;

  std::string Encode() const;
  static Result<StreamDelivery> Decode(std::string_view data);
};

/// Producer's acknowledgement of a SubscribeRequest. Until it arrives
/// the subscriber re-sends the request under its retry policy
/// (subscribes are idempotent on the producer).
struct SubscribeAck {
  std::string subscription_id;

  std::string Encode() const;
  static Result<SubscribeAck> Decode(std::string_view data);
};

/// Inclusive range of missing sequence numbers.
struct SeqRange {
  uint64_t from = 0;
  uint64_t to = 0;

  bool operator==(const SeqRange& other) const {
    return from == other.from && to == other.to;
  }
};

/// Subscriber's replay request: "I have gaps at these sequences". The
/// producer re-sends whatever its replay buffer still holds.
struct NackRequest {
  std::string subscription_id;
  std::vector<SeqRange> ranges;

  std::string Encode() const;
  static Result<NackRequest> Decode(std::string_view data);
};

/// Producer's periodic "high-water mark" for a subscription: the last
/// sequence it assigned. Lets the subscriber detect *tail* loss — a
/// dropped final delivery would otherwise never look like a gap.
struct StreamTip {
  std::string subscription_id;
  uint64_t last_sequence = 0;

  std::string Encode() const;
  static Result<StreamTip> Decode(std::string_view data);
};

/// Periodic liveness beacon, broadcast by every container. Feeds the
/// per-peer circuit breakers: missed heartbeats accumulate failures,
/// any received message records a success.
struct Heartbeat {
  std::string node_id;
  uint64_t beat = 0;

  std::string Encode() const;
  static Result<Heartbeat> Decode(std::string_view data);
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_PROTOCOL_H_

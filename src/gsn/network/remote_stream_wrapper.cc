#include "gsn/network/remote_stream_wrapper.h"

namespace gsn::network {

RemoteStreamWrapper::RemoteStreamWrapper(Schema schema, std::string peer_node,
                                         std::string remote_sensor)
    : schema_(std::move(schema)),
      peer_node_(std::move(peer_node)),
      remote_sensor_(std::move(remote_sensor)) {}

Result<std::vector<StreamElement>> RemoteStreamWrapper::Poll(Timestamp now) {
  (void)now;  // delivery timing is governed by the network simulator
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StreamElement> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

void RemoteStreamWrapper::Push(StreamElement element) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(element));
  ++received_;
}

int64_t RemoteStreamWrapper::received_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return received_;
}

}  // namespace gsn::network

#include "gsn/network/remote_stream_wrapper.h"

#include <algorithm>

namespace gsn::network {

RemoteStreamWrapper::RemoteStreamWrapper(Schema schema, std::string peer_node,
                                         std::string remote_sensor)
    : schema_(std::move(schema)),
      peer_node_(std::move(peer_node)),
      remote_sensor_(std::move(remote_sensor)) {}

Result<std::vector<StreamElement>> RemoteStreamWrapper::Poll(Timestamp now) {
  (void)now;  // delivery timing is governed by the network simulator
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StreamElement> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

RemoteStreamWrapper::PushOutcome RemoteStreamWrapper::Push(
    StreamElement element, uint64_t sequence) {
  std::lock_guard<std::mutex> lock(mu_);
  ++received_;
  PushOutcome outcome;
  if (sequence == 0) {
    // Legacy unsequenced delivery: admit as-is.
    queue_.push_back(std::move(element));
    ++admitted_;
    outcome.admitted = 1;
    return outcome;
  }
  max_seen_ = std::max(max_seen_, sequence);
  if (sequence < expected_seq_ || pending_.count(sequence)) {
    ++duplicates_;
    outcome.duplicate = true;
    return outcome;
  }
  if (sequence == expected_seq_) {
    queue_.push_back(std::move(element));
    ++expected_seq_;
    ++admitted_;
    ++outcome.admitted;
    // The arrival may close a gap: drain parked successors.
    for (auto it = pending_.begin();
         it != pending_.end() && it->first == expected_seq_;
         it = pending_.erase(it)) {
      queue_.push_back(std::move(it->second));
      ++expected_seq_;
      ++admitted_;
      ++outcome.admitted;
    }
    return outcome;
  }
  // Out of order: park until the gap below fills (or is abandoned).
  pending_.emplace(sequence, std::move(element));
  outcome.gap_opened = true;
  return outcome;
}

void RemoteStreamWrapper::ObserveTip(uint64_t last_sequence) {
  std::lock_guard<std::mutex> lock(mu_);
  max_seen_ = std::max(max_seen_, last_sequence);
}

std::vector<SeqRange> RemoteStreamWrapper::MissingRanges(
    size_t max_ranges) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeqRange> out;
  uint64_t cursor = expected_seq_;
  auto it = pending_.lower_bound(cursor);
  while (cursor <= max_seen_ && out.size() < max_ranges) {
    if (it != pending_.end() && it->first == cursor) {
      ++cursor;  // parked, not missing
      ++it;
      continue;
    }
    // Missing run: up to just before the next parked sequence.
    const uint64_t run_end =
        it == pending_.end() ? max_seen_ : std::min(max_seen_, it->first - 1);
    out.push_back(SeqRange{cursor, run_end});
    cursor = run_end + 1;
  }
  return out;
}

int RemoteStreamWrapper::AbandonMissingThrough(uint64_t through) {
  std::lock_guard<std::mutex> lock(mu_);
  int abandoned = 0;
  while (expected_seq_ <= through) {
    auto it = pending_.find(expected_seq_);
    if (it != pending_.end()) {
      queue_.push_back(std::move(it->second));
      pending_.erase(it);
      ++admitted_;
    } else {
      ++abandoned;
    }
    ++expected_seq_;
  }
  // The abandonment may unblock parked successors beyond `through`.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == expected_seq_;
       it = pending_.erase(it)) {
    queue_.push_back(std::move(it->second));
    ++expected_seq_;
    ++admitted_;
  }
  abandoned_ += abandoned;
  return abandoned;
}

void RemoteStreamWrapper::Rebind(std::string peer_node,
                                 std::string remote_sensor) {
  std::lock_guard<std::mutex> lock(mu_);
  peer_node_ = std::move(peer_node);
  remote_sensor_ = std::move(remote_sensor);
  pending_.clear();
  expected_seq_ = 1;
  max_seen_ = 0;
}

std::string RemoteStreamWrapper::peer_node() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peer_node_;
}

std::string RemoteStreamWrapper::remote_sensor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_sensor_;
}

int64_t RemoteStreamWrapper::received_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return received_;
}

int64_t RemoteStreamWrapper::admitted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t RemoteStreamWrapper::duplicate_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_;
}

int64_t RemoteStreamWrapper::abandoned_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abandoned_;
}

uint64_t RemoteStreamWrapper::expected_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expected_seq_;
}

uint64_t RemoteStreamWrapper::max_seen_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_seen_;
}

}  // namespace gsn::network

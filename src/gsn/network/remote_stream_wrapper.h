#ifndef GSN_NETWORK_REMOTE_STREAM_WRAPPER_H_
#define GSN_NETWORK_REMOTE_STREAM_WRAPPER_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "gsn/wrappers/wrapper.h"

namespace gsn::network {

/// The `wrapper="remote"` data source (paper Fig 1: "the data stream is
/// obtained from the Internet through GSN (thus logical addressing is
/// possible)"). The container resolves the address predicates against
/// its directory replica, subscribes to the matching sensor on its host
/// node, and pushes delivered elements into this wrapper's queue; the
/// owning stream source drains it on Poll like any local device.
class RemoteStreamWrapper : public wrappers::Wrapper {
 public:
  /// `schema` comes from the matched DirectoryEntry; `peer` / `sensor`
  /// identify the remote producer (for diagnostics).
  RemoteStreamWrapper(Schema schema, std::string peer_node,
                      std::string remote_sensor);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "remote"; }

  Result<std::vector<StreamElement>> Poll(Timestamp now) override;

  /// Called by the container when a kTopicStream message arrives.
  void Push(StreamElement element);

  const std::string& peer_node() const { return peer_node_; }
  const std::string& remote_sensor() const { return remote_sensor_; }
  int64_t received_count() const;

 private:
  const Schema schema_;
  const std::string peer_node_;
  const std::string remote_sensor_;

  mutable std::mutex mu_;
  std::deque<StreamElement> queue_;
  int64_t received_ = 0;
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_REMOTE_STREAM_WRAPPER_H_

#ifndef GSN_NETWORK_REMOTE_STREAM_WRAPPER_H_
#define GSN_NETWORK_REMOTE_STREAM_WRAPPER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gsn/network/protocol.h"
#include "gsn/wrappers/wrapper.h"

namespace gsn::network {

/// The `wrapper="remote"` data source (paper Fig 1: "the data stream is
/// obtained from the Internet through GSN (thus logical addressing is
/// possible)"). The container resolves the address predicates against
/// its directory replica, subscribes to the matching sensor on its host
/// node, and pushes delivered elements into this wrapper's queue; the
/// owning stream source drains it on Poll like any local device.
///
/// The wrapper is also the receive half of the resilient delivery
/// protocol (docs/FEDERATION.md): deliveries carry a dense per-
/// subscription sequence number, and this class admits them in order
/// exactly once — duplicates are dropped, out-of-order arrivals are
/// parked until the gap fills, and MissingRanges() tells the container
/// what to NACK for replay. ObserveTip() raises the known high-water
/// mark so a lost *tail* delivery still registers as a gap.
class RemoteStreamWrapper : public wrappers::Wrapper {
 public:
  /// Outcome of one Push, for the container's gap/dup telemetry.
  struct PushOutcome {
    int admitted = 0;        // elements released to Poll (in order)
    bool duplicate = false;  // sequence already seen
    bool gap_opened = false; // arrival parked behind a new gap
  };

  /// `schema` comes from the matched DirectoryEntry; `peer` / `sensor`
  /// identify the remote producer (for diagnostics and failover).
  RemoteStreamWrapper(Schema schema, std::string peer_node,
                      std::string remote_sensor);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "remote"; }

  Result<std::vector<StreamElement>> Poll(Timestamp now) override;

  /// Called by the container when a kTopicStream message arrives.
  /// `sequence` 0 marks an unsequenced legacy delivery (admitted
  /// directly); sequences are otherwise 1-based and dense.
  PushOutcome Push(StreamElement element, uint64_t sequence);

  /// Producer's high-water mark from a StreamTip: sequences up to
  /// `last_sequence` exist, so any not yet seen are gaps.
  void ObserveTip(uint64_t last_sequence);

  /// The sequences still missing in [next expected, high-water mark],
  /// as maximal inclusive ranges (what the container NACKs). At most
  /// `max_ranges` are returned; the rest surface on later calls.
  std::vector<SeqRange> MissingRanges(size_t max_ranges = 32) const;

  /// Gives up on every missing sequence <= `through`: parked elements
  /// are admitted, absent ones are counted as abandoned, and the
  /// expected sequence advances past them. Returns how many sequences
  /// were abandoned. Called when replay retries exhaust (the producer
  /// evicted them, or is gone for good).
  int AbandonMissingThrough(uint64_t through);

  /// Points the wrapper at a different producer after failover. The
  /// new subscription has a fresh sequence space, so all sequencing
  /// state resets; queued-but-unpolled elements survive.
  void Rebind(std::string peer_node, std::string remote_sensor);

  std::string peer_node() const;
  std::string remote_sensor() const;
  /// Raw deliveries pushed (including duplicates and parked arrivals).
  int64_t received_count() const;
  /// Elements admitted in order to Poll — under the resilient protocol
  /// this is exactly the number of distinct sequences accepted.
  int64_t admitted_count() const;
  int64_t duplicate_count() const;
  int64_t abandoned_count() const;
  /// Next sequence the wrapper waits for (1 until anything arrives).
  uint64_t expected_sequence() const;
  /// Highest sequence seen or announced via tip (0 initially).
  uint64_t max_seen_sequence() const;

 private:
  const Schema schema_;

  mutable std::mutex mu_;
  std::string peer_node_;
  std::string remote_sensor_;
  std::deque<StreamElement> queue_;
  /// Out-of-order arrivals parked until the sequence below them fills.
  std::map<uint64_t, StreamElement> pending_;
  uint64_t expected_seq_ = 1;
  uint64_t max_seen_ = 0;
  int64_t received_ = 0;
  int64_t admitted_ = 0;
  int64_t duplicates_ = 0;
  int64_t abandoned_ = 0;
};

}  // namespace gsn::network

#endif  // GSN_NETWORK_REMOTE_STREAM_WRAPPER_H_

#include "gsn/telemetry/profiler.h"

#include <algorithm>
#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

namespace gsn::telemetry {

void TimedMutex::Instrument(MetricRegistry* registry, const std::string& name,
                            const Labels& extra) {
  if (registry == nullptr) return;
  Labels labels = extra;
  labels.emplace_back("lock", name);
  label_ = name;
  wait_micros_ = registry->GetHistogram(
      "gsn_lock_wait_micros", labels,
      "Wall time threads spent blocked acquiring this lock");
  acquisitions_ = registry->GetCounter("gsn_lock_acquisitions_total", labels,
                                       "Lock acquisitions");
  contended_ = registry->GetCounter(
      "gsn_lock_contended_total", labels,
      "Acquisitions that found the lock held and had to wait");
}

void Profiler::Record(const std::string& name, int64_t micros) {
  if (micros < 0) micros = 0;
  const int64_t weight = sample_period_;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(name);
  if (it == spans_.end()) {
    if (spans_.size() >= kMaxSpanNames) {
      it = spans_.emplace("<other>", Agg{}).first;
    } else {
      it = spans_.emplace(name, Agg{}).first;
    }
  }
  it->second.count += weight;
  it->second.total_micros += micros * weight;
  it->second.max_micros = std::max(it->second.max_micros, micros);
}

std::vector<Profiler::SpanStats> Profiler::TopSpans(size_t n) const {
  std::vector<SpanStats> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(spans_.size());
    for (const auto& [name, agg] : spans_) {
      out.push_back({name, agg.count, agg.total_micros, agg.max_micros});
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_micros > b.total_micros;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

ProcessStats ReadProcessStats() {
  ProcessStats stats;
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    stats.cpu_seconds =
        static_cast<double>(usage.ru_utime.tv_sec + usage.ru_stime.tv_sec) +
        static_cast<double>(usage.ru_utime.tv_usec + usage.ru_stime.tv_usec) /
            1e6;
  }
  // /proc/self/statm: total pages, then resident pages.
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r");
      statm != nullptr) {
    long total = 0;
    long resident = 0;
    if (std::fscanf(statm, "%ld %ld", &total, &resident) == 2) {
      stats.rss_bytes =
          static_cast<int64_t>(resident) * sysconf(_SC_PAGESIZE);
    }
    std::fclose(statm);
  }
  return stats;
}

std::string BuildVersion() {
#ifdef GSN_VERSION
  return GSN_VERSION;
#else
  return "dev";
#endif
}

std::string BuildCompiler() {
#ifdef __VERSION__
  return __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace gsn::telemetry

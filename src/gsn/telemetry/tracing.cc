#include "gsn/telemetry/tracing.h"

#include <utility>

#include "gsn/util/export.h"

namespace gsn::telemetry {

namespace {

/// splitmix64 finalizer — cheap, well-distributed, and stateless, so id
/// generation stays lock-free (one fetch_add) under concurrent tracing.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string SpanRecord::TraceIdHex() const {
  TraceContext ctx;
  ctx.trace_hi = trace_hi;
  ctx.trace_lo = trace_lo;
  return ctx.TraceIdHex();
}

std::string SpanRecord::SpanIdHex() const {
  TraceContext ctx;
  ctx.span_id = span_id;
  return ctx.SpanIdHex();
}

// ---------------------------------------------------------------------------
// TraceStore
// ---------------------------------------------------------------------------

TraceStore::TraceStore(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void TraceStore::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SpanRecord>(ring_.begin(), ring_.end());
}

std::vector<SpanRecord> TraceStore::ForTrace(uint64_t trace_hi,
                                             uint64_t trace_lo) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  for (const SpanRecord& record : ring_) {
    if (record.trace_hi == trace_hi && record.trace_lo == trace_lo) {
      out.push_back(record);
    }
  }
  return out;
}

size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TraceStore::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(const Options& options)
    : store_(options.capacity),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Instance()),
      seed_(options.seed),
      sample_rate_(options.sample_rate) {}

uint64_t Tracer::NextId() {
  // 0 is reserved for "no id"; Mix64 of distinct inputs collides with 0
  // only for one specific counter value, which we simply skip past.
  uint64_t id = 0;
  while (id == 0) {
    id = Mix64(seed_ ^ counter_.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

TraceContext Tracer::StartTrace() {
  const double rate = sample_rate_.load(std::memory_order_relaxed);
  if (rate <= 0.0) return TraceContext();
  TraceContext ctx;
  ctx.trace_hi = NextId();
  ctx.trace_lo = NextId();
  ctx.span_id = NextId();
  if (rate >= 1.0) {
    ctx.sampled = true;
  } else {
    // Deterministic coin from the trace id: the same trace id always
    // lands on the same side, so the decision is reproducible given the
    // seed and id sequence.
    const double coin =
        static_cast<double>(Mix64(ctx.trace_lo ^ seed_) >> 11) *
        (1.0 / 9007199254740992.0);  // / 2^53
    ctx.sampled = coin < rate;
  }
  return ctx;
}

TraceContext Tracer::ChildOf(const TraceContext& parent) {
  if (!parent.valid()) return TraceContext();
  TraceContext ctx = parent;
  ctx.span_id = NextId();
  return ctx;
}

void Tracer::set_sample_rate(double rate) {
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  sample_rate_.store(rate, std::memory_order_relaxed);
}

double Tracer::sample_rate() const {
  return sample_rate_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span::Span(Tracer* tracer, std::string_view name) {
  if (tracer == nullptr) return;
  TraceContext ctx = tracer->StartTrace();
  if (!ctx.valid()) return;
  Open(tracer, name, ctx, /*parent_span_id=*/0);
}

Span::Span(Tracer* tracer, std::string_view name, const TraceContext& parent) {
  if (tracer == nullptr || !parent.valid()) return;
  Open(tracer, name, tracer->ChildOf(parent), parent.span_id);
}

void Span::Open(Tracer* tracer, std::string_view name, TraceContext ctx,
                uint64_t parent_span_id) {
  tracer_ = tracer;
  ctx_ = ctx;
  record_.trace_hi = ctx.trace_hi;
  record_.trace_lo = ctx.trace_lo;
  record_.span_id = ctx.span_id;
  record_.parent_span_id = parent_span_id;
  record_.name.assign(name.data(), name.size());
  record_.start_micros = tracer->clock()->NowMicros();
  if (ctx_.sampled) {
    saved_thread_ctx_ = ThreadTraceContext();
    SetThreadTraceContext(ctx_);
    bound_thread_ = true;
  }
}

Span::~Span() { Finish(); }

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      ctx_(other.ctx_),
      record_(std::move(other.record_)),
      saved_thread_ctx_(other.saved_thread_ctx_),
      bound_thread_(other.bound_thread_) {
  other.tracer_ = nullptr;
  other.bound_thread_ = false;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    Finish();
    tracer_ = other.tracer_;
    ctx_ = other.ctx_;
    record_ = std::move(other.record_);
    saved_thread_ctx_ = other.saved_thread_ctx_;
    bound_thread_ = other.bound_thread_;
    other.tracer_ = nullptr;
    other.bound_thread_ = false;
  }
  return *this;
}

void Span::set_sensor(std::string_view sensor) {
  if (tracer_ != nullptr) record_.sensor.assign(sensor.data(), sensor.size());
}

void Span::set_node(std::string_view node) {
  if (tracer_ != nullptr) record_.node.assign(node.data(), node.size());
}

void Span::set_error() {
  if (tracer_ != nullptr) record_.error = true;
}

void Span::Finish() {
  if (tracer_ == nullptr) return;
  if (bound_thread_) {
    if (saved_thread_ctx_.valid()) {
      SetThreadTraceContext(saved_thread_ctx_);
    } else {
      ClearThreadTraceContext();
    }
    bound_thread_ = false;
  }
  record_.duration_micros =
      tracer_->clock()->NowMicros() - record_.start_micros;
  if (ctx_.sampled || record_.error) {
    tracer_->store().Record(std::move(record_));
  }
  tracer_ = nullptr;
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

bool ParseTraceIdHex(std::string_view hex, uint64_t* trace_hi,
                     uint64_t* trace_lo) {
  if (hex.size() != 32) return false;
  uint64_t parts[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<size_t>(half * 16 + i)];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint64_t>(c - 'A') + 10;
      } else {
        return false;
      }
      parts[half] = (parts[half] << 4) | digit;
    }
  }
  *trace_hi = parts[0];
  *trace_lo = parts[1];
  return true;
}

std::string RenderTracesJson(const TraceStore& store,
                             std::string_view trace_id_hex, size_t limit,
                             size_t offset) {
  std::vector<SpanRecord> spans;
  if (!trace_id_hex.empty()) {
    uint64_t hi = 0;
    uint64_t lo = 0;
    if (ParseTraceIdHex(trace_id_hex, &hi, &lo)) {
      spans = store.ForTrace(hi, lo);
    }
  } else {
    spans = store.Snapshot();
  }
  const size_t total = spans.size();
  std::string out = "{\"items\":[";
  bool first = true;
  for (size_t i = offset; i < spans.size() && i - offset < limit; ++i) {
    const SpanRecord& s = spans[i];
    if (!first) out += ",";
    first = false;
    out += "{\"trace\":\"" + s.TraceIdHex() + "\"";
    out += ",\"span\":\"" + s.SpanIdHex() + "\"";
    out += ",\"parent\":\"";
    if (s.parent_span_id != 0) {
      TraceContext parent;
      parent.span_id = s.parent_span_id;
      out += parent.SpanIdHex();
    }
    out += "\"";
    out += ",\"name\":" + JsonEscape(s.name);
    out += ",\"sensor\":" + JsonEscape(s.sensor);
    out += ",\"node\":" + JsonEscape(s.node);
    out += ",\"start_micros\":" + std::to_string(s.start_micros);
    out += ",\"duration_micros\":" + std::to_string(s.duration_micros);
    out += std::string(",\"error\":") + (s.error ? "true" : "false");
    out += "}";
  }
  out += "],\"total\":" + std::to_string(total) +
         ",\"dropped\":" + std::to_string(store.dropped()) + "}";
  return out;
}

}  // namespace gsn::telemetry

#include "gsn/telemetry/metrics.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace gsn::telemetry {

namespace {

/// Bit width of `v` (0 for 0): the histogram bucket index.
int BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  int bits = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return bits < Histogram::kNumBuckets ? bits : Histogram::kNumBuckets - 1;
}

/// Canonical `{k="v",...}` rendering with label-value escaping; doubles
/// as the series key inside a family.
std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"";
    for (char c : value) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += "\"";
  }
  out += "}";
  return out;
}

/// Like RenderLabels but with an extra `le` label appended (histogram
/// bucket series).
std::string RenderBucketLabels(const Labels& labels, const std::string& le) {
  Labels with_le = labels;
  with_le.emplace_back("le", le);
  return RenderLabels(with_le);
}

/// Prometheus text-format escaping for `# HELP` lines: backslash and
/// line feed only (quotes are legal there, unlike in label values).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------- Histogram

void Histogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= kNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << b) - 1;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  for (int b = 0; b < kNumBuckets; ++b) {
    snapshot.buckets[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

void Histogram::Merge(Snapshot* into, const Snapshot& other) {
  into->count += other.count;
  into->sum += other.sum;
  into->max = std::max(into->max, other.max);
  for (int b = 0; b < kNumBuckets; ++b) {
    into->buckets[static_cast<size_t>(b)] +=
        other.buckets[static_cast<size_t>(b)];
  }
}

int64_t Histogram::Snapshot::Quantile(double q) const {
  if (count <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based.
  const double rank = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const int64_t in_bucket = buckets[static_cast<size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Linear interpolation between the bucket bounds by rank
      // position; the top bucket is tightened by the exact max.
      const int64_t lo = b == 0 ? 0 : (int64_t{1} << (b - 1));
      int64_t hi = BucketUpperBound(b);
      hi = std::min(hi, max);
      if (hi <= lo) return hi;
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lo + static_cast<int64_t>(static_cast<double>(hi - lo) * within);
    }
    cumulative += in_bucket;
  }
  return max;
}

// --------------------------------------------------------------- Registry

MetricRegistry* MetricRegistry::Default() {
  static MetricRegistry* instance = new MetricRegistry();
  return instance;
}

MetricRegistry::Series* MetricRegistry::GetSeries(const std::string& name,
                                                  Kind kind,
                                                  const Labels& labels,
                                                  const std::string& help) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
  } else if (family.kind != kind) {
    return nullptr;  // type mismatch: caller hands out a detached metric
  }
  if (family.help.empty() && !help.empty()) family.help = help;
  Series& series = family.series[RenderLabels(sorted)];
  if (series.labels.empty() && !sorted.empty()) series.labels = sorted;
  return &series;
}

std::shared_ptr<Counter> MetricRegistry::GetCounter(const std::string& name,
                                                    const Labels& labels,
                                                    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = GetSeries(name, Kind::kCounter, labels, help);
  if (series == nullptr) return std::make_shared<Counter>();
  if (series->counter == nullptr) series->counter = std::make_shared<Counter>();
  return series->counter;
}

std::shared_ptr<Gauge> MetricRegistry::GetGauge(const std::string& name,
                                                const Labels& labels,
                                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = GetSeries(name, Kind::kGauge, labels, help);
  if (series == nullptr) return std::make_shared<Gauge>();
  if (series->gauge == nullptr) series->gauge = std::make_shared<Gauge>();
  return series->gauge;
}

std::shared_ptr<Histogram> MetricRegistry::GetHistogram(
    const std::string& name, const Labels& labels, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = GetSeries(name, Kind::kHistogram, labels, help);
  if (series == nullptr) return std::make_shared<Histogram>();
  if (series->histogram == nullptr) {
    series->histogram = std::make_shared<Histogram>();
  }
  return series->histogram;
}

int MetricRegistry::RemoveWithLabel(const std::string& key,
                                    const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  int removed = 0;
  for (auto fit = families_.begin(); fit != families_.end();) {
    Family& family = fit->second;
    for (auto sit = family.series.begin(); sit != family.series.end();) {
      const Labels& labels = sit->second.labels;
      const bool match =
          std::any_of(labels.begin(), labels.end(), [&](const auto& kv) {
            return kv.first == key && kv.second == value;
          });
      if (match) {
        sit = family.series.erase(sit);
        ++removed;
      } else {
        ++sit;
      }
    }
    fit = family.series.empty() ? families_.erase(fit) : std::next(fit);
  }
  return removed;
}

int MetricRegistry::RemoveMetric(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) return 0;
  const int removed = static_cast<int>(it->second.series.size());
  families_.erase(it);
  return removed;
}

void MetricRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

size_t MetricRegistry::NumSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

Histogram::Snapshot MetricRegistry::SumHistograms(
    const std::string& name) const {
  Histogram::Snapshot merged;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kHistogram) {
    return merged;
  }
  for (const auto& [key, series] : it->second.series) {
    if (series.histogram != nullptr) {
      Histogram::Merge(&merged, series.histogram->TakeSnapshot());
    }
  }
  return merged;
}

int64_t MetricRegistry::SumCounters(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kCounter) return 0;
  int64_t sum = 0;
  for (const auto& [key, series] : it->second.series) {
    if (series.counter != nullptr) sum += series.counter->Value();
  }
  return sum;
}

std::string MetricRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + EscapeHelp(family.help) + "\n";
    }
    out += "# TYPE " + name + " ";
    out += family.kind == Kind::kCounter    ? "counter"
           : family.kind == Kind::kGauge    ? "gauge"
                                            : "histogram";
    out += "\n";
    for (const auto& [label_key, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + label_key + " " +
                 std::to_string(series.counter ? series.counter->Value() : 0) +
                 "\n";
          break;
        case Kind::kGauge:
          out += name + label_key + " " +
                 std::to_string(series.gauge ? series.gauge->Value() : 0) +
                 "\n";
          break;
        case Kind::kHistogram: {
          if (series.histogram == nullptr) break;
          const Histogram::Snapshot snap = series.histogram->TakeSnapshot();
          int64_t cumulative = 0;
          for (int b = 0; b < Histogram::kNumBuckets; ++b) {
            const int64_t in_bucket = snap.buckets[static_cast<size_t>(b)];
            if (in_bucket == 0) continue;  // sparse: only occupied buckets
            cumulative += in_bucket;
            out += name + "_bucket" +
                   RenderBucketLabels(
                       series.labels,
                       std::to_string(Histogram::BucketUpperBound(b))) +
                   " " + std::to_string(cumulative) + "\n";
          }
          out += name + "_bucket" + RenderBucketLabels(series.labels, "+Inf") +
                 " " + std::to_string(snap.count) + "\n";
          out += name + "_sum" + label_key + " " + std::to_string(snap.sum) +
                 "\n";
          out += name + "_count" + label_key + " " +
                 std::to_string(snap.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

// ------------------------------------------------------------ SteadyClock

Timestamp SteadyClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const SteadyClock* SteadyClock::Instance() {
  static const SteadyClock* instance = new SteadyClock();
  return instance;
}

}  // namespace gsn::telemetry

#ifndef GSN_TELEMETRY_METRICS_H_
#define GSN_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "gsn/util/clock.h"

namespace gsn::telemetry {

/// Label set of one time series, e.g. {{"sensor","room1"}}. Kept sorted
/// by key inside the registry so label order never creates duplicate
/// series.
using Labels = std::vector<std::pair<std::string, std::string>>;

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotonically increasing counter. Increment is a single relaxed
/// atomic add — cheap enough for per-tuple hot paths (the registry hands
/// out shared_ptrs, so the lookup cost is paid once at wiring time, not
/// per tuple).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// Counters are monotonic in exposition; Reset exists for the legacy
  /// ResetJoinCounters-style test hooks that zero between cases.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written value (queue depths, deployed-sensor counts, the most
/// recent pipeline latency). Relaxed atomics; writers race benignly.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram for non-negative integer samples (latencies
/// in microseconds, sizes in bytes). Bucket b holds values whose bit
/// width is b: bucket 0 = {0}, bucket b = [2^(b-1), 2^b). Observe is a
/// handful of relaxed atomic ops; quantiles are read out of a snapshot
/// with linear interpolation inside the winning bucket, so they are
/// exact to within one power of two (tightened by the exact max).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t value);

  /// Inclusive upper bound of bucket `b` (2^b - 1); used by exposition.
  static int64_t BucketUpperBound(int b);

  /// A consistent-enough copy for readout. Concurrent Observes may tear
  /// count vs sum by a sample or two; quantile readouts are estimates
  /// by construction and tolerate that.
  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;
    std::array<int64_t, kNumBuckets> buckets{};

    /// q in [0,1]; returns 0 on an empty histogram, the exact max for
    /// the top of the distribution.
    int64_t Quantile(double q) const;
    double Mean() const {
      return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                       : 0.0;
    }
  };
  Snapshot TakeSnapshot() const;

  void Reset();

  /// Adds `other`'s samples into this snapshot (metric-family merges,
  /// e.g. all sensors' pipeline latencies as one distribution).
  static void Merge(Snapshot* into, const Snapshot& other);

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Thread-safe name+labels → metric registry with get-or-create
/// semantics and Prometheus text exposition. Metrics are handed out as
/// shared_ptrs: callers cache them at wiring time and keep incrementing
/// safely even if the series is concurrently unregistered (the series
/// simply stops being exported).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide default registry. Holds process-global series
  /// (the SQL executor's join counters); instrumented components that
  /// get no injected registry create a private one instead, so
  /// per-instance stats views stay per-instance.
  static MetricRegistry* Default();

  /// Get-or-create. `help` is recorded on first registration of `name`.
  /// If `name` already exists with a different metric type, a detached
  /// (unexported) instance is returned so callers never crash; the
  /// mismatch is a programming error surfaced by the exposition missing
  /// the series.
  std::shared_ptr<Counter> GetCounter(const std::string& name,
                                      const Labels& labels = {},
                                      const std::string& help = "");
  std::shared_ptr<Gauge> GetGauge(const std::string& name,
                                  const Labels& labels = {},
                                  const std::string& help = "");
  std::shared_ptr<Histogram> GetHistogram(const std::string& name,
                                          const Labels& labels = {},
                                          const std::string& help = "");

  /// Drops every series carrying label `key`=`value` (per-sensor metric
  /// families at undeploy). Returns how many series were removed.
  int RemoveWithLabel(const std::string& key, const std::string& value);
  /// Drops every series of `name`. Returns how many were removed.
  int RemoveMetric(const std::string& name);
  /// Drops everything (test isolation).
  void Clear();

  size_t NumSeries() const;

  /// Merged snapshot of every histogram series named `name` (empty
  /// snapshot if none). Benches read their figure series through this.
  Histogram::Snapshot SumHistograms(const std::string& name) const;
  /// Sum of every counter series named `name`.
  int64_t SumCounters(const std::string& name) const;

  /// Prometheus text exposition format 0.0.4: # HELP / # TYPE comments,
  /// counters and gauges as bare samples, histograms as cumulative
  /// `_bucket{le=...}` series plus `_sum` and `_count`.
  std::string RenderPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;  // sorted by key
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind;
    std::string help;
    /// Keyed by the canonical label rendering for cheap lookup.
    std::map<std::string, Series> series;
  };

  Series* GetSeries(const std::string& name, Kind kind, const Labels& labels,
                    const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

// ---------------------------------------------------------------------------
// Span timing
// ---------------------------------------------------------------------------

/// Monotonic wall clock (std::chrono::steady_clock) behind the Clock
/// interface, for spans that measure real elapsed time even when the
/// surrounding container runs on a VirtualClock (Fig 3 measures real
/// in-container processing cost under virtual stream time).
class SteadyClock : public Clock {
 public:
  Timestamp NowMicros() const override;
  static const SteadyClock* Instance();
};

/// RAII span: records clock->NowMicros() deltas into a histogram on
/// destruction (or at Stop()). Null histogram disables the span, so
/// instrumentation points cost one branch when telemetry is off.
/// Injecting a VirtualClock makes span durations fully deterministic in
/// tests: advance the clock inside the span and the histogram observes
/// exactly that delta.
class SpanTimer {
 public:
  SpanTimer(const Clock* clock, Histogram* histogram)
      : clock_(clock),
        histogram_(histogram),
        start_(histogram != nullptr ? clock->NowMicros() : 0) {}
  ~SpanTimer() { Stop(); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Records now, disarms, and returns the elapsed micros (0 if
  /// disabled or already stopped).
  int64_t Stop() {
    if (histogram_ == nullptr) return 0;
    const int64_t elapsed = clock_->NowMicros() - start_;
    histogram_->Observe(elapsed);
    histogram_ = nullptr;
    return elapsed;
  }

 private:
  const Clock* clock_;
  Histogram* histogram_;
  int64_t start_;
};

}  // namespace gsn::telemetry

#endif  // GSN_TELEMETRY_METRICS_H_

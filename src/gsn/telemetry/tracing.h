#ifndef GSN_TELEMETRY_TRACING_H_
#define GSN_TELEMETRY_TRACING_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "gsn/telemetry/metrics.h"
#include "gsn/util/clock.h"
#include "gsn/util/trace_context.h"

namespace gsn::telemetry {

/// Propagated trace identity — defined in util so the type layer can
/// carry it on stream elements without depending on telemetry.
using TraceContext = ::gsn::TraceContext;

/// One finished span, as stored and exported. A trace is the set of
/// spans sharing (trace_hi, trace_lo); parent_span_id links them into a
/// tree (0 = root span).
struct SpanRecord {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;
  std::string sensor;  ///< virtual sensor involved, if any
  std::string node;    ///< container/node id, if known
  Timestamp start_micros = 0;
  int64_t duration_micros = 0;
  bool error = false;

  std::string TraceIdHex() const;
  std::string SpanIdHex() const;
};

/// Bounded, mutex-protected ring buffer of finished spans. When full,
/// the oldest span is evicted and counted in dropped(). Safe to record
/// into from many threads while another thread snapshots (/traces).
class TraceStore {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit TraceStore(size_t capacity = kDefaultCapacity);

  void Record(SpanRecord record);

  /// All buffered spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;
  /// Spans of one trace, oldest first.
  std::vector<SpanRecord> ForTrace(uint64_t trace_hi, uint64_t trace_lo) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Spans evicted to make room since construction.
  uint64_t dropped() const;
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SpanRecord> ring_;
  uint64_t dropped_ = 0;
};

/// Factory for trace contexts plus the store their spans land in.
///
/// Head sampling: the decision is made once, when a trace is rooted
/// (`StartTrace`), by a deterministic coin derived from the trace id
/// (itself derived from the injected seed), and inherited by every
/// child. With sample_rate 0 (the default) `StartTrace` returns an
/// invalid context and tracing costs one atomic load per tuple. With
/// 0 < rate < 1, unsampled traces still get ids so that a span that
/// finishes with an error is recorded regardless of the coin
/// (always-sample-on-error).
///
/// Thread-safe: id generation is an atomic counter mixed through
/// splitmix64, the rate is an atomic, and the store takes its own lock.
class Tracer {
 public:
  struct Options {
    /// Probability a rooted trace is sampled. 0 disables tracing.
    double sample_rate = 0.0;
    /// Ring capacity of the span store.
    size_t capacity = TraceStore::kDefaultCapacity;
    /// Seed for id generation and the sampling coin; fixed seed + a
    /// single-threaded workload = fully reproducible ids.
    uint64_t seed = 0x6773'6e74'7261'6365;  // "gsntrace"
    /// Span timestamps/durations. Null = monotonic SteadyClock.
    const Clock* clock = nullptr;
  };

  Tracer() : Tracer(Options()) {}
  explicit Tracer(const Options& options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Roots a new trace: fresh 128-bit trace id, a root span id, and the
  /// head-sampling decision. Invalid context when sample_rate is 0.
  TraceContext StartTrace();

  /// Continues `parent` with a fresh span id (same trace id and
  /// sampling decision). Invalid context when the parent is invalid.
  TraceContext ChildOf(const TraceContext& parent);

  void set_sample_rate(double rate);
  double sample_rate() const;

  TraceStore& store() { return store_; }
  const TraceStore& store() const { return store_; }
  const Clock* clock() const { return clock_; }

 private:
  uint64_t NextId();

  TraceStore store_;
  const Clock* const clock_;
  const uint64_t seed_;
  std::atomic<double> sample_rate_;
  std::atomic<uint64_t> counter_{0};
};

/// RAII span. Opens at construction, records into the tracer's store at
/// Finish()/destruction iff its context is valid and either sampled or
/// flagged as an error. While a sampled span is open it binds the
/// thread-local trace context so GSN_LOG lines carry `trace=<id>`
/// (restored on finish). Default-constructed spans are inert, as are
/// spans built from a null tracer or an invalid parent — instrumentation
/// points need no guards.
class Span {
 public:
  Span() = default;
  /// Roots a new trace (see Tracer::StartTrace).
  Span(Tracer* tracer, std::string_view name);
  /// Child span continuing `parent`; inert when parent is invalid.
  Span(Tracer* tracer, std::string_view name, const TraceContext& parent);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;

  void set_sensor(std::string_view sensor);
  void set_node(std::string_view node);
  /// Marks the span failed; error spans are recorded even when the
  /// trace is unsampled.
  void set_error();

  /// This span's context — pass to children / stamp onto elements.
  const TraceContext& context() const { return ctx_; }
  /// True when the span will consider recording (valid context).
  bool active() const { return tracer_ != nullptr && ctx_.valid(); }

  /// Ends the span (idempotent).
  void Finish();

 private:
  void Open(Tracer* tracer, std::string_view name, TraceContext ctx,
            uint64_t parent_span_id);

  Tracer* tracer_ = nullptr;
  TraceContext ctx_;
  SpanRecord record_;
  TraceContext saved_thread_ctx_;
  bool bound_thread_ = false;
};

/// Renders spans as JSON for GET /api/v1/traces in the uniform list
/// envelope:
/// {"items":[{"trace":"<hex32>","span":"<hex16>","parent":"<hex16|>",
///   "name":...,"sensor":...,"node":...,"start_micros":N,
///   "duration_micros":N,"error":bool}],"total":N,"dropped":N}.
/// `total` counts matching spans before `limit`/`offset` paging;
/// `dropped` counts ring-buffer evictions. A non-empty `trace_id_hex`
/// (32 hex chars) filters to that trace.
std::string RenderTracesJson(const TraceStore& store,
                             std::string_view trace_id_hex = {},
                             size_t limit = std::string::npos,
                             size_t offset = 0);

/// Parses a 32-char lowercase/uppercase hex trace id. Returns false on
/// malformed input.
bool ParseTraceIdHex(std::string_view hex, uint64_t* trace_hi,
                     uint64_t* trace_lo);

}  // namespace gsn::telemetry

#endif  // GSN_TELEMETRY_TRACING_H_

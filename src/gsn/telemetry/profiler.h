#ifndef GSN_TELEMETRY_PROFILER_H_
#define GSN_TELEMETRY_PROFILER_H_

/// Contention and scheduling profiler (ROADMAP item 1 measurement
/// baseline). Three instruments:
///
///  - TimedMutex: a std::mutex drop-in that, once Instrument()ed,
///    counts acquisitions, counts contended acquisitions, and records
///    the wall time spent blocked into a `gsn_lock_wait_micros{lock=}`
///    histogram. The uncontended fast path is one try_lock plus one
///    relaxed counter increment — no clock read.
///  - Profiler: an always-on aggregating span profiler. Scoped spans
///    record name -> {count, total, max} into a bounded table;
///    TopSpans(n) returns the hottest spans by total time. A sampling
///    period > 1 measures only every Nth span (scaled back up), for
///    call sites too hot to time every pass.
///  - ReadProcessStats / build info: process RSS, CPU seconds, and the
///    compiled-in version string for the status surface.
///
/// All of it is safe to run permanently in production; the benches
/// quote lock-wait shares from these histograms.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gsn/telemetry/metrics.h"

namespace gsn::telemetry {

/// std::mutex-compatible (BasicLockable + Lockable) mutex that meters
/// lock waits. Uninstrumented it behaves exactly like std::mutex.
/// Instrument() must be called before the mutex is shared across
/// threads (wiring time, like metric handles).
class TimedMutex {
 public:
  TimedMutex() = default;
  TimedMutex(const TimedMutex&) = delete;
  TimedMutex& operator=(const TimedMutex&) = delete;

  /// Registers `gsn_lock_wait_micros`, `gsn_lock_acquisitions_total`
  /// and `gsn_lock_contended_total`, all labelled {lock=name} (plus
  /// `extra` labels), in `registry`. No-op when registry is null.
  void Instrument(MetricRegistry* registry, const std::string& name,
                  const Labels& extra = {});

  void lock() {
    if (mu_.try_lock()) {
      if (acquisitions_ != nullptr) acquisitions_->Increment();
      return;
    }
    if (wait_micros_ != nullptr) {
      contended_->Increment();
      const int64_t start = SteadyClock::Instance()->NowMicros();
      mu_.lock();
      wait_micros_->Observe(SteadyClock::Instance()->NowMicros() - start);
      acquisitions_->Increment();
      return;
    }
    mu_.lock();
  }
  bool try_lock() {
    const bool ok = mu_.try_lock();
    if (ok && acquisitions_ != nullptr) acquisitions_->Increment();
    return ok;
  }
  void unlock() { mu_.unlock(); }

  /// Point-in-time contention stats (zero until Instrument()).
  const std::string& label() const { return label_; }
  int64_t acquisitions() const {
    return acquisitions_ != nullptr ? acquisitions_->Value() : 0;
  }
  int64_t contended() const {
    return contended_ != nullptr ? contended_->Value() : 0;
  }
  int64_t wait_micros_total() const {
    return wait_micros_ != nullptr ? wait_micros_->TakeSnapshot().sum : 0;
  }

 private:
  std::mutex mu_;
  std::string label_;
  std::shared_ptr<Histogram> wait_micros_;
  std::shared_ptr<Counter> acquisitions_;
  std::shared_ptr<Counter> contended_;
};

/// Always-on aggregating span profiler. Record() is one short
/// mutex-protected map update; the table is bounded (overflow spans
/// aggregate under "<other>") so a label explosion cannot leak.
class Profiler {
 public:
  struct SpanStats {
    std::string name;
    int64_t count = 0;
    int64_t total_micros = 0;
    int64_t max_micros = 0;
  };

  /// `sample_period` N > 1 measures only every Nth span per call site
  /// round-robin and scales counts/totals by N.
  explicit Profiler(int sample_period = 1,
                    const Clock* clock = SteadyClock::Instance())
      : clock_(clock), sample_period_(sample_period < 1 ? 1 : sample_period) {}
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// True when the next span should take clock readings; advances the
  /// round-robin sampling cursor.
  bool ShouldSample() {
    return sample_period_ == 1 ||
           ticket_.fetch_add(1, std::memory_order_relaxed) %
                   sample_period_ == 0;
  }

  void Record(const std::string& name, int64_t micros);

  /// Top-n spans by total_micros, descending.
  std::vector<SpanStats> TopSpans(size_t n) const;
  int sample_period() const { return sample_period_; }
  const Clock* clock() const { return clock_; }

  /// RAII span; also observes into `histogram` when non-null.
  class Scope {
   public:
    Scope(Profiler* profiler, const char* name, Histogram* histogram = nullptr)
        : profiler_(profiler), name_(name), histogram_(histogram) {
      if (profiler_ != nullptr && profiler_->ShouldSample()) {
        start_ = profiler_->clock()->NowMicros();
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { Stop(); }

    /// Ends the span early; returns the measured micros (0 when the
    /// span was sampled out). Idempotent.
    int64_t Stop() {
      if (start_ < 0) return 0;
      const int64_t elapsed = profiler_->clock()->NowMicros() - start_;
      start_ = -1;
      profiler_->Record(name_, elapsed);
      if (histogram_ != nullptr) histogram_->Observe(elapsed);
      return elapsed;
    }

   private:
    Profiler* profiler_;
    const char* name_;
    Histogram* histogram_;
    int64_t start_ = -1;
  };

 private:
  struct Agg {
    int64_t count = 0;
    int64_t total_micros = 0;
    int64_t max_micros = 0;
  };
  static constexpr size_t kMaxSpanNames = 256;

  const Clock* clock_;
  const int sample_period_;
  std::atomic<uint64_t> ticket_{0};
  mutable std::mutex mu_;
  std::map<std::string, Agg> spans_;
};

/// Process-level resource usage for the status surface and the system
/// wrapper. Fields are 0 where the platform gives no answer.
struct ProcessStats {
  int64_t rss_bytes = 0;
  double cpu_seconds = 0;  // user + system
};
ProcessStats ReadProcessStats();

/// Version baked in at configure time (CMake project version).
std::string BuildVersion();
/// Compiler identification (__VERSION__).
std::string BuildCompiler();

}  // namespace gsn::telemetry

#endif  // GSN_TELEMETRY_PROFILER_H_

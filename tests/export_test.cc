#include <gtest/gtest.h>

#include "gsn/util/export.h"
#include "gsn/util/strings.h"

namespace gsn {
namespace {

Relation SampleRelation() {
  Schema schema;
  schema.AddField("timed", DataType::kTimestamp);
  schema.AddField("temperature", DataType::kInt);
  schema.AddField("label", DataType::kString);
  Relation rel(schema);
  EXPECT_TRUE(rel.AddRow({Value::TimestampVal(100), Value::Int(20),
                          Value::String("ok")})
                  .ok());
  EXPECT_TRUE(rel.AddRow({Value::TimestampVal(200), Value::Int(25),
                          Value::Null()})
                  .ok());
  EXPECT_TRUE(rel.AddRow({Value::TimestampVal(300), Value::Int(22),
                          Value::String("a,\"b\"\nc")})
                  .ok());
  return rel;
}

TEST(ExportTest, JsonRendering) {
  const std::string json = RelationToJson(SampleRelation());
  EXPECT_EQ(json.substr(0, 1), "[");
  EXPECT_NE(json.find("{\"timed\":100,\"temperature\":20,\"label\":\"ok\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"label\":null"), std::string::npos);
  // Escaping of quotes and newlines.
  EXPECT_NE(json.find("a,\\\"b\\\"\\nc"), std::string::npos) << json;
}

TEST(ExportTest, JsonSpecialDoubles) {
  Schema schema;
  schema.AddField("v", DataType::kDouble);
  Relation rel(schema);
  ASSERT_TRUE(rel.AddRow({Value::Double(1.5)}).ok());
  ASSERT_TRUE(
      rel.AddRow({Value::Double(std::numeric_limits<double>::infinity())})
          .ok());
  const std::string json = RelationToJson(rel);
  EXPECT_NE(json.find("1.5"), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);  // Inf -> null
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ExportTest, JsonBinaryPlaceholder) {
  Schema schema;
  schema.AddField("image", DataType::kBinary);
  Relation rel(schema);
  ASSERT_TRUE(rel.AddRow({Value::Binary(MakeBlob("abc"))}).ok());
  EXPECT_NE(RelationToJson(rel).find("<binary:3>"), std::string::npos);
}

TEST(ExportTest, CsvQuoting) {
  const std::string csv = RelationToCsv(SampleRelation());
  const std::vector<std::string> lines = StrSplit(csv, '\n');
  EXPECT_EQ(lines[0], "timed,temperature,label");
  EXPECT_EQ(lines[1], "@100,20,ok");
  EXPECT_EQ(lines[2], "@200,25,");  // NULL -> empty cell
  // Embedded comma/quote/newline round into one quoted cell.
  EXPECT_NE(csv.find("\"a,\"\"b\"\"\nc\""), std::string::npos) << csv;
}

TEST(ExportTest, AsciiPlotBasics) {
  Result<std::string> chart = AsciiPlot(SampleRelation(), "temperature");
  ASSERT_TRUE(chart.ok()) << chart.status().ToString();
  EXPECT_NE(chart->find('*'), std::string::npos);
  EXPECT_NE(chart->find("3 points"), std::string::npos);
  EXPECT_NE(chart->find("25"), std::string::npos);  // max label
}

TEST(ExportTest, AsciiPlotErrors) {
  EXPECT_FALSE(AsciiPlot(SampleRelation(), "nope").ok());
  EXPECT_FALSE(AsciiPlot(SampleRelation(), "temperature", 2, 1).ok());
  Relation empty{Schema({Field{"v", DataType::kInt}})};
  auto chart = AsciiPlot(empty, "v");
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(*chart, "(no data)\n");
}

TEST(ExportTest, DotGraph) {
  const std::string dot = EdgesToDot(
      "gsn", {{"mote device", "hall-env", "in/src"},
              {"hall-env", "peer (node)", "stream"}});
  EXPECT_NE(dot.find("digraph \"gsn\""), std::string::npos);
  EXPECT_NE(dot.find("\"mote device\" -> \"hall-env\" [label=\"in/src\"];"),
            std::string::npos)
      << dot;
}

TEST(ExportTest, JsonEscapeControlChars) {
  EXPECT_EQ(JsonEscape("a\x01z"), "\"a\\u0001z\"");
  EXPECT_EQ(JsonEscape("tab\there"), "\"tab\\there\"");
}

}  // namespace
}  // namespace gsn

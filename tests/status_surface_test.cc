// Tests for the live container status surface: Container::GetStatus(),
// GET /api/v1/status, the argument-less management `status` command,
// and the build/uptime metric families behind GET /metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "gsn/container/management_interface.h"
#include "gsn/container/web_interface.h"

namespace gsn::container {
namespace {

using network::HttpRequest;
using network::HttpResponse;

constexpr char kSensorXml[] =
    "<virtual-sensor name=\"status-sensor\">"
    "<metadata><predicate key=\"type\" val=\"temperature\"/></metadata>"
    "<output-structure>"
    "  <field name=\"temperature\" type=\"integer\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"src\" storage-size=\"1m\">"
    "    <address wrapper=\"mote\">"
    "      <predicate key=\"interval-ms\" val=\"100\"/>"
    "    </address>"
    "    <query>select avg(temperature) from wrapper</query>"
    "  </stream-source>"
    "  <query>select * from src</query>"
    "</input-stream>"
    "</virtual-sensor>";

class ContainerStatusSurfaceTest : public ::testing::Test {
 protected:
  ContainerStatusSurfaceTest() {
    clock_ = std::make_shared<VirtualClock>();
    Container::Options options;
    options.node_id = "status-node";
    options.clock = clock_;
    container_ = std::make_unique<Container>(std::move(options));
  }

  void DeployAndRun() {
    ASSERT_TRUE(container_->Deploy(kSensorXml).ok());
    for (int i = 0; i < 10; ++i) {
      clock_->Advance(100 * kMicrosPerMilli);
      ASSERT_TRUE(container_->Tick().ok());
    }
  }

  std::shared_ptr<VirtualClock> clock_;
  std::unique_ptr<Container> container_;
};

TEST_F(ContainerStatusSurfaceTest, GetStatusJoinsSubsystems) {
  DeployAndRun();
  const Container::ContainerStatus status = container_->GetStatus();

  EXPECT_EQ(status.node_id, "status-node");
  EXPECT_FALSE(status.version.empty());
  EXPECT_FALSE(status.compiler.empty());
  EXPECT_FALSE(status.draining);
  EXPECT_TRUE(status.health.ready);

  // The totals are the same snapshot wrapper="system" streams.
  EXPECT_EQ(status.totals.sensors, 1);
  EXPECT_EQ(status.totals.running, 1);
  EXPECT_GT(status.totals.tuples_total, 0);
  EXPECT_GT(status.totals.metric_series, 0);
  EXPECT_GT(status.totals.rss_bytes, 0);

  ASSERT_EQ(status.sensors.size(), 1u);
  EXPECT_EQ(status.sensors[0].name, "status-sensor");
  EXPECT_GT(status.sensors[0].stats.produced, 0);

  // The instrumented container locks report by name.
  auto has_lock = [&](const std::string& name) {
    return std::any_of(
        status.locks.begin(), status.locks.end(),
        [&](const Container::LockStats& lock) { return lock.name == name; });
  };
  EXPECT_TRUE(has_lock("shard-0"));
  EXPECT_TRUE(has_lock("federation"));
  EXPECT_TRUE(has_lock("chaining"));
  EXPECT_TRUE(has_lock("query_cache"));
  for (const auto& lock : status.locks) {
    EXPECT_GE(lock.acquisitions, lock.contended) << lock.name;
  }

  // One status row per shard, and the deployed sensor is attributed to
  // exactly one of them.
  ASSERT_FALSE(status.shards.empty());
  size_t shard_sensors = 0;
  int64_t shard_ticks = 0;
  for (const auto& shard : status.shards) {
    shard_sensors += shard.sensors;
    shard_ticks += shard.ticks_total;
    EXPECT_GE(shard.lock_acquisitions, shard.lock_contended);
  }
  EXPECT_EQ(shard_sensors, 1u);
  EXPECT_GT(shard_ticks, 0);

  // The profiler saw the tick spans it meters.
  ASSERT_FALSE(status.hot_spans.empty());
  EXPECT_TRUE(std::any_of(
      status.hot_spans.begin(), status.hot_spans.end(),
      [](const telemetry::Profiler::SpanStats& s) { return s.name == "tick"; }));
}

TEST_F(ContainerStatusSurfaceTest, WebStatusEndpointReturnsUnifiedJson) {
  DeployAndRun();
  WebInterface web(container_.get());
  HttpRequest request;
  request.method = "GET";
  request.path = "/api/v1/status";
  const HttpResponse response = web.Handle(request);

  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("application/json"),
            std::string::npos);
  for (const char* key :
       {"\"node\":\"status-node\"", "\"version\"", "\"totals\"",
        "\"sensors\"", "\"shards\"", "\"locks\"", "\"hot_spans\"",
        "\"recovery\"", "\"tick_p95_ms\"", "\"lock_wait_share\""}) {
    EXPECT_NE(response.body.find(key), std::string::npos)
        << key << " missing in " << response.body;
  }
  EXPECT_NE(response.body.find("status-sensor"), std::string::npos);
}

TEST_F(ContainerStatusSurfaceTest, ManagementStatusCommandBothForms) {
  DeployAndRun();
  ManagementInterface mgmt(container_.get());

  // No argument: the container-wide snapshot.
  const std::string wide = mgmt.Execute("status");
  EXPECT_NE(wide.find("status-node"), std::string::npos) << wide;
  EXPECT_NE(wide.find("status-sensor"), std::string::npos) << wide;
  EXPECT_NE(wide.find("lock"), std::string::npos) << wide;
  EXPECT_NE(wide.find("tick"), std::string::npos) << wide;

  // With a sensor argument: the existing per-sensor counters.
  const std::string narrow = mgmt.Execute("status status-sensor");
  EXPECT_NE(narrow.find("status-sensor"), std::string::npos) << narrow;
  EXPECT_EQ(narrow.find("hot spans"), std::string::npos) << narrow;
}

TEST_F(ContainerStatusSurfaceTest, BuildInfoAndUptimeAreMetricFamilies) {
  DeployAndRun();
  const std::string text = container_->metrics()->RenderPrometheus();
  EXPECT_NE(text.find("gsn_build_info"), std::string::npos);
  EXPECT_NE(text.find("gsn_uptime_seconds"), std::string::npos);
  // Build info carries the version as a label, value pinned to 1.
  EXPECT_NE(text.find("version=\""), std::string::npos);
}

}  // namespace
}  // namespace gsn::container

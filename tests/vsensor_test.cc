#include <gtest/gtest.h>

#include "gsn/vsensor/descriptor_parser.h"
#include "gsn/vsensor/stream_source.h"
#include "gsn/vsensor/virtual_sensor.h"
#include "gsn/wrappers/generator_wrapper.h"
#include "gsn/wrappers/mote_wrapper.h"

namespace gsn::vsensor {
namespace {

using wrappers::WrapperConfig;

// The descriptor fragment from Figure 1 of the paper, completed with a
// root element and a local wrapper so it is deployable stand-alone.
constexpr char kPaperDescriptor[] = R"(
<virtual-sensor name="avg-temperature">
  <metadata>
    <predicate key="type" val="temperature" />
    <predicate key="location" val="bc143" />
  </metadata>
  <life-cycle pool-size="10" />
  <output-structure>
    <field name="TEMPERATURE" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="10s" />
  <input-stream name="dummy" rate="100" >
    <stream-source alias="src1" sampling-rate="1"
                   storage-size="1h" disconnect-buffer="10">
      <address wrapper="mote">
        <predicate key="type" val="temperature" />
        <predicate key="location" val="bc143" />
      </address>
      <query>select avg(temperature)
             from WRAPPER</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>
)";

// ------------------------------------------------------- DescriptorParser

TEST(DescriptorParserTest, ParsesPaperFigure1) {
  auto spec = ParseDescriptor(kPaperDescriptor);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "avg-temperature");
  EXPECT_EQ(spec->metadata.at("type"), "temperature");
  EXPECT_EQ(spec->metadata.at("location"), "bc143");
  EXPECT_EQ(spec->life_cycle.pool_size, 10);
  ASSERT_EQ(spec->output_structure.size(), 1u);
  EXPECT_EQ(spec->output_structure.field(0).name, "temperature");
  EXPECT_EQ(spec->output_structure.field(0).type, DataType::kInt);
  EXPECT_TRUE(spec->storage.permanent);
  EXPECT_EQ(spec->storage.history.kind, WindowSpec::Kind::kTime);
  EXPECT_EQ(spec->storage.history.duration_micros, 10 * kMicrosPerSecond);
  ASSERT_EQ(spec->input_streams.size(), 1u);
  const InputStreamSpec& stream = spec->input_streams[0];
  EXPECT_EQ(stream.name, "dummy");
  EXPECT_DOUBLE_EQ(stream.max_rate, 100.0);
  ASSERT_EQ(stream.sources.size(), 1u);
  const StreamSourceSpec& src = stream.sources[0];
  EXPECT_EQ(src.alias, "src1");
  EXPECT_DOUBLE_EQ(src.sampling_rate, 1.0);
  EXPECT_EQ(src.window.kind, WindowSpec::Kind::kTime);
  EXPECT_EQ(src.window.duration_micros, kMicrosPerHour);
  EXPECT_EQ(src.disconnect_buffer, 10);
  EXPECT_EQ(src.address.wrapper, "mote");
  EXPECT_EQ(src.address.predicates.at("location"), "bc143");
  EXPECT_EQ(StrToLower(src.query).substr(0, 6), "select");
}

TEST(DescriptorParserTest, RoundTripThroughToXml) {
  auto spec = ParseDescriptor(kPaperDescriptor);
  ASSERT_TRUE(spec.ok());
  auto reparsed = ParseDescriptor(spec->ToXml());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << spec->ToXml();
  EXPECT_EQ(reparsed->name, spec->name);
  EXPECT_EQ(reparsed->metadata, spec->metadata);
  EXPECT_EQ(reparsed->output_structure, spec->output_structure);
  EXPECT_EQ(reparsed->input_streams[0].sources[0].window.duration_micros,
            spec->input_streams[0].sources[0].window.duration_micros);
}

TEST(DescriptorParserTest, RejectsStructuralErrors) {
  // Wrong root element.
  EXPECT_FALSE(ParseDescriptor("<sensor name='x'/>").ok());
  // No output structure.
  EXPECT_FALSE(ParseDescriptor(
                   "<virtual-sensor name='x'>"
                   "<input-stream name='s'><stream-source alias='a'>"
                   "<address wrapper='mote'/></stream-source>"
                   "<query>select * from a</query></input-stream>"
                   "</virtual-sensor>")
                   .ok());
  // No input streams.
  EXPECT_FALSE(ParseDescriptor(
                   "<virtual-sensor name='x'><output-structure>"
                   "<field name='v' type='integer'/></output-structure>"
                   "</virtual-sensor>")
                   .ok());
  // Invalid SQL in query.
  EXPECT_FALSE(ParseDescriptor(
                   "<virtual-sensor name='x'><output-structure>"
                   "<field name='v' type='integer'/></output-structure>"
                   "<input-stream name='s'><stream-source alias='a'>"
                   "<address wrapper='mote'/>"
                   "<query>this is not sql</query></stream-source>"
                   "<query>select * from a</query></input-stream>"
                   "</virtual-sensor>")
                   .ok());
  // Bad sampling rate.
  EXPECT_FALSE(ParseDescriptor(
                   "<virtual-sensor name='x'><output-structure>"
                   "<field name='v' type='integer'/></output-structure>"
                   "<input-stream name='s'>"
                   "<stream-source alias='a' sampling-rate='1.5'>"
                   "<address wrapper='mote'/></stream-source>"
                   "<query>select * from a</query></input-stream>"
                   "</virtual-sensor>")
                   .ok());
  // Unknown field type.
  EXPECT_FALSE(ParseDescriptor(
                   "<virtual-sensor name='x'><output-structure>"
                   "<field name='v' type='quaternion'/></output-structure>"
                   "<input-stream name='s'><stream-source alias='a'>"
                   "<address wrapper='mote'/></stream-source>"
                   "<query>select * from a</query></input-stream>"
                   "</virtual-sensor>")
                   .ok());
}

TEST(WindowSpecRenderingTest, DescriptorSyntaxUnits) {
  WindowSpec w;
  w.kind = WindowSpec::Kind::kCount;
  w.count = 42;
  EXPECT_EQ(VirtualSensorSpec::window_str(w), "42");
  w.kind = WindowSpec::Kind::kTime;
  w.duration_micros = 2 * kMicrosPerHour;
  EXPECT_EQ(VirtualSensorSpec::window_str(w), "2h");
  w.duration_micros = 90 * kMicrosPerSecond;
  EXPECT_EQ(VirtualSensorSpec::window_str(w), "90s");
  w.duration_micros = 5 * kMicrosPerMinute;
  EXPECT_EQ(VirtualSensorSpec::window_str(w), "5m");
  w.duration_micros = 250 * kMicrosPerMilli;
  EXPECT_EQ(VirtualSensorSpec::window_str(w), "250ms");
  // Round trip through the parser.
  auto parsed = ParseWindowSpec(VirtualSensorSpec::window_str(w));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->duration_micros, w.duration_micros);
}

// ------------------------------------------------------------ StreamSource

std::unique_ptr<wrappers::Wrapper> MakeGenerator(int interval_ms,
                                                 uint64_t seed = 5) {
  WrapperConfig config;
  config.params = {{"interval-ms", std::to_string(interval_ms)},
                   {"payload-bytes", "0"}};
  config.seed = seed;
  auto w = wrappers::GeneratorWrapper::Make(config);
  EXPECT_TRUE(w.ok());
  return *std::move(w);
}

StreamSourceSpec BasicSourceSpec() {
  StreamSourceSpec spec;
  spec.alias = "src1";
  spec.window.kind = WindowSpec::Kind::kCount;
  spec.window.count = 100;
  spec.address.wrapper = "generator";
  return spec;
}

TEST(StreamSourceTest, AdmitsAndWindows) {
  StreamSource source(BasicSourceSpec(), MakeGenerator(100), 1);
  ASSERT_TRUE(source.Start().ok());
  ASSERT_TRUE(source.Poll(0).ok());
  auto admitted = source.Poll(kMicrosPerSecond);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->size(), 10u);
  EXPECT_EQ(source.admitted_count(), 10);
  Relation window = source.WindowRelation(kMicrosPerSecond);
  EXPECT_EQ(window.NumRows(), 10u);
  EXPECT_EQ(window.schema().field(0).name, "timed");
}

TEST(StreamSourceTest, SamplingReducesRate) {
  StreamSourceSpec spec = BasicSourceSpec();
  spec.sampling_rate = 0.5;
  spec.window.count = 100000;
  StreamSource source(spec, MakeGenerator(10), 3);
  ASSERT_TRUE(source.Poll(0).ok());
  ASSERT_TRUE(source.Poll(100 * kMicrosPerSecond).ok());  // 10000 elements
  const double admitted_frac =
      static_cast<double>(source.admitted_count()) / 10000.0;
  EXPECT_NEAR(admitted_frac, 0.5, 0.05);
  EXPECT_EQ(source.admitted_count() + source.sampled_out_count(), 10000);
}

TEST(StreamSourceTest, DisconnectBuffersAndReplays) {
  StreamSourceSpec spec = BasicSourceSpec();
  spec.disconnect_buffer = 5;
  StreamSource source(spec, MakeGenerator(100), 1);
  ASSERT_TRUE(source.Poll(0).ok());

  source.SetConnected(false);
  auto during = source.Poll(kMicrosPerSecond);  // 10 produced, buffer keeps 5
  ASSERT_TRUE(during.ok());
  EXPECT_TRUE(during->empty());
  EXPECT_EQ(source.dropped_disconnected_count(), 5);

  source.SetConnected(true);
  auto after = source.Poll(1100 * kMicrosPerMilli);  // replay 5 + 1 new
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 6u);
}

TEST(StreamSourceTest, DisconnectWithoutBufferDropsAll) {
  StreamSource source(BasicSourceSpec(), MakeGenerator(100), 1);
  ASSERT_TRUE(source.Poll(0).ok());
  source.SetConnected(false);
  ASSERT_TRUE(source.Poll(kMicrosPerSecond).ok());
  EXPECT_EQ(source.dropped_disconnected_count(), 10);
  source.SetConnected(true);
  auto after = source.Poll(1100 * kMicrosPerMilli);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);  // only the new element
}

// ------------------------------------------------------------ VirtualSensor

/// Deploys the Fig 1 descriptor manually (wrapper wired by hand; the
/// container normally does this).
std::unique_ptr<VirtualSensor> DeployPaperSensor(
    std::shared_ptr<VirtualClock> clock, double max_rate = 0) {
  auto spec_result = ParseDescriptor(kPaperDescriptor);
  EXPECT_TRUE(spec_result.ok());
  VirtualSensorSpec spec = *std::move(spec_result);
  spec.input_streams[0].max_rate = max_rate;

  WrapperConfig config;
  config.params = {{"interval-ms", "100"}, {"node-id", "1"}};
  config.seed = 11;
  auto wrapper = wrappers::MoteWrapper::Make(config);
  EXPECT_TRUE(wrapper.ok());

  std::vector<std::vector<std::unique_ptr<StreamSource>>> sources(1);
  sources[0].push_back(std::make_unique<StreamSource>(
      spec.input_streams[0].sources[0], *std::move(wrapper), 13));
  return std::make_unique<VirtualSensor>(std::move(spec), std::move(sources),
                                         clock);
}

TEST(VirtualSensorTest, PipelineProducesAveragedTemperature) {
  auto clock = std::make_shared<VirtualClock>();
  auto sensor = DeployPaperSensor(clock);
  ASSERT_TRUE(sensor->Start().ok());

  std::vector<StreamElement> outputs;
  sensor->AddListener([&](const VirtualSensor&, const StreamElement& e) {
    outputs.push_back(e);
  });

  clock->SetTime(0);
  ASSERT_TRUE(sensor->Tick(clock->NowMicros()).ok());  // anchors schedule
  clock->Advance(kMicrosPerSecond);
  auto produced = sensor->Tick(clock->NowMicros());
  ASSERT_TRUE(produced.ok()) << produced.status().ToString();

  // One trigger (one batch of 10 mote readings) -> one averaged output.
  EXPECT_EQ(*produced, 1);
  ASSERT_EQ(outputs.size(), 1u);
  ASSERT_EQ(outputs[0].values.size(), 1u);
  ASSERT_TRUE(outputs[0].values[0].is_int());  // cast to declared integer
  const int64_t avg_temp = outputs[0].values[0].int_value();
  EXPECT_GT(avg_temp, 0);
  EXPECT_LT(avg_temp, 60);

  const VirtualSensor::Stats stats = sensor->stats();
  EXPECT_EQ(stats.triggers, 1);
  EXPECT_EQ(stats.produced, 1);
  EXPECT_EQ(stats.errors, 0);
}

TEST(VirtualSensorTest, NoInputNoTrigger) {
  auto clock = std::make_shared<VirtualClock>();
  auto sensor = DeployPaperSensor(clock);
  ASSERT_TRUE(sensor->Start().ok());
  ASSERT_TRUE(sensor->Tick(0).ok());
  // 1ms later: no new mote sample yet.
  auto produced = sensor->Tick(kMicrosPerMilli);
  ASSERT_TRUE(produced.ok());
  EXPECT_EQ(*produced, 0);
  EXPECT_EQ(sensor->stats().triggers, 0);
}

TEST(VirtualSensorTest, RateBoundDropsExcessOutputs) {
  auto clock = std::make_shared<VirtualClock>();
  // Bound to 2 outputs/second.
  auto sensor = DeployPaperSensor(clock, 2.0);
  ASSERT_TRUE(sensor->Start().ok());
  int delivered = 0;
  sensor->AddListener(
      [&](const VirtualSensor&, const StreamElement&) { ++delivered; });

  ASSERT_TRUE(sensor->Tick(0).ok());
  // Tick every 100ms for 5 seconds: 50 triggers, each producing one row.
  for (int i = 1; i <= 50; ++i) {
    clock->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(sensor->Tick(clock->NowMicros()).ok());
  }
  // ~2/s over 5s plus the initial burst: roughly 11; definitely << 50.
  EXPECT_LE(delivered, 15);
  EXPECT_GE(delivered, 5);
  EXPECT_GT(sensor->stats().rate_limited, 30);
}

TEST(VirtualSensorTest, FindSourceAndStreamQuality) {
  auto clock = std::make_shared<VirtualClock>();
  auto sensor = DeployPaperSensor(clock);
  EXPECT_NE(sensor->FindSource("dummy", "src1"), nullptr);
  EXPECT_NE(sensor->FindSource("DUMMY", "SRC1"), nullptr);
  EXPECT_EQ(sensor->FindSource("dummy", "nope"), nullptr);
  EXPECT_EQ(sensor->FindSource("nope", "src1"), nullptr);
}

TEST(VirtualSensorTest, MissingOutputColumnYieldsNull) {
  auto spec_result = ParseDescriptor(kPaperDescriptor);
  ASSERT_TRUE(spec_result.ok());
  VirtualSensorSpec spec = *std::move(spec_result);
  // Result columns match the declared TEMPERATURE field neither by
  // name nor by arity (two columns vs one field), so no positional
  // fallback applies and the sensor emits NULL.
  spec.input_streams[0].sources[0].query =
      "select light, accel_x from wrapper";
  spec.input_streams[0].query = "select * from src1";

  WrapperConfig config;
  config.params = {{"interval-ms", "100"}};
  auto wrapper = wrappers::MoteWrapper::Make(config);
  ASSERT_TRUE(wrapper.ok());
  std::vector<std::vector<std::unique_ptr<StreamSource>>> sources(1);
  sources[0].push_back(std::make_unique<StreamSource>(
      spec.input_streams[0].sources[0], *std::move(wrapper), 13));
  auto clock = std::make_shared<VirtualClock>();
  VirtualSensor sensor(std::move(spec), std::move(sources), clock);
  ASSERT_TRUE(sensor.Start().ok());

  std::vector<StreamElement> outputs;
  sensor.AddListener([&](const VirtualSensor&, const StreamElement& e) {
    outputs.push_back(e);
  });
  ASSERT_TRUE(sensor.Tick(0).ok());
  clock->Advance(kMicrosPerSecond);
  ASSERT_TRUE(sensor.Tick(clock->NowMicros()).ok());
  ASSERT_FALSE(outputs.empty());
  EXPECT_TRUE(outputs[0].values[0].is_null());
}

}  // namespace
}  // namespace gsn::vsensor

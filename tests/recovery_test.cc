// Crash-recovery tests: the container manifest (deploy/undeploy event
// log), recovery-aware startup over --data-dir, checkpoint + log
// compaction, and the deterministic kill-mid-stream chaos scenario of
// docs/DURABILITY.md.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "gsn/container/container.h"
#include "gsn/container/manifest.h"
#include "gsn/storage/persistence_log.h"

namespace gsn::container {
namespace {

namespace fs = std::filesystem;

/// Deterministic producer: the generator wrapper emits seq 0,1,2,...
/// every 100ms of virtual time; permanent storage keeps the history.
std::string GenDescriptor(const std::string& name, bool permanent = true,
                          const std::string& storage_size = "10m") {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata><predicate key=\"type\" val=\"gen\"/></metadata>"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "</output-structure>"
         "<storage permanent-storage=\"" +
         std::string(permanent ? "true" : "false") + "\" size=\"" +
         storage_size + "\"/>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"generator\">"
         "      <predicate key=\"interval-ms\" val=\"100\"/>"
         "      <predicate key=\"payload-bytes\" val=\"0\"/>"
         "    </address>"
         "    <query>select seq from wrapper order by seq desc limit 1"
         "    </query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("gsn_recovery_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Container::Options DataDirOptions(const std::string& dir,
                                  std::shared_ptr<Clock> clock) {
  Container::Options options;
  options.node_id = "n";
  options.clock = std::move(clock);
  options.seed = 29;
  options.data_dir = dir;
  // Checkpoints only when tests ask for them.
  options.supervision.checkpoint_interval = 0;
  return options;
}

void RunTicks(Container* container, const std::shared_ptr<VirtualClock>& clock,
              int ticks, Timestamp step = 100 * kMicrosPerMilli) {
  for (int i = 0; i < ticks; ++i) {
    clock->Advance(step);
    ASSERT_TRUE(container->Tick().ok());
  }
}

int64_t CountRows(Container* container, const std::string& table) {
  auto result = container->Query("select count(*) from \"" + table + "\"");
  if (!result.ok()) return -1;
  return result->rows()[0][0].int_value();
}

// ----------------------------------------------------------- Manifest unit

TEST(ContainerManifestTest, AppendRecoverLiveSetRoundTrip) {
  TempDir dir("manifest");
  const std::string path = dir.path() + "/manifest.gsnlog";
  {
    auto manifest = ContainerManifest::Open(path);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE((*manifest)->AppendDeploy("a", "<a/>").ok());
    ASSERT_TRUE((*manifest)->AppendDeploy("b", "<b/>").ok());
    ASSERT_TRUE((*manifest)->AppendUndeploy("a").ok());
    ASSERT_TRUE((*manifest)->AppendDeploy("c", "<c/>").ok());
    EXPECT_EQ((*manifest)->appended_count(), 4u);
  }
  bool torn = true;
  auto events = ContainerManifest::Recover(path, &torn);
  ASSERT_TRUE(events.ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(events->size(), 4u);
  EXPECT_EQ((*events)[0].kind, ContainerManifest::Event::Kind::kDeploy);
  EXPECT_EQ((*events)[2].kind, ContainerManifest::Event::Kind::kUndeploy);

  // The live set folds undeploys away, in first-deploy order.
  const auto live = ContainerManifest::LiveSet(*events);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].first, "b");
  EXPECT_EQ(live[0].second, "<b/>");
  EXPECT_EQ(live[1].first, "c");
}

TEST(ContainerManifestTest, RedeployKeepsSlotWithNewDescriptor) {
  std::vector<ContainerManifest::Event> events;
  events.push_back({ContainerManifest::Event::Kind::kDeploy, "a", "<old/>"});
  events.push_back({ContainerManifest::Event::Kind::kDeploy, "b", "<b/>"});
  events.push_back({ContainerManifest::Event::Kind::kDeploy, "a", "<new/>"});
  const auto live = ContainerManifest::LiveSet(events);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].first, "a");
  EXPECT_EQ(live[0].second, "<new/>");  // latest descriptor wins
  EXPECT_EQ(live[1].first, "b");        // order by first deploy
}

TEST(ContainerManifestTest, TornTailTruncatedOnOpen) {
  TempDir dir("manifest_torn");
  const std::string path = dir.path() + "/manifest.gsnlog";
  {
    auto manifest = ContainerManifest::Open(path);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE((*manifest)->AppendDeploy("a", "<a/>").ok());
    ASSERT_TRUE((*manifest)->AppendDeploy("b", "<b/>").ok());
  }
  // Kill -9 mid-write: chop the last record's tail.
  fs::resize_file(path, fs::file_size(path) - 2);
  bool torn = false;
  auto events = ContainerManifest::Recover(path, &torn);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(torn);
  ASSERT_EQ(events->size(), 1u);

  // Open truncates, so post-crash appends are recoverable.
  {
    auto manifest = ContainerManifest::Open(path);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE((*manifest)->AppendDeploy("c", "<c/>").ok());
  }
  torn = true;
  events = ContainerManifest::Recover(path, &torn);
  ASSERT_TRUE(events.ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[1].sensor_name, "c");
}

TEST(ContainerManifestTest, CompactRewritesToLiveSet) {
  TempDir dir("manifest_compact");
  const std::string path = dir.path() + "/manifest.gsnlog";
  auto manifest = ContainerManifest::Open(path);
  ASSERT_TRUE(manifest.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*manifest)->AppendDeploy("churn", "<x/>").ok());
    ASSERT_TRUE((*manifest)->AppendUndeploy("churn").ok());
  }
  ASSERT_TRUE((*manifest)->AppendDeploy("keep", "<keep/>").ok());
  const auto before = fs::file_size(path);
  ASSERT_TRUE((*manifest)->Compact({{"keep", "<keep/>"}}).ok());
  EXPECT_LT(fs::file_size(path), before);
  // Still appendable after compaction.
  ASSERT_TRUE((*manifest)->AppendDeploy("late", "<late/>").ok());
  auto events = ContainerManifest::Recover(path, nullptr);
  ASSERT_TRUE(events.ok());
  const auto live = ContainerManifest::LiveSet(*events);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].first, "keep");
  EXPECT_EQ(live[1].first, "late");
}

// ------------------------------------------------------- Container recovery

TEST(ContainerRecoveryTest, RestartRedeploysSensorsAndRecoversTables) {
  TempDir dir("restart");
  auto clock = std::make_shared<VirtualClock>();
  int64_t rows_before = 0;
  {
    Container container(DataDirOptions(dir.path(), clock));
    ASSERT_TRUE(container.Deploy(GenDescriptor("alpha")).ok());
    ASSERT_TRUE(container.Deploy(GenDescriptor("beta")).ok());
    RunTicks(&container, clock, 20);
    rows_before = CountRows(&container, "alpha");
    ASSERT_GT(rows_before, 0);
    // Process exit without Shutdown(): the destructor must NOT record
    // manifest undeploys — the sensors come back on restart.
  }
  {
    Container container(DataDirOptions(dir.path(), clock));
    EXPECT_EQ(container.recovery_failures(), 0u);
    EXPECT_GE(container.recovered_records(), 2u);
    auto sensors = container.ListSensors();
    ASSERT_EQ(sensors.size(), 2u);
    // Exactly the pre-crash history, exactly once.
    EXPECT_EQ(CountRows(&container, "alpha"), rows_before);
    auto distinct = container.Query(
        "select count(*), count(distinct seq) from alpha");
    ASSERT_TRUE(distinct.ok());
    EXPECT_EQ(distinct->rows()[0][0], distinct->rows()[0][1]);
    // And the recovered sensors keep producing.
    RunTicks(&container, clock, 5);
    EXPECT_GT(CountRows(&container, "alpha"), rows_before);
  }
}

TEST(ContainerRecoveryTest, OperatorUndeployIsDurable) {
  TempDir dir("undeploy");
  auto clock = std::make_shared<VirtualClock>();
  {
    Container container(DataDirOptions(dir.path(), clock));
    ASSERT_TRUE(container.Deploy(GenDescriptor("keep")).ok());
    ASSERT_TRUE(container.Deploy(GenDescriptor("gone")).ok());
    RunTicks(&container, clock, 5);
    ASSERT_TRUE(container.Undeploy("gone").ok());
  }
  {
    Container container(DataDirOptions(dir.path(), clock));
    EXPECT_EQ(container.ListSensors(), std::vector<std::string>{"keep"});
  }
}

TEST(ContainerRecoveryTest, RecoveryFailureIsCountedNotFatal) {
  TempDir dir("bad_descriptor");
  auto clock = std::make_shared<VirtualClock>();
  {
    Container container(DataDirOptions(dir.path(), clock));
    ASSERT_TRUE(container.Deploy(GenDescriptor("good")).ok());
    // Poison the manifest with a descriptor that can't redeploy.
    ASSERT_TRUE(container.manifest()
                    ->AppendDeploy("ghost", "<virtual-sensor broken")
                    .ok());
  }
  {
    Container container(DataDirOptions(dir.path(), clock));
    EXPECT_EQ(container.recovery_failures(), 1u);
    EXPECT_EQ(container.ListSensors(), std::vector<std::string>{"good"});
    RunTicks(&container, clock, 3);
  }
}

TEST(ContainerRecoveryTest, CheckpointBoundsWalAndManifestReplay) {
  TempDir dir("checkpoint");
  auto clock = std::make_shared<VirtualClock>();
  const std::string wal = dir.path() + "/ckpt.gsnlog";
  {
    Container container(DataDirOptions(dir.path(), clock));
    // Retention window of 5 rows; the WAL grows past it between
    // checkpoints.
    ASSERT_TRUE(container.Deploy(GenDescriptor("ckpt", true, "5")).ok());
    RunTicks(&container, clock, 40);
    auto before = storage::PersistenceLog::Recover(wal, nullptr);
    ASSERT_TRUE(before.ok());
    EXPECT_GT(before->size(), 5u);  // unbounded history so far

    ASSERT_TRUE(container.Checkpoint().ok());
    auto after = storage::PersistenceLog::Recover(wal, nullptr);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->size(), 5u);  // O(window), not O(history)

    // The manifest compacted to the live deploy set: one record.
    auto events =
        ContainerManifest::Recover(dir.path() + "/manifest.gsnlog", nullptr);
    ASSERT_TRUE(events.ok());
    EXPECT_EQ(events->size(), 1u);

    // Post-checkpoint appends land after the compacted prefix.
    RunTicks(&container, clock, 3);
    auto suffix = storage::PersistenceLog::Recover(wal, nullptr);
    ASSERT_TRUE(suffix.ok());
    EXPECT_EQ(suffix->size(), 5u + 3u);  // checkpoint + suffix only
  }
  {
    // Restart replays checkpoint + suffix into the 5-row live window;
    // the rows the checkpoint evicted moved into columnar segments, so
    // the full history stays queryable even though the WAL is bounded.
    Container container(DataDirOptions(dir.path(), clock));
    EXPECT_EQ(container.ListSensors(), std::vector<std::string>{"ckpt"});
    // 43 ticks: the first anchors, so seqs 0..41 were emitted — and the
    // tiered scan must surface every one of them.
    EXPECT_EQ(CountRows(&container, "ckpt"), 42);
    auto newest = container.Query("select max(seq), min(seq) from ckpt");
    ASSERT_TRUE(newest.ok());
    EXPECT_EQ(newest->rows()[0][0].int_value(), 41);
    EXPECT_EQ(newest->rows()[0][1].int_value(), 0);
    ASSERT_NE(container.segment_catalog(), nullptr);
    EXPECT_GT(container.segment_catalog()->segment_count(), 0u);
  }
}

TEST(ContainerRecoveryTest, PeriodicCheckpointRunsFromTick) {
  TempDir dir("periodic");
  auto clock = std::make_shared<VirtualClock>();
  Container::Options options = DataDirOptions(dir.path(), clock);
  options.supervision.checkpoint_interval = kMicrosPerSecond;
  Container container(std::move(options));
  ASSERT_TRUE(container.Deploy(GenDescriptor("p", true, "5")).ok());
  RunTicks(&container, clock, 30);  // 3s: at least two checkpoint rounds
  auto recovered =
      storage::PersistenceLog::Recover(dir.path() + "/p.gsnlog", nullptr);
  ASSERT_TRUE(recovered.ok());
  // The WAL stays near the retention window instead of the full 29-row
  // history (a few post-checkpoint appends ride on top).
  EXPECT_LE(recovered->size(), 5u + 10u);
}

TEST(ContainerRecoveryTest, StorageDirDefaultsToDataDir) {
  TempDir dir("storage_default");
  auto clock = std::make_shared<VirtualClock>();
  {
    Container container(DataDirOptions(dir.path(), clock));
    ASSERT_TRUE(container.Deploy(GenDescriptor("solo")).ok());
    RunTicks(&container, clock, 5);
  }
  // --data-dir alone is a complete durability root: the per-sensor WAL
  // landed next to the manifest.
  EXPECT_TRUE(fs::exists(dir.path() + "/solo.gsnlog"));
  EXPECT_TRUE(fs::exists(dir.path() + "/manifest.gsnlog"));
}

// ------------------------------------------------------- Concurrent drivers

// POST /api/v1/checkpoint and the `checkpoint` management command run
// Checkpoint() on HTTP threads while gsnd's RealtimePump keeps ticking
// pipelines. The WAL handle swap must be serialized against pipeline
// appends: a row appended through a stale handle lands on the
// compacted-over inode and is silently lost to every future recovery
// (or worse, written through a destroyed handle).
TEST(ContainerRecoveryTest, CheckpointRacingAppendsLosesNoRows) {
  TempDir dir("ckpt_race");
  auto clock = std::make_shared<VirtualClock>();
  int64_t rows_before = 0;
  {
    Container container(DataDirOptions(dir.path(), clock));
    ASSERT_TRUE(container.Deploy(GenDescriptor("raced")).ok());
    std::atomic<bool> stop{false};
    std::thread op([&] {
      while (!stop.load()) {
        EXPECT_TRUE(container.Checkpoint().ok());
      }
    });
    for (int i = 0; i < 40; ++i) {
      clock->Advance(100 * kMicrosPerMilli);
      EXPECT_TRUE(container.Tick().ok());
    }
    stop.store(true);
    op.join();
    rows_before = CountRows(&container, "raced");
    ASSERT_GT(rows_before, 0);
  }
  // Every row the pipelines appended survives the checkpoint storm,
  // exactly once.
  Container container(DataDirOptions(dir.path(), clock));
  EXPECT_EQ(CountRows(&container, "raced"), rows_before);
  auto dup =
      container.Query("select count(*), count(distinct seq) from raced");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->rows()[0][0], dup->rows()[0][1]);
}

// POST /api/v1/drain runs Shutdown() — including its flush Tick rounds
// — on an HTTP thread while the RealtimePump keeps calling Tick();
// tick_mu_ serializes the two drivers (pools, checkpoint trigger).
TEST(ContainerRecoveryTest, DrainRacingPumpTicksIsSafe) {
  TempDir dir("drain_race");
  auto clock = std::make_shared<VirtualClock>();
  int64_t rows_at_drain = 0;
  {
    Container::Options options = DataDirOptions(dir.path(), clock);
    // Let the periodic trigger fire mid-race too.
    options.supervision.checkpoint_interval = 200 * kMicrosPerMilli;
    Container container(std::move(options));
    ASSERT_TRUE(container.Deploy(GenDescriptor("drained")).ok());
    std::atomic<bool> stop{false};
    std::thread pump([&] {  // RealtimePump stand-in
      while (!stop.load()) {
        EXPECT_TRUE(container.Tick().ok());
      }
    });
    for (int i = 0; i < 20; ++i) {
      clock->Advance(100 * kMicrosPerMilli);
      EXPECT_TRUE(container.Tick().ok());
    }
    EXPECT_TRUE(container.Shutdown().ok());  // the HTTP drain
    stop.store(true);
    pump.join();
    EXPECT_TRUE(container.draining());
    rows_at_drain = CountRows(&container, "drained");
    ASSERT_GT(rows_at_drain, 0);
  }
  // Drain checkpointed and fsynced: restart recovers the full history.
  Container container(DataDirOptions(dir.path(), clock));
  EXPECT_EQ(container.ListSensors(), std::vector<std::string>{"drained"});
  EXPECT_EQ(CountRows(&container, "drained"), rows_at_drain);
}

// An operator requeue racing an undeploy of the same sensor must never
// touch a destroyed source: either the tuple is reinjected (sensor
// still live) or it goes back to quarantine (sensor gone) — the entry
// is never silently dropped.
TEST(ContainerRecoveryTest, RequeueRacingUndeployKeepsOrReinjectsTuple) {
  auto clock = std::make_shared<VirtualClock>();
  Container::Options options;
  options.node_id = "race";
  options.clock = clock;
  options.seed = 31;
  options.supervision.checkpoint_interval = 0;
  Container container(std::move(options));
  // Poison pipeline: every trigger fails, filling quarantine.
  ASSERT_TRUE(
      container
          .Deploy("<virtual-sensor name=\"q\">"
                  "<output-structure>"
                  "  <field name=\"seq\" type=\"integer\"/>"
                  "  <field name=\"inv\" type=\"integer\"/>"
                  "</output-structure>"
                  "<storage permanent-storage=\"false\" size=\"10m\"/>"
                  "<input-stream name=\"in\">"
                  "  <stream-source alias=\"src\" storage-size=\"1\">"
                  "    <address wrapper=\"generator\">"
                  "      <predicate key=\"interval-ms\" val=\"100\"/>"
                  "      <predicate key=\"payload-bytes\" val=\"0\"/>"
                  "    </address>"
                  "    <query>select seq from wrapper order by seq desc "
                  "limit 1</query>"
                  "  </stream-source>"
                  "  <query>select seq, 1 / (seq * 0) as inv from src</query>"
                  "</input-stream>"
                  "</virtual-sensor>")
          .ok());
  RunTicks(&container, clock, 6);
  const auto entries = container.quarantine().List();
  ASSERT_FALSE(entries.empty());

  std::thread undeployer([&] { EXPECT_TRUE(container.Undeploy("q").ok()); });
  size_t reinjected = 0;
  for (const auto& entry : entries) {
    const Status s = container.RequeueQuarantined(entry.id);
    if (s.ok()) {
      ++reinjected;  // won the race: source was still live
    } else {
      EXPECT_EQ(s.code(), StatusCode::kNotFound);  // lost it: entry kept
    }
  }
  undeployer.join();
  // Nothing vanished: every entry was either reinjected or kept.
  EXPECT_EQ(container.quarantine().size(), entries.size() - reinjected);
}

// ------------------------------------------------------------- Chaos (kill)

/// Copies the durability root as it exists RIGHT NOW — byte-identical
/// to what a kill -9 at this instant would leave behind.
void SnapshotDir(const std::string& from, const std::string& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    fs::copy(entry.path(), fs::path(to) / entry.path().filename());
  }
}

TEST(ContainerRecoveryTest, KillMidStreamChaosIsDeterministic) {
  TempDir dir("chaos");
  TempDir snapshot("chaos_snapshot");
  auto clock = std::make_shared<VirtualClock>();

  int64_t rows_at_kill = 0;
  {
    Container container(DataDirOptions(dir.path(), clock));
    ASSERT_TRUE(container.Deploy(GenDescriptor("victim")).ok());
    ASSERT_TRUE(container.Deploy(GenDescriptor("bystander")).ok());
    RunTicks(&container, clock, 17);
    // kill -9 mid-stream: freeze the on-disk state while the container
    // is still running (no Shutdown, no destructor, no fsync beyond the
    // per-append flush).
    rows_at_kill = CountRows(&container, "victim");
    ASSERT_GT(rows_at_kill, 0);
    SnapshotDir(dir.path(), snapshot.path());
  }

  // Restart from the frozen state.
  Container container(DataDirOptions(snapshot.path(), clock));
  EXPECT_EQ(container.recovery_failures(), 0u);
  ASSERT_EQ(container.ListSensors().size(), 2u);
  // Every flushed row recovered, exactly once.
  EXPECT_EQ(CountRows(&container, "victim"), rows_at_kill);
  auto dup = container.Query(
      "select count(*), count(distinct seq) from victim");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->rows()[0][0], dup->rows()[0][1]);
  // The recovered node streams on.
  RunTicks(&container, clock, 5);
  EXPECT_GT(CountRows(&container, "victim"), rows_at_kill);
  EXPECT_GT(CountRows(&container, "bystander"), 0);
}

}  // namespace
}  // namespace gsn::container

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gsn/wrappers/camera_wrapper.h"
#include "gsn/wrappers/csv_wrapper.h"
#include "gsn/wrappers/generator_wrapper.h"
#include "gsn/wrappers/mote_wrapper.h"
#include "gsn/wrappers/rfid_wrapper.h"
#include "gsn/wrappers/wrapper.h"

namespace gsn::wrappers {
namespace {

WrapperConfig Config(ParamMap params, uint64_t seed = 7) {
  WrapperConfig c;
  c.instance_name = "test";
  c.params = std::move(params);
  c.seed = seed;
  return c;
}

// ---------------------------------------------------------------- Registry

TEST(WrapperRegistryTest, BuiltinsRegistered) {
  WrapperRegistry registry;
  WrapperRegistry::RegisterBuiltins(&registry);
  for (const char* name : {"mote", "camera", "rfid", "generator", "csv"}) {
    EXPECT_TRUE(registry.Has(name)) << name;
  }
  EXPECT_FALSE(registry.Has("tinyos2000"));
  EXPECT_EQ(registry.Create("tinyos2000", Config({})).status().code(),
            StatusCode::kNotFound);
}

TEST(WrapperRegistryTest, NamesAreCaseInsensitive) {
  WrapperRegistry registry;
  WrapperRegistry::RegisterBuiltins(&registry);
  EXPECT_TRUE(registry.Has("MOTE"));
  EXPECT_TRUE(registry.Create("Generator", Config({})).ok());
}

TEST(WrapperRegistryTest, ReRegistrationReplaces) {
  WrapperRegistry registry;
  WrapperRegistry::RegisterBuiltins(&registry);
  bool called = false;
  registry.Register("mote", [&](const WrapperConfig& c)
                        -> Result<std::unique_ptr<Wrapper>> {
    called = true;
    return GeneratorWrapper::Make(c);
  });
  ASSERT_TRUE(registry.Create("mote", Config({})).ok());
  EXPECT_TRUE(called);
}

// ------------------------------------------------------------- Generator

TEST(GeneratorWrapperTest, EmitsOnSchedule) {
  auto w = GeneratorWrapper::Make(Config({{"interval-ms", "100"},
                                          {"payload-bytes", "15"}}));
  ASSERT_TRUE(w.ok());
  // First poll anchors the schedule and emits nothing.
  auto first = (*w)->Poll(0);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->empty());
  // 1 second later: 10 elements at 100ms spacing.
  auto batch = (*w)->Poll(1000 * kMicrosPerMilli);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 10u);
  EXPECT_EQ((*batch)[0].timed, 100 * kMicrosPerMilli);
  EXPECT_EQ((*batch)[9].timed, 1000 * kMicrosPerMilli);
  // Sequence numbers increase.
  EXPECT_EQ((*batch)[0].values[0], Value::Int(0));
  EXPECT_EQ((*batch)[9].values[0], Value::Int(9));
}

TEST(GeneratorWrapperTest, PayloadSizeIsExact) {
  for (int64_t size : {15, 50, 100, 16 * 1024, 32 * 1024, 75 * 1024}) {
    auto w = GeneratorWrapper::Make(
        Config({{"payload-bytes", std::to_string(size)}}));
    ASSERT_TRUE(w.ok());
    (void)(*w)->Poll(0);
    auto batch = (*w)->Poll(kMicrosPerSecond);
    ASSERT_TRUE(batch.ok());
    ASSERT_FALSE(batch->empty());
    const StreamElement& e = (*batch)[0];
    EXPECT_EQ(e.values[2].binary_value()->size(), static_cast<size_t>(size));
    // 8 bytes seq + 8 bytes value + payload.
    EXPECT_EQ(e.PayloadBytes(), static_cast<size_t>(size) + 16);
  }
}

TEST(GeneratorWrapperTest, RejectsBadParams) {
  EXPECT_FALSE(GeneratorWrapper::Make(Config({{"payload-bytes", "-1"}})).ok());
  EXPECT_FALSE(GeneratorWrapper::Make(Config({{"value-period", "0"}})).ok());
  EXPECT_FALSE(
      GeneratorWrapper::Make(Config({{"interval-ms", "abc"}})).ok());
}

// ------------------------------------------------------------------ Mote

TEST(MoteWrapperTest, SchemaMatchesDemoSensors) {
  auto w = MoteWrapper::Make(Config({{"node-id", "42"}}));
  ASSERT_TRUE(w.ok());
  const Schema& s = (*w)->output_schema();
  ASSERT_EQ(s.size(), 5u);
  EXPECT_TRUE(s.Contains("light"));
  EXPECT_TRUE(s.Contains("temperature"));
  EXPECT_TRUE(s.Contains("accel_x"));
  EXPECT_TRUE(s.Contains("accel_y"));
}

TEST(MoteWrapperTest, ReadingsAreBoundedAndDeterministic) {
  auto w1 = MoteWrapper::Make(Config({{"interval-ms", "100"}}, 99));
  auto w2 = MoteWrapper::Make(Config({{"interval-ms", "100"}}, 99));
  ASSERT_TRUE(w1.ok());
  (void)(*w1)->Poll(0);
  (void)(*w2)->Poll(0);
  auto b1 = (*w1)->Poll(10 * kMicrosPerSecond);
  auto b2 = (*w2)->Poll(10 * kMicrosPerSecond);
  ASSERT_TRUE(b1.ok());
  ASSERT_EQ(b1->size(), 100u);
  for (size_t i = 0; i < b1->size(); ++i) {
    const double light = (*b1)[i].values[1].double_value();
    EXPECT_GE(light, 0.0);
    EXPECT_LE(light, 2000.0);
    const int64_t temp = (*b1)[i].values[2].int_value();
    EXPECT_GE(temp, -20);
    EXPECT_LE(temp, 60);
    // Same seed => identical stream.
    EXPECT_EQ((*b1)[i].values[2], (*b2)[i].values[2]);
  }
}

// ---------------------------------------------------------------- Camera

TEST(CameraWrapperTest, FramesHaveConfiguredSize) {
  auto w = CameraWrapper::Make(Config(
      {{"interval-ms", "1000"}, {"image-bytes", "16384"}, {"camera-id", "3"}}));
  ASSERT_TRUE(w.ok());
  (void)(*w)->Poll(0);
  auto batch = (*w)->Poll(2 * kMicrosPerSecond);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].values[0], Value::Int(3));
  EXPECT_EQ((*batch)[0].values[1].binary_value()->size(), 16384u);
  // Frames differ (header contains the frame counter).
  EXPECT_NE(*(*batch)[0].values[1].binary_value(),
            *(*batch)[1].values[1].binary_value());
}

// ------------------------------------------------------------------ RFID

TEST(RfidWrapperTest, DetectionProbabilityRoughlyHolds) {
  auto w = RfidWrapper::Make(Config({{"interval-ms", "100"},
                                     {"detect-probability", "0.2"},
                                     {"tags", "alice,bob"}}));
  ASSERT_TRUE(w.ok());
  (void)(*w)->Poll(0);
  auto batch = (*w)->Poll(1000 * kMicrosPerSecond);  // 10000 polls
  ASSERT_TRUE(batch.ok());
  const double rate = static_cast<double>(batch->size()) / 10000.0;
  EXPECT_NEAR(rate, 0.2, 0.03);
  for (const StreamElement& e : *batch) {
    const std::string& tag = e.values[1].string_value();
    EXPECT_TRUE(tag == "alice" || tag == "bob") << tag;
    EXPECT_GE(e.values[2].int_value(), -70);
    EXPECT_LE(e.values[2].int_value(), -30);
  }
}

TEST(RfidWrapperTest, InjectedDetectionAppearsOnNextPoll) {
  auto w = RfidWrapper::Make(Config(
      {{"interval-ms", "100"}, {"detect-probability", "0"}, {"tags", "x"}}));
  ASSERT_TRUE(w.ok());
  auto* rfid = static_cast<RfidWrapper*>(w->get());
  (void)rfid->Poll(0);
  auto empty = rfid->Poll(100 * kMicrosPerMilli);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  rfid->InjectDetection("badge-7");
  auto batch = rfid->Poll(200 * kMicrosPerMilli);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].values[1], Value::String("badge-7"));
}

TEST(RfidWrapperTest, RejectsBadParams) {
  EXPECT_FALSE(RfidWrapper::Make(Config({{"detect-probability", "2"}})).ok());
  EXPECT_FALSE(RfidWrapper::Make(Config({{"tags", " , "}})).ok());
}

// ------------------------------------------------------------------- CSV

class CsvWrapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("gsn_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void WriteFile(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

  std::filesystem::path path_;
};

TEST_F(CsvWrapperTest, ReplaysWithExplicitTimestamps) {
  WriteFile("timed,temp,label\n1000,20,a\n2000,25,b\n5000,30,c\n");
  auto w = CsvWrapper::Make(Config({{"file", path_.string()}}));
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  const Schema& s = (*w)->output_schema();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.field(0).type, DataType::kInt);
  EXPECT_EQ(s.field(1).type, DataType::kString);

  // base_time anchors at first poll (t=100).
  auto none = (*w)->Poll(100);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  auto batch = (*w)->Poll(100 + 2000);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].timed, 1100);
  EXPECT_EQ((*batch)[0].values[0], Value::Int(20));
  EXPECT_EQ((*batch)[1].values[1], Value::String("b"));
}

TEST_F(CsvWrapperTest, SpacingWithoutTimedColumn) {
  WriteFile("v\n1\n2\n3\n");
  auto w = CsvWrapper::Make(
      Config({{"file", path_.string()}, {"interval-ms", "500"}}));
  ASSERT_TRUE(w.ok());
  (void)(*w)->Poll(0);
  auto batch = (*w)->Poll(kMicrosPerSecond);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 2u);  // rows at 500ms and 1000ms
}

TEST_F(CsvWrapperTest, QuotedFieldsAndEmptyCells) {
  WriteFile("name,v\n\"hello, world\",1\n\"say \"\"hi\"\"\",\n");
  auto w = CsvWrapper::Make(Config({{"file", path_.string()}}));
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  (void)(*w)->Poll(0);
  auto batch = (*w)->Poll(10 * kMicrosPerSecond);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].values[0], Value::String("hello, world"));
  EXPECT_EQ((*batch)[1].values[0], Value::String("say \"hi\""));
  EXPECT_TRUE((*batch)[1].values[1].is_null());
}

TEST_F(CsvWrapperTest, ErrorsOnMissingFileAndRaggedRows) {
  EXPECT_FALSE(CsvWrapper::Make(Config({{"file", "/nonexistent.csv"}})).ok());
  EXPECT_FALSE(CsvWrapper::Make(Config({})).ok());
  WriteFile("a,b\n1\n");
  EXPECT_FALSE(CsvWrapper::Make(Config({{"file", path_.string()}})).ok());
}

TEST_F(CsvWrapperTest, LoopRestartsReplay) {
  WriteFile("v\n1\n2\n");
  auto w = CsvWrapper::Make(Config(
      {{"file", path_.string()}, {"interval-ms", "100"}, {"loop", "true"}}));
  ASSERT_TRUE(w.ok());
  (void)(*w)->Poll(0);
  auto first = (*w)->Poll(kMicrosPerSecond);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 2u);
  // Next cycle re-anchors; polling further produces rows again.
  auto second = (*w)->Poll(2 * kMicrosPerSecond);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(second->size(), 1u);
}

}  // namespace
}  // namespace gsn::wrappers

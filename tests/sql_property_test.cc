// Property tests for the SQL engine: algebraic invariants that must
// hold on randomly generated relations, and a differential test of the
// constant folder against the executor.

#include <gtest/gtest.h>

#include <set>

#include "gsn/sql/executor.h"
#include "gsn/sql/optimizer.h"
#include "gsn/sql/parser.h"
#include "gsn/util/rng.h"

namespace gsn::sql {
namespace {

/// Random table: t(a int, b int, c double, s string) with NULLs mixed in.
Relation RandomRelation(uint64_t seed, size_t rows) {
  Rng rng(seed);
  Schema schema;
  schema.AddField("a", DataType::kInt);
  schema.AddField("b", DataType::kInt);
  schema.AddField("c", DataType::kDouble);
  schema.AddField("s", DataType::kString);
  Relation rel(schema);
  static const char* kStrings[] = {"mica2", "mica2dot", "tinynode", "axis"};
  for (size_t i = 0; i < rows; ++i) {
    auto maybe_null = [&](Value v) {
      return rng.NextBool(0.1) ? Value::Null() : v;
    };
    EXPECT_TRUE(
        rel.AddRow({maybe_null(Value::Int(rng.NextInt(-20, 20))),
                    maybe_null(Value::Int(rng.NextInt(0, 5))),
                    maybe_null(Value::Double(rng.NextDouble(-1, 1))),
                    maybe_null(Value::String(
                        kStrings[rng.NextUint64(4)]))})
            .ok());
  }
  return rel;
}

class SqlPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SqlPropertyTest() {
    resolver_.Put("t", RandomRelation(GetParam(), 60));
    resolver_.Put("u", RandomRelation(GetParam() + 1000, 25));
  }

  Relation Q(const std::string& sql) {
    Executor exec(&resolver_);
    Result<Relation> r = exec.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *std::move(r) : Relation();
  }

  MapResolver resolver_;
};

TEST_P(SqlPropertyTest, FilterPartitionsWithNulls) {
  // 3VL: p, NOT p, and p IS NULL partition the rows.
  const size_t total = Q("select * from t").NumRows();
  const size_t pos = Q("select * from t where a > 0").NumRows();
  const size_t neg = Q("select * from t where not (a > 0)").NumRows();
  const size_t unknown = Q("select * from t where (a > 0) is null").NumRows();
  EXPECT_EQ(pos + neg + unknown, total);
}

TEST_P(SqlPropertyTest, ConjunctionShrinks) {
  const size_t p = Q("select * from t where a > 0").NumRows();
  const size_t pq = Q("select * from t where a > 0 and b < 3").NumRows();
  const size_t p_or_q = Q("select * from t where a > 0 or b < 3").NumRows();
  EXPECT_LE(pq, p);
  EXPECT_GE(p_or_q, p);
}

TEST_P(SqlPropertyTest, OrderByProducesSortedPrefixUnderLimit) {
  Relation sorted = Q("select a from t where a is not null order by a");
  for (size_t i = 1; i < sorted.NumRows(); ++i) {
    EXPECT_LE(sorted.rows()[i - 1][0].Compare(sorted.rows()[i][0]), 0);
  }
  Relation limited =
      Q("select a from t where a is not null order by a limit 5");
  ASSERT_LE(limited.NumRows(), 5u);
  for (size_t i = 0; i < limited.NumRows(); ++i) {
    EXPECT_EQ(limited.rows()[i][0], sorted.rows()[i][0]);
  }
}

TEST_P(SqlPropertyTest, DistinctHasNoDuplicatesAndCoversAll) {
  Relation all = Q("select b from t");
  Relation distinct = Q("select distinct b from t");
  std::set<std::string> seen;
  for (const auto& row : distinct.rows()) {
    EXPECT_TRUE(seen.insert(row[0].ToString()).second)
        << "duplicate " << row[0].ToString();
  }
  std::set<std::string> original;
  for (const auto& row : all.rows()) original.insert(row[0].ToString());
  EXPECT_EQ(seen, original);
}

TEST_P(SqlPropertyTest, SetOperationAlgebra) {
  const size_t t_rows = Q("select b from t").NumRows();
  const size_t u_rows = Q("select b from u").NumRows();
  EXPECT_EQ(Q("select b from t union all select b from u").NumRows(),
            t_rows + u_rows);

  const size_t union_rows =
      Q("select b from t union select b from u").NumRows();
  const size_t distinct_t = Q("select distinct b from t").NumRows();
  EXPECT_GE(union_rows, distinct_t);
  EXPECT_LE(union_rows,
            distinct_t + Q("select distinct b from u").NumRows());

  // INTERSECT union EXCEPT reconstructs distinct t.
  const size_t inter =
      Q("select b from t intersect select b from u").NumRows();
  const size_t except = Q("select b from t except select b from u").NumRows();
  EXPECT_EQ(inter + except, distinct_t);
}

TEST_P(SqlPropertyTest, GroupCountsSumToFilteredTotal) {
  Relation groups = Q("select b, count(*) as n from t group by b");
  int64_t sum = 0;
  for (const auto& row : groups.rows()) {
    sum += row[1].int_value();
  }
  EXPECT_EQ(sum, static_cast<int64_t>(Q("select * from t").NumRows()));
}

TEST_P(SqlPropertyTest, AggregateBounds) {
  Relation r = Q(
      "select min(a), avg(a), max(a), count(a) from t where a is not null");
  ASSERT_EQ(r.NumRows(), 1u);
  if (r.rows()[0][3].int_value() == 0) return;  // all NULL this seed
  const double min = static_cast<double>(r.rows()[0][0].int_value());
  const double avg = r.rows()[0][1].double_value();
  const double max = static_cast<double>(r.rows()[0][2].int_value());
  EXPECT_LE(min, avg);
  EXPECT_LE(avg, max);
}

TEST_P(SqlPropertyTest, JoinCardinalityBounds) {
  const size_t t_rows = Q("select * from t").NumRows();
  const size_t u_rows = Q("select * from u").NumRows();
  const size_t cross = Q("select * from t cross join u").NumRows();
  EXPECT_EQ(cross, t_rows * u_rows);
  const size_t inner =
      Q("select * from t join u on t.b = u.b").NumRows();
  EXPECT_LE(inner, cross);
  // LEFT JOIN preserves every left row at least once.
  const size_t left =
      Q("select * from t left join u on t.b = u.b").NumRows();
  EXPECT_GE(left, t_rows);
  EXPECT_GE(left, inner);
}

TEST_P(SqlPropertyTest, SubqueryEquivalence) {
  // IN (subquery) must agree with the join-based formulation on
  // non-NULL keys.
  const size_t via_in = Q(
      "select * from t where b is not null and b in "
      "(select b from u where b is not null)")
                            .NumRows();
  const size_t via_exists = Q(
      "select * from t where b is not null and exists "
      "(select 1 from u where u.b = t.b)")
                                .NumRows();
  EXPECT_EQ(via_in, via_exists);
}

TEST_P(SqlPropertyTest, OffsetPagination) {
  const Relation all = Q("select a from t order by a, s");
  size_t paged = 0;
  for (int64_t offset = 0;; offset += 7) {
    Relation page = Q("select a from t order by a, s limit 7 offset " +
                      std::to_string(offset));
    paged += page.NumRows();
    if (page.NumRows() < 7) break;
  }
  EXPECT_EQ(paged, all.NumRows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------- folding diff

/// Differential test: any random literal-only expression must evaluate
/// to the same value through the optimizer (FoldConstants) and through
/// the executor (SELECT expr).
class FoldDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomLiteralExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBool(0.3)) {
    switch (rng->NextUint64(4)) {
      case 0:
        return std::to_string(rng->NextInt(-9, 9));
      case 1:
        return std::to_string(rng->NextInt(1, 9)) + "." +
               std::to_string(rng->NextInt(0, 9));
      case 2:
        return rng->NextBool(0.5) ? "true" : "false";
      default:
        return "null";
    }
  }
  static const char* kBinaryOps[] = {"+", "-", "*", "and", "or",
                                     "=", "<", ">=", "<>"};
  const std::string lhs = RandomLiteralExpr(rng, depth - 1);
  const std::string rhs = RandomLiteralExpr(rng, depth - 1);
  switch (rng->NextUint64(4)) {
    case 0:
      return "(" + lhs + " " + kBinaryOps[rng->NextUint64(9)] + " " + rhs +
             ")";
    case 1:
      return "(not " + lhs + ")";
    case 2:
      return "(" + lhs + " is null)";
    default:
      return "(case when " + lhs + " then " + rhs + " else " +
             RandomLiteralExpr(rng, depth - 1) + " end)";
  }
}

TEST_P(FoldDifferentialTest, FoldMatchesExecution) {
  Rng rng(GetParam() * 2654435761ULL);
  Executor exec(nullptr);
  int compared = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string expr_sql = RandomLiteralExpr(&rng, 4);
    // Executor path.
    Result<Relation> executed = exec.Query("select " + expr_sql);
    // Optimizer path.
    auto parsed = ParseExpression(expr_sql);
    ASSERT_TRUE(parsed.ok()) << expr_sql;
    auto folded = FoldConstants(parsed->get());
    ASSERT_TRUE(folded.ok()) << expr_sql;

    if (!executed.ok()) {
      // Runtime errors (type mismatch etc.) must not be folded away
      // into literals.
      EXPECT_NE((*parsed)->kind, ExprKind::kLiteral) << expr_sql;
      continue;
    }
    if ((*parsed)->kind == ExprKind::kLiteral) {
      ++compared;
      EXPECT_EQ((*parsed)->literal, executed->rows()[0][0])
          << expr_sql << " folded to " << (*parsed)->literal.ToString()
          << " but executed to " << executed->rows()[0][0].ToString();
    }
  }
  // The generator must actually produce a healthy share of foldable
  // expressions, or the test is vacuous.
  EXPECT_GT(compared, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace gsn::sql

// Tiered columnar history tests (docs/STORAGE.md): segment encode/
// decode round trips, compression encodings, zone-map pruning, the
// torn-tail commit marker, catalog recovery/reconciliation, and the
// container-level seam guarantees (differential queries across tiers,
// crash-during-flush exactly-once, EXPLAIN ANALYZE prune counters).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gsn/container/container.h"
#include "gsn/container/management_interface.h"
#include "gsn/container/web_interface.h"
#include "gsn/storage/columnar/catalog.h"
#include "gsn/storage/columnar/segment.h"
#include "gsn/storage/persistence_log.h"
#include "gsn/util/export.h"

namespace gsn {
namespace {

namespace fs = std::filesystem;
using storage::columnar::SegmentCatalog;
using storage::columnar::SegmentMeta;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("gsn_columnar_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Schema WideRowSchema() {
  Schema schema;
  schema.AddField("timed", DataType::kTimestamp);
  schema.AddField("seq", DataType::kInt);
  schema.AddField("temp", DataType::kDouble);
  schema.AddField("site", DataType::kString);
  schema.AddField("ok", DataType::kBool);
  return schema;
}

/// Rows [timed, seq, temp, site, ok]; every 7th site and every 5th
/// temp are NULL so the null bitmaps get exercised.
Relation::RowList WideRows(int n, Timestamp start = 1000,
                           Timestamp step = 100) {
  Relation::RowList rows;
  static const char* kSites[] = {"zurich", "lausanne", "geneva"};
  for (int i = 0; i < n; ++i) {
    rows.push_back(Relation::MakeRow(
        {Value::TimestampVal(start + i * step), Value::Int(i),
         i % 5 == 4 ? Value::Null() : Value::Double(20.0 + i * 0.25),
         i % 7 == 6 ? Value::Null() : Value::String(kSites[i % 3]),
         Value::Bool(i % 2 == 0)}));
  }
  return rows;
}

sql::ScanBound Bound(const std::string& column, sql::ScanBound::Op op,
                     Value value) {
  sql::ScanBound bound;
  bound.column = column;
  bound.op = op;
  bound.value = std::move(value);
  return bound;
}

// ------------------------------------------------------------ Segment unit

TEST(SegmentTest, RoundTripAllTypesAndNulls) {
  const Schema schema = WideRowSchema();
  const Relation::RowList rows = WideRows(230);
  auto encoded = storage::columnar::EncodeSegment("t", schema, rows, 64);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->row_count, 230u);
  EXPECT_EQ(encoded->min_timed, 1000);
  EXPECT_EQ(encoded->max_timed, 1000 + 229 * 100);
  EXPECT_TRUE(storage::columnar::ValidateSegmentContents(encoded->contents));

  auto header = storage::columnar::ParseSegmentHeader(encoded->contents);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->table, "t");
  EXPECT_EQ(header->group_count, 4u);  // ceil(230 / 64)

  Relation::RowList decoded;
  storage::columnar::SegmentScanStats stats;
  ASSERT_TRUE(storage::columnar::ScanSegmentContents(
                  encoded->contents, schema, sql::ScanPredicate{}, &decoded,
                  &stats)
                  .ok());
  ASSERT_EQ(decoded.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(*decoded[i], *rows[i]) << "row " << i;
  }
  EXPECT_EQ(stats.groups_pruned, 0);
  EXPECT_EQ(stats.rows_decoded, 230);
}

TEST(SegmentTest, DictionaryAndDeltaBeatGenericEncoding) {
  // Sequential timestamps/ints delta-compress and the 3-value site
  // column dictionary+RLE compresses: the whole segment must land well
  // under the row-major Codec encoding of the same rows.
  const Schema schema = WideRowSchema();
  const Relation::RowList rows = WideRows(2000);
  auto encoded = storage::columnar::EncodeSegment("t", schema, rows, 1024);
  ASSERT_TRUE(encoded.ok());
  size_t row_major = 0;
  for (const Relation::SharedRow& row : rows) {
    row_major += storage::columnar::EncodeRowAsElement(*row).size();
  }
  EXPECT_LT(encoded->contents.size(), row_major / 2)
      << "columnar=" << encoded->contents.size() << " row-major=" << row_major;
}

TEST(SegmentTest, ZoneMapsPruneGroupsExactly) {
  const Schema schema = WideRowSchema();
  const Relation::RowList rows = WideRows(1000);  // timed 1000..100900
  auto encoded = storage::columnar::EncodeSegment("t", schema, rows, 100);
  ASSERT_TRUE(encoded.ok());

  // timed > 95900 keeps only rows 950.. — the last group.
  sql::ScanPredicate predicate;
  predicate.bounds.push_back(Bound("timed", sql::ScanBound::Op::kGreater,
                                   Value::TimestampVal(1000 + 949 * 100)));
  Relation::RowList out;
  storage::columnar::SegmentScanStats stats;
  ASSERT_TRUE(storage::columnar::ScanSegmentContents(encoded->contents, schema,
                                                     predicate, &out, &stats)
                  .ok());
  EXPECT_EQ(stats.groups_total, 10);
  EXPECT_EQ(stats.groups_pruned, 9);
  ASSERT_EQ(out.size(), 100u);  // whole surviving group; WHERE refilters
  EXPECT_EQ((*out[0])[1], Value::Int(900));

  // An int bound prunes on the seq column the same way.
  sql::ScanPredicate by_seq;
  by_seq.bounds.push_back(
      Bound("seq", sql::ScanBound::Op::kLess, Value::Int(100)));
  out.clear();
  storage::columnar::SegmentScanStats stats2;
  ASSERT_TRUE(storage::columnar::ScanSegmentContents(encoded->contents, schema,
                                                     by_seq, &out, &stats2)
                  .ok());
  EXPECT_EQ(stats2.groups_pruned, 9);
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ((*out.back())[1], Value::Int(99));

  // A string equality bound outside the dictionary prunes everything.
  sql::ScanPredicate by_site;
  by_site.bounds.push_back(
      Bound("site", sql::ScanBound::Op::kEq, Value::String("zzz")));
  out.clear();
  storage::columnar::SegmentScanStats stats3;
  ASSERT_TRUE(storage::columnar::ScanSegmentContents(encoded->contents, schema,
                                                     by_site, &out, &stats3)
                  .ok());
  EXPECT_EQ(stats3.groups_pruned, 10);
  EXPECT_TRUE(out.empty());
}

TEST(SegmentTest, TornTailIsNotAValidSegment) {
  const Schema schema = WideRowSchema();
  auto encoded =
      storage::columnar::EncodeSegment("t", schema, WideRows(50), 16);
  ASSERT_TRUE(encoded.ok());
  ASSERT_TRUE(storage::columnar::ValidateSegmentContents(encoded->contents));
  // Chopping anywhere inside the footer (the commit marker) or earlier
  // invalidates the whole file.
  for (size_t cut : {encoded->contents.size() - 1,
                     encoded->contents.size() - 5, encoded->contents.size() / 2,
                     size_t{3}, size_t{0}}) {
    EXPECT_FALSE(storage::columnar::ValidateSegmentContents(
        std::string_view(encoded->contents).substr(0, cut)))
        << "cut=" << cut;
  }
  // Flipping a payload byte breaks that record's CRC.
  std::string corrupt = encoded->contents;
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_FALSE(storage::columnar::ValidateSegmentContents(corrupt));
}

TEST(SegmentTest, RowsCrcIdentifiesFlushedPrefix) {
  const Relation::RowList rows = WideRows(20);
  const uint32_t first_ten = storage::columnar::RowsCrc(rows, 10);
  Relation::RowList prefix(rows.begin(), rows.begin() + 10);
  EXPECT_EQ(storage::columnar::RowsCrc(prefix, 10), first_ten);
  EXPECT_NE(storage::columnar::RowsCrc(rows, 11), first_ten);
  Relation::RowList other = WideRows(10, /*start=*/9999);
  EXPECT_NE(storage::columnar::RowsCrc(other, 10), first_ten);
}

// ------------------------------------------------------------ Catalog

TEST(SegmentCatalogTest, FlushListScanAndReopen) {
  TempDir dir("catalog");
  const Schema schema = WideRowSchema();
  SegmentCatalog::Options options;
  options.rows_per_chunk = 32;
  {
    auto catalog = SegmentCatalog::Open(dir.path(), options);
    ASSERT_TRUE(catalog.ok());
    auto first = (*catalog)->Flush("T1", schema, WideRows(100, 1000));
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first->table, "t1");  // key is lowercased
    EXPECT_EQ(first->row_count, 100u);
    auto second =
        (*catalog)->Flush("t1", schema, WideRows(100, 1000 + 100 * 100));
    ASSERT_TRUE(second.ok());
    EXPECT_GT(second->id, first->id);
    EXPECT_EQ((*catalog)->segment_count(), 2u);
    EXPECT_GT((*catalog)->total_bytes(), 0u);
  }
  // Reopen: the journal replays and every row comes back, oldest first.
  auto catalog = SegmentCatalog::Open(dir.path(), options);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ((*catalog)->segment_count(), 2u);
  EXPECT_EQ((*catalog)->discarded_on_recovery(), 0u);
  EXPECT_EQ((*catalog)->orphans_removed(), 0u);
  Relation::RowList out;
  sql::ScanStats stats;
  ASSERT_TRUE(
      (*catalog)->Scan("t1", schema, sql::ScanPredicate{}, &out, &stats).ok());
  ASSERT_EQ(out.size(), 200u);
  EXPECT_EQ((*out[0])[1], Value::Int(0));
  EXPECT_EQ((*out[199])[1], Value::Int(99));
  EXPECT_EQ(stats.segments_total, 2);
  EXPECT_EQ(stats.segments_scanned, 2);
  EXPECT_EQ(stats.segment_rows, 200);
}

TEST(SegmentCatalogTest, TimeBoundSkipsWholeSegmentsWithoutOpeningThem) {
  TempDir dir("prune");
  const Schema schema = WideRowSchema();
  SegmentCatalog::Options options;
  options.rows_per_chunk = 25;
  auto catalog = SegmentCatalog::Open(dir.path(), options);
  ASSERT_TRUE(catalog.ok());
  // Three disjoint time ranges: [1000,10900], [11000,20900], [21000,30900].
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(
        (*catalog)->Flush("t", schema, WideRows(100, 1000 + s * 10000)).ok());
  }
  sql::ScanPredicate predicate;
  predicate.bounds.push_back(Bound("timed", sql::ScanBound::Op::kGreaterEq,
                                   Value::TimestampVal(21000)));
  Relation::RowList out;
  sql::ScanStats stats;
  ASSERT_TRUE((*catalog)->Scan("t", schema, predicate, &out, &stats).ok());
  EXPECT_EQ(stats.segments_total, 3);
  EXPECT_EQ(stats.segments_scanned, 1);  // two pruned by [min,max] alone
  EXPECT_GT(stats.chunks_pruned, 0);
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ((*out[0])[0].timestamp_value(), 21000);
}

TEST(SegmentCatalogTest, RecoveryDiscardsTornSegmentsAndDeletesOrphans) {
  TempDir dir("reconcile");
  const Schema schema = WideRowSchema();
  SegmentCatalog::Options options;
  std::string intact_path;
  std::string torn_path;
  {
    auto catalog = SegmentCatalog::Open(dir.path(), options);
    ASSERT_TRUE(catalog.ok());
    auto intact = (*catalog)->Flush("t", schema, WideRows(50));
    ASSERT_TRUE(intact.ok());
    intact_path = (*catalog)->SegmentPath(*intact);
    auto torn = (*catalog)->Flush("t", schema, WideRows(50, 99999));
    ASSERT_TRUE(torn.ok());
    torn_path = (*catalog)->SegmentPath(*torn);
  }
  // Tear the second segment's tail (crash mid-write after the journal
  // append would need a torn file too; either way the footer is gone).
  auto torn_contents = storage::ReadLogFile(torn_path);
  ASSERT_TRUE(torn_contents.ok());
  ASSERT_TRUE(storage::WriteFileAtomic(
                  torn_path, std::string_view(*torn_contents)
                                 .substr(0, torn_contents->size() - 7))
                  .ok());
  // Drop an orphan: a segment file the journal never heard of (the
  // classic kill -9 between file write and journal append).
  const std::string orphan = dir.path() + "/t/seg-999.gsnseg";
  {
    std::ofstream out(orphan, std::ios::binary);
    out << "not a segment";
  }
  auto catalog = SegmentCatalog::Open(dir.path(), options);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ((*catalog)->segment_count(), 1u);
  EXPECT_EQ((*catalog)->discarded_on_recovery(), 1u);
  EXPECT_EQ((*catalog)->orphans_removed(), 1u);
  EXPECT_TRUE(fs::exists(intact_path));
  EXPECT_FALSE(fs::exists(torn_path));
  EXPECT_FALSE(fs::exists(orphan));
  // The surviving segment still scans clean.
  Relation::RowList out;
  ASSERT_TRUE(
      (*catalog)->Scan("t", schema, sql::ScanPredicate{}, &out, nullptr).ok());
  EXPECT_EQ(out.size(), 50u);
}

TEST(SegmentCatalogTest, DropTableDeletesSegmentsDurably) {
  TempDir dir("drop");
  const Schema schema = WideRowSchema();
  SegmentCatalog::Options options;
  {
    auto catalog = SegmentCatalog::Open(dir.path(), options);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE((*catalog)->Flush("gone", schema, WideRows(10)).ok());
    ASSERT_TRUE((*catalog)->Flush("kept", schema, WideRows(10)).ok());
    ASSERT_TRUE((*catalog)->DropTable("GONE").ok());
    EXPECT_EQ((*catalog)->segment_count(), 1u);
    // Dropping an unknown table is a no-op, not an error.
    EXPECT_TRUE((*catalog)->DropTable("never-existed").ok());
  }
  auto catalog = SegmentCatalog::Open(dir.path(), options);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ((*catalog)->segment_count(), 1u);
  EXPECT_TRUE((*catalog)->SegmentsFor("gone").empty());
  EXPECT_EQ((*catalog)->SegmentsFor("kept").size(), 1u);
}

// ----------------------------------------------------- Container seams

/// Deterministic producer (seq 0,1,2,... every 100ms); permanent
/// storage with a `storage_size`-row retention window.
std::string GenDescriptor(const std::string& name,
                          const std::string& storage_size) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "</output-structure>"
         "<storage permanent-storage=\"true\" size=\"" + storage_size +
         "\"/>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"generator\">"
         "      <predicate key=\"interval-ms\" val=\"100\"/>"
         "      <predicate key=\"payload-bytes\" val=\"0\"/>"
         "    </address>"
         "    <query>select seq from wrapper order by seq desc limit 1"
         "    </query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

container::Container::Options TieredOptions(const std::string& dir,
                                            std::shared_ptr<Clock> clock) {
  container::Container::Options options;
  options.node_id = "n";
  options.clock = std::move(clock);
  options.seed = 29;
  options.data_dir = dir;
  options.supervision.checkpoint_interval = 0;  // checkpoints by hand
  options.columnar.rows_per_chunk = 8;          // many chunks, small data
  return options;
}

void RunTicks(container::Container* container,
              const std::shared_ptr<VirtualClock>& clock, int ticks) {
  for (int i = 0; i < ticks; ++i) {
    clock->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(container->Tick().ok());
  }
}

/// The differential oracle: every query must return byte-identical CSV
/// regardless of which tier(s) the rows live in.
void ExpectSameAnswers(container::Container* tiered,
                       container::Container* reference,
                       const std::string& table) {
  const std::vector<std::string> queries = {
      "select * from " + table + " order by timed",
      "select count(*), min(seq), max(seq) from " + table,
      "select seq from " + table + " where seq >= 10 and seq < 20 "
          "order by seq",
      "select count(*) from " + table + " where timed > 1500000",
      "select sum(seq) from " + table + " where seq between 5 and 25",
  };
  for (const std::string& q : queries) {
    auto a = tiered->Query(q);
    auto b = reference->Query(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
    EXPECT_EQ(RelationToCsv(*a), RelationToCsv(*b)) << q;
  }
}

TEST(TieredHistoryTest, QueriesAreIdenticalAcrossTierPlacements) {
  TempDir tiered_dir("diff_tiered");
  TempDir reference_dir("diff_reference");
  auto clock = std::make_shared<VirtualClock>();

  // Tiered: 5-row live window, history in segments after checkpoints.
  // Reference: 10m-row window — everything stays in memory.
  container::Container tiered(TieredOptions(tiered_dir.path(), clock));
  container::Container reference(TieredOptions(reference_dir.path(), clock));
  ASSERT_TRUE(tiered.Deploy(GenDescriptor("s", "5")).ok());
  ASSERT_TRUE(reference.Deploy(GenDescriptor("s", "10m")).ok());

  // Phase 1: rows split memory/pending (no checkpoint yet).
  for (int i = 0; i < 30; ++i) {
    clock->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(tiered.Tick().ok());
    ASSERT_TRUE(reference.Tick().ok());
  }
  ExpectSameAnswers(&tiered, &reference, "s");

  // Phase 2: checkpoint moves the pending rows into segments.
  ASSERT_TRUE(tiered.Checkpoint().ok());
  ASSERT_NE(tiered.segment_catalog(), nullptr);
  EXPECT_GT(tiered.segment_catalog()->segment_count(), 0u);
  ExpectSameAnswers(&tiered, &reference, "s");

  // Phase 3: more rows after the flush — all three placements at once
  // (segments + pending + live window).
  for (int i = 0; i < 20; ++i) {
    clock->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(tiered.Tick().ok());
    ASSERT_TRUE(reference.Tick().ok());
  }
  ExpectSameAnswers(&tiered, &reference, "s");

  // Phase 4: second checkpoint, then a restart of the tiered node —
  // recovery must reassemble the exact same relation.
  ASSERT_TRUE(tiered.Checkpoint().ok());
  ExpectSameAnswers(&tiered, &reference, "s");
}

TEST(TieredHistoryTest, ExplainAnalyzeAndMetricsShowPruning) {
  TempDir dir("explain");
  auto clock = std::make_shared<VirtualClock>();
  container::Container container(TieredOptions(dir.path(), clock));
  ASSERT_TRUE(container.Deploy(GenDescriptor("s", "5")).ok());
  RunTicks(&container, clock, 60);
  ASSERT_TRUE(container.Checkpoint().ok());

  // The unselective scan decodes every segment row.
  auto all = container.Query("select count(*) from s");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows()[0][0].int_value(), 59);
  auto scanned = container.metrics()->GetCounter(
      "gsn_segment_scanned_rows", {{"node", "n"}},
      "Rows decoded out of columnar segments");
  EXPECT_GT(scanned->Value(), 0);

  // A selective time range skips storage: the generator started at
  // virtual time 0 stepping 100ms, so timed > 5.5s lands past every
  // flushed segment's [min,max] and prunes all of its chunks unopened.
  auto analyzed = container.query_manager().ExplainAnalyze(
      "select count(*) from s where timed > 5500000");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_NE(analyzed->find("segments="), std::string::npos) << *analyzed;
  EXPECT_NE(analyzed->find("chunks_pruned="), std::string::npos) << *analyzed;

  auto pruned = container.metrics()->GetCounter(
      "gsn_segment_pruned_chunks", {{"node", "n"}},
      "Column chunks skipped via zone maps");
  EXPECT_GT(pruned->Value(), 0) << *analyzed;

  // A mid-history range opens the segment but prunes the groups before
  // and after it via chunk zone maps.
  const int64_t pruned_before = pruned->Value();
  auto mid = container.Query(
      "select count(*) from s where timed > 2000000 and timed <= 3000000");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->rows()[0][0].int_value(), 10);
  EXPECT_GT(pruned->Value(), pruned_before);
}

TEST(TieredHistoryTest, SurfacesReportSegments) {
  TempDir dir("surfaces");
  auto clock = std::make_shared<VirtualClock>();
  container::Container container(TieredOptions(dir.path(), clock));
  ASSERT_TRUE(container.Deploy(GenDescriptor("s", "5")).ok());
  RunTicks(&container, clock, 30);
  ASSERT_TRUE(container.Checkpoint().ok());

  container::ManagementInterface mgmt(&container);
  const std::string listing = mgmt.Execute("segments");
  EXPECT_NE(listing.find("s/seg-"), std::string::npos) << listing;
  EXPECT_NE(mgmt.Execute("help").find("segments"), std::string::npos);

  container::WebInterface web(&container);
  network::HttpRequest request;
  request.method = "GET";
  request.path = "/api/v1/segments";
  const network::HttpResponse response = web.Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(response.body.find("\"table\":\"s\""), std::string::npos)
      << response.body;

  // Telemetry gauges track the catalog.
  auto count = container.metrics()->GetGauge(
      "gsn_segment_count", {{"node", "n"}}, "Live columnar segments");
  EXPECT_GT(count->Value(), 0);
  auto bytes = container.metrics()->GetGauge(
      "gsn_segment_bytes", {{"node", "n"}}, "Bytes across columnar segments");
  EXPECT_GT(bytes->Value(), 0);
}

TEST(TieredHistoryTest, OrphanSegmentFromKilledFlushIsRemovedWithoutLoss) {
  // Crash case A: kill -9 between segment-file write and journal
  // append. The orphan file must be deleted at recovery and every row
  // still served exactly once (they never left the WAL).
  TempDir dir("orphan");
  auto clock = std::make_shared<VirtualClock>();
  {
    container::Container container(TieredOptions(dir.path(), clock));
    ASSERT_TRUE(container.Deploy(GenDescriptor("s", "5")).ok());
    RunTicks(&container, clock, 25);
    // No checkpoint: the WAL holds all 24 rows. Fake the partial flush.
    fs::create_directories(dir.path() + "/segments/s");
    std::ofstream out(dir.path() + "/segments/s/seg-7.gsnseg",
                      std::ios::binary);
    out << "partial segment torn by kill -9";
  }
  container::Container container(TieredOptions(dir.path(), clock));
  ASSERT_NE(container.segment_catalog(), nullptr);
  EXPECT_EQ(container.segment_catalog()->orphans_removed(), 1u);
  EXPECT_EQ(container.segment_catalog()->segment_count(), 0u);
  auto result = container.Query("select count(*), min(seq), max(seq) from s");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows()[0][0].int_value(), 24);
  EXPECT_EQ(result->rows()[0][1].int_value(), 0);
  EXPECT_EQ(result->rows()[0][2].int_value(), 23);
}

TEST(TieredHistoryTest, CrashBeforeWalRewriteDeduplicatesTheSeam) {
  // Crash case B: the segment flush committed (file + journal fsynced)
  // but the crash hit before the WAL rewrite, so the WAL still holds
  // the flushed rows. Recovery must serve each row exactly once.
  TempDir dir("dedup");
  auto clock = std::make_shared<VirtualClock>();
  const std::string wal = dir.path() + "/s.gsnlog";
  const std::string wal_backup = dir.path() + "/s.gsnlog.pre-checkpoint";
  {
    container::Container container(TieredOptions(dir.path(), clock));
    ASSERT_TRUE(container.Deploy(GenDescriptor("s", "5")).ok());
    RunTicks(&container, clock, 30);
    // Preserve the pre-rewrite WAL, then checkpoint (flush + rewrite).
    fs::copy_file(wal, wal_backup);
    ASSERT_TRUE(container.Checkpoint().ok());
    ASSERT_GT(container.segment_catalog()->segment_count(), 0u);
  }
  // "Undo" the rewrite: the on-disk state is now exactly a crash after
  // the journal fsync and before PersistenceLog::Rewrite.
  fs::remove(wal);
  fs::rename(wal_backup, wal);

  container::Container container(TieredOptions(dir.path(), clock));
  auto result = container.Query("select count(*), min(seq), max(seq) from s");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows()[0][0].int_value(), 29) << "seam rows duplicated";
  EXPECT_EQ(result->rows()[0][1].int_value(), 0);
  EXPECT_EQ(result->rows()[0][2].int_value(), 28);
  // And no row was dropped by the dedup either: distinct seqs == count.
  auto distinct = container.Query("select count(distinct seq) from s");
  if (distinct.ok()) {
    EXPECT_EQ(distinct->rows()[0][0].int_value(), 29);
  }
}

TEST(TieredHistoryTest, UndeployDropsSegmentsButRestartKeepsThem) {
  TempDir dir("undeploy");
  auto clock = std::make_shared<VirtualClock>();
  {
    container::Container container(TieredOptions(dir.path(), clock));
    ASSERT_TRUE(container.Deploy(GenDescriptor("keep", "5")).ok());
    ASSERT_TRUE(container.Deploy(GenDescriptor("gone", "5")).ok());
    RunTicks(&container, clock, 30);
    ASSERT_TRUE(container.Checkpoint().ok());
    EXPECT_EQ(container.segment_catalog()->SegmentsFor("keep").size(), 1u);
    ASSERT_TRUE(container.Undeploy("gone").ok());
    EXPECT_TRUE(container.segment_catalog()->SegmentsFor("gone").empty());
    // Process-exit teardown (destructor) must NOT drop "keep"'s history.
  }
  container::Container container(TieredOptions(dir.path(), clock));
  EXPECT_EQ(container.segment_catalog()->SegmentsFor("keep").size(), 1u);
  EXPECT_TRUE(container.segment_catalog()->SegmentsFor("gone").empty());
  auto count = container.Query("select count(*) from keep");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows()[0][0].int_value(), 29);
}

}  // namespace
}  // namespace gsn

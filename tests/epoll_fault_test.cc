// Syscall fault-injection tests for EpollTransport (docs/CHAOS.md):
// the FaultInjectingSocketOps seam drives the hard error paths —
// EINTR/EAGAIN storms, short writes, ECONNRESET mid-frame, refused and
// stalled connects, EMFILE on accept — and the transport must keep its
// contract: frames either arrive intact or the failure is surfaced,
// counted, and redialed with backoff.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gsn/network/epoll_transport.h"
#include "gsn/network/socket_ops.h"
#include "gsn/util/clock.h"

namespace gsn::network {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

class RecordingNode : public NetworkNode {
 public:
  void OnMessage(const Message& message) override {
    std::lock_guard<std::mutex> lock(mu_);
    messages_.push_back(message);
    cv_.notify_all();
  }
  std::vector<Message> Messages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return messages_;
  }
  bool WaitForCount(size_t n, milliseconds timeout = milliseconds(10000)) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout,
                        [this, n] { return messages_.size() >= n; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Message> messages_;
};

/// Collects (peer, status) pairs from the transport error callback.
class ErrorSink {
 public:
  void Attach(EpollTransport* transport) {
    transport->SetErrorCallback([this](const std::string& peer,
                                       const Status& error) {
      std::lock_guard<std::mutex> lock(mu_);
      errors_.emplace_back(peer, error);
      cv_.notify_all();
    });
  }
  std::vector<std::pair<std::string, Status>> Errors() const {
    std::lock_guard<std::mutex> lock(mu_);
    return errors_;
  }
  bool WaitForPeerError(const std::string& peer,
                        milliseconds timeout = milliseconds(10000)) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this, &peer] {
      for (const auto& [p, status] : errors_) {
        if (p == peer) return true;
      }
      return false;
    });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::pair<std::string, Status>> errors_;
};

bool WaitUntil(const std::function<bool()>& predicate,
               milliseconds timeout = milliseconds(10000)) {
  const auto deadline = steady_clock::now() + timeout;
  while (steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return predicate();
}

// A storm of injected EINTR/EAGAIN on both read and write plus short
// writes must not lose a single frame: EINTR retries inline, EAGAIN
// waits for the (maintenance-re-armed) edge, and partial writes resume
// from the recorded offset.
TEST(EpollFaultTest, SyscallStormsLoseNoFrames) {
  FaultInjectingSocketOps::Config config;
  config.seed = 7;
  config.recv_eintr_rate = 0.2;
  config.recv_eagain_rate = 0.1;
  config.send_eintr_rate = 0.2;
  config.send_eagain_rate = 0.1;
  config.short_write_rate = 0.4;
  FaultInjectingSocketOps ops(config);

  EpollTransport::Options options_a;
  options_a.socket_ops = &ops;
  EpollTransport::Options options_b;
  options_b.socket_ops = &ops;
  EpollTransport a(std::move(options_a));
  EpollTransport b(std::move(options_b));
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.ListenPeer(0).ok());
  RecordingNode node_a;
  ASSERT_TRUE(a.RegisterNode("node-a", &node_a).ok());
  b.AddPeer("node-a", "127.0.0.1", a.peer_port());

  constexpr int kFrames = 50;
  // Multi-KB payloads so short writes actually split frames.
  const std::string filler(2048, 'q');
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(
        b.Send(0, "node-b", "node-a", "seq", std::to_string(i) + filler).ok());
  }
  ASSERT_TRUE(node_a.WaitForCount(kFrames));

  // Every frame arrived exactly once, in order, intact.
  const std::vector<Message> messages = node_a.Messages();
  ASSERT_EQ(messages.size(), static_cast<size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(messages[i].payload, std::to_string(i) + filler) << i;
  }
  // And the storm actually happened.
  EXPECT_GT(ops.injected_recv_faults() + ops.injected_send_faults() +
                ops.injected_short_writes(),
            0);
  a.Stop();
  b.Stop();
}

// An injected ECONNRESET mid-stream kills the connection; the error
// surfaces on the callback with the peer id, the automatic redial
// brings the link back, and later frames still flow.
TEST(EpollFaultTest, MidStreamResetSurfacesAndRedials) {
  FaultInjectingSocketOps::Config config;
  config.seed = 3;
  config.send_reset_rate = 0.05;
  FaultInjectingSocketOps ops(config);

  EpollTransport a;
  EpollTransport::Options options_b;
  options_b.socket_ops = &ops;
  options_b.redial_policy.initial_backoff_micros = 10 * kMicrosPerMilli;
  options_b.redial_policy.max_backoff_micros = 50 * kMicrosPerMilli;
  EpollTransport b(std::move(options_b));
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.ListenPeer(0).ok());
  RecordingNode node_a;
  ASSERT_TRUE(a.RegisterNode("node-a", &node_a).ok());
  b.AddPeer("node-a", "127.0.0.1", a.peer_port());
  ErrorSink errors;
  errors.Attach(&b);

  // Keep sending until a reset has been injected and survived: the
  // frames riding the broken connection are lost (the resilience layer
  // above owns replay), but the link must come back for later sends.
  int sent = 0;
  ASSERT_TRUE(WaitUntil([&] {
    ++sent;
    (void)b.Send(0, "node-b", "node-a", "seq", std::to_string(sent));
    return ops.injected_send_faults() > 0 && errors.WaitForPeerError(
                                                 "node-a", milliseconds(1));
  }));
  // The error names the peer and carries the errno string.
  bool saw_reset = false;
  for (const auto& [peer, status] : errors.Errors()) {
    if (peer == "node-a" &&
        status.message().find("node-a") != std::string::npos) {
      saw_reset = true;
    }
  }
  EXPECT_TRUE(saw_reset);

  // Frames sent after the reset arrive again (redial or fresh dial).
  const size_t before = node_a.Messages().size();
  EXPECT_TRUE(WaitUntil([&] {
    (void)b.Send(0, "node-b", "node-a", "after", "back");
    return node_a.Messages().size() > before;
  }));
  a.Stop();
  b.Stop();
}

// Refused connects are counted, surfaced with peer id + errno string,
// and retried with backoff until the policy is exhausted.
TEST(EpollFaultTest, RefusedDialsBackOffAndCount) {
  FaultInjectingSocketOps::Config config;
  config.seed = 5;
  config.connect_refuse_rate = 1.0;
  FaultInjectingSocketOps ops(config);

  EpollTransport::Options options;
  options.socket_ops = &ops;
  options.redial_policy.initial_backoff_micros = 5 * kMicrosPerMilli;
  options.redial_policy.max_backoff_micros = 20 * kMicrosPerMilli;
  options.redial_policy.max_attempts = 4;
  EpollTransport t(std::move(options));
  ASSERT_TRUE(t.Start().ok());
  ErrorSink errors;
  errors.Attach(&t);
  t.AddPeer("node-x", "127.0.0.1", 9);  // never reached: every dial refused

  EXPECT_FALSE(t.Send(0, "me", "node-x", "t", "x").ok());
  EXPECT_TRUE(errors.WaitForPeerError("node-x"));
  // Automatic redial keeps failing until the policy is exhausted.
  EXPECT_TRUE(WaitUntil([&] { return t.dial_failures_total() >= 4; }));
  const auto recorded = errors.Errors();
  ASSERT_FALSE(recorded.empty());
  EXPECT_EQ(recorded[0].first, "node-x");
  EXPECT_NE(recorded[0].second.message().find("node-x"), std::string::npos);
  EXPECT_NE(recorded[0].second.message().find("refused"), std::string::npos)
      << recorded[0].second.ToString();
  EXPECT_GT(ops.injected_connect_faults(), 0);
  t.Stop();
}

// A stalled connect (SYN into the void) never completes; the connect
// deadline must reap it, count a failure, and back off — and once the
// fault clears, the same peer dials cleanly again.
TEST(EpollFaultTest, StalledConnectHitsTheDeadline) {
  FaultInjectingSocketOps::Config config;
  config.seed = 11;
  config.connect_stall_rate = 1.0;
  FaultInjectingSocketOps ops(config);

  EpollTransport listener;
  ASSERT_TRUE(listener.Start().ok());
  ASSERT_TRUE(listener.ListenPeer(0).ok());
  RecordingNode node_a;
  ASSERT_TRUE(listener.RegisterNode("node-a", &node_a).ok());

  EpollTransport::Options options;
  options.socket_ops = &ops;
  options.connect_timeout_micros = 100 * kMicrosPerMilli;
  options.auto_redial = false;  // pin the count to the one explicit dial
  EpollTransport t(std::move(options));
  ASSERT_TRUE(t.Start().ok());
  ErrorSink errors;
  errors.Attach(&t);
  t.AddPeer("node-a", "127.0.0.1", listener.peer_port());

  ASSERT_TRUE(t.Send(0, "me", "node-a", "t", "x").ok());  // queued on the dial
  EXPECT_TRUE(errors.WaitForPeerError("node-a"));
  EXPECT_TRUE(WaitUntil([&] { return t.connect_failures_total() >= 1; }));
  bool saw_timeout = false;
  for (const auto& [peer, status] : errors.Errors()) {
    if (peer == "node-a" &&
        status.message().find("timeout") != std::string::npos) {
      saw_timeout = true;
    }
  }
  EXPECT_TRUE(saw_timeout);

  // Fault gone: the next send dials for real and the frame arrives.
  FaultInjectingSocketOps::Config clean;
  // (A fresh transport uses the real syscalls; the stalled one keeps
  // its seam. Re-dial through a clean transport proves the listener
  // side stayed healthy.)
  (void)clean;
  EpollTransport fresh;
  ASSERT_TRUE(fresh.Start().ok());
  fresh.AddPeer("node-a", "127.0.0.1", listener.peer_port());
  ASSERT_TRUE(fresh.Send(0, "me", "node-a", "t", "works").ok());
  ASSERT_TRUE(node_a.WaitForCount(1));
  fresh.Stop();
  t.Stop();
  listener.Stop();
}

// EMFILE on accept must pause the listener (no hot spin) and re-arm it
// after accept_rearm_micros: the dialing side redials and the link
// recovers without restarting either process.
TEST(EpollFaultTest, EmfileAcceptPausesThenRearms) {
  FaultInjectingSocketOps::Config config;
  config.accept_emfile_burst = 3;
  FaultInjectingSocketOps ops(config);

  EpollTransport::Options options_a;
  options_a.socket_ops = &ops;
  options_a.accept_rearm_micros = 50 * kMicrosPerMilli;
  EpollTransport a(std::move(options_a));
  EpollTransport::Options options_b;
  options_b.redial_policy.initial_backoff_micros = 20 * kMicrosPerMilli;
  options_b.redial_policy.max_backoff_micros = 100 * kMicrosPerMilli;
  options_b.redial_policy.max_attempts = 20;
  EpollTransport b(std::move(options_b));
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.ListenPeer(0).ok());
  RecordingNode node_a;
  ASSERT_TRUE(a.RegisterNode("node-a", &node_a).ok());
  b.AddPeer("node-a", "127.0.0.1", a.peer_port());

  ASSERT_TRUE(b.Send(0, "node-b", "node-a", "t", "knock").ok());
  EXPECT_TRUE(WaitUntil([&] { return a.accept_errors_total() >= 1; }));

  // The dial side saw its connection die (accept never completed) and
  // keeps redialing; once the pause expires the accept succeeds and a
  // frame finally lands. ECONNRESET from the dropped accept can race
  // the first payload, so keep offering frames.
  EXPECT_TRUE(WaitUntil([&] {
    (void)b.Send(0, "node-b", "node-a", "t", "retry");
    std::this_thread::sleep_for(milliseconds(10));
    return !node_a.Messages().empty();
  }));
  EXPECT_EQ(ops.injected_accept_faults(), 3);
  a.Stop();
  b.Stop();
}

// The reconnect counter tells operators a link bounced: force a reset
// through ResetPeer, then watch reconnects_total move when the redial
// completes.
TEST(EpollFaultTest, ForcedResetCountsAReconnect) {
  EpollTransport a;
  EpollTransport::Options options_b;
  options_b.redial_policy.initial_backoff_micros = 10 * kMicrosPerMilli;
  options_b.redial_policy.max_backoff_micros = 50 * kMicrosPerMilli;
  EpollTransport b(std::move(options_b));
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.ListenPeer(0).ok());
  RecordingNode node_a;
  ASSERT_TRUE(a.RegisterNode("node-a", &node_a).ok());
  b.AddPeer("node-a", "127.0.0.1", a.peer_port());

  ASSERT_TRUE(b.Send(0, "node-b", "node-a", "t", "hello").ok());
  ASSERT_TRUE(node_a.WaitForCount(1));

  ASSERT_TRUE(b.ResetPeer("node-a").ok());
  EXPECT_TRUE(WaitUntil([&] { return b.resets_total() >= 1; }));

  // The next sends ride the redial; the reconnect is counted once the
  // replacement connect completes after the failure-tracked close.
  EXPECT_TRUE(WaitUntil([&] {
    (void)b.Send(0, "node-b", "node-a", "t", "again");
    std::this_thread::sleep_for(milliseconds(5));
    return node_a.Messages().size() >= 2;
  }));
  // Resetting an unknown peer is a no-op, not a crash: like sending an
  // RST with no connection, there is simply nothing to tear down.
  EXPECT_TRUE(b.ResetPeer("ghost").ok());
  a.Stop();
  b.Stop();
}

}  // namespace
}  // namespace gsn::network

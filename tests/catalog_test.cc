// Tests for the SQL-visible system catalog: the container describes
// itself through the same query language it serves (the data behind
// the web interface's monitoring pages).

#include <gtest/gtest.h>

#include "gsn/container/container.h"

namespace gsn::container {
namespace {

std::string SensorXml(const std::string& name, int interval_ms) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata><predicate key=\"type\" val=\"temperature\"/>"
         "<predicate key=\"room\" val=\"" + name + "\"/></metadata>"
         "<life-cycle pool-size=\"3\"/>"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"integer\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1m\">"
         "    <address wrapper=\"mote\">"
         "      <predicate key=\"interval-ms\" val=\"" +
         std::to_string(interval_ms) + "\"/>"
         "    </address>"
         "    <query>select avg(temperature) from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() {
    clock_ = std::make_shared<VirtualClock>();
    Container::Options options;
    options.node_id = "catalog-node";
    options.clock = clock_;
    container_ = std::make_unique<Container>(std::move(options));
  }

  void Run(int ticks) {
    for (int i = 0; i < ticks; ++i) {
      clock_->Advance(100 * kMicrosPerMilli);
      ASSERT_TRUE(container_->Tick().ok());
    }
  }

  std::shared_ptr<VirtualClock> clock_;
  std::unique_ptr<Container> container_;
};

TEST_F(CatalogTest, SensorsCatalogReflectsDeployments) {
  ASSERT_TRUE(container_->Deploy(SensorXml("fast", 100)).ok());
  ASSERT_TRUE(container_->Deploy(SensorXml("slow", 500)).ok());
  Run(20);  // 2 seconds

  auto all = container_->Query(
      "select name, produced, pool_size from gsn_sensors order by name");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->NumRows(), 2u);
  EXPECT_EQ(all->rows()[0][0], Value::String("fast"));
  EXPECT_EQ(all->rows()[0][1], Value::Int(19));
  EXPECT_EQ(all->rows()[0][2], Value::Int(3));
  EXPECT_EQ(all->rows()[1][0], Value::String("slow"));
  EXPECT_EQ(all->rows()[1][1], Value::Int(3));

  // The catalog participates in full SQL: filters, aggregates, joins.
  auto busy = container_->Query(
      "select count(*) from gsn_sensors where produced > 10");
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->rows()[0][0], Value::Int(1));
}

TEST_F(CatalogTest, WrappersCatalogListsBuiltins) {
  auto wrappers = container_->Query(
      "select count(*) from gsn_wrappers where name in "
      "('mote', 'camera', 'rfid', 'generator', 'csv', 'tinyos')");
  ASSERT_TRUE(wrappers.ok()) << wrappers.status().ToString();
  EXPECT_EQ(wrappers->rows()[0][0], Value::Int(6));
}

TEST_F(CatalogTest, DirectoryCatalogShowsPublications) {
  ASSERT_TRUE(container_->Deploy(SensorXml("roomx", 100)).ok());
  auto dir = container_->Query(
      "select sensor, node, predicates from gsn_directory");
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  ASSERT_EQ(dir->NumRows(), 1u);
  EXPECT_EQ(dir->rows()[0][0], Value::String("roomx"));
  EXPECT_EQ(dir->rows()[0][1], Value::String("catalog-node"));
  EXPECT_NE(dir->rows()[0][2].string_value().find("type=temperature"),
            std::string::npos);
}

TEST_F(CatalogTest, CatalogJoinsWithDataTables) {
  ASSERT_TRUE(container_->Deploy(SensorXml("joined", 100)).ok());
  Run(10);
  // Join catalog metadata against the sensor's own stream.
  auto result = container_->Query(
      "select s.name, count(*) from gsn_sensors s, joined j "
      "where s.name = 'joined' group by s.name");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->rows()[0][1], Value::Int(9));
}

TEST_F(CatalogTest, ContinuousQueryOverCatalog) {
  ASSERT_TRUE(container_->Deploy(SensorXml("watched", 100)).ok());
  int64_t last_produced = -1;
  auto id = container_->query_manager().RegisterContinuous(
      "select produced from gsn_sensors where name = 'watched'",
      [&](const std::string&, const Relation& result) {
        if (!result.empty()) {
          last_produced = result.rows()[0][0].int_value();
        }
      });
  // Continuous queries trigger on table-name matches; gsn_sensors is
  // not an output stream, so register on the sensor itself too — the
  // catalog query still runs against live counters when invoked.
  ASSERT_TRUE(id.ok());
  auto id2 = container_->query_manager().RegisterContinuous(
      "select count(*) from watched", [](const std::string&, const Relation&) {});
  ASSERT_TRUE(id2.ok());
  Run(10);
  // Execute the catalog query directly to confirm live values.
  auto direct = container_->Query(
      "select produced from gsn_sensors where name = 'watched'");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->rows()[0][0], Value::Int(9));
}

TEST_F(CatalogTest, UserTablesStillResolve) {
  ASSERT_TRUE(container_->Deploy(SensorXml("normal", 100)).ok());
  Run(5);
  EXPECT_TRUE(container_->Query("select * from normal").ok());
  EXPECT_FALSE(container_->Query("select * from gsn_nonexistent").ok());
}

}  // namespace
}  // namespace gsn::container

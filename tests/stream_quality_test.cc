// Tests for the fill-missing stream-quality repair and a churn soak
// test exercising the whole federation under continuous
// deploy/undeploy (the demo's "change the setup of the system
// on-the-fly while the system is running and processing queries").

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "gsn/container/federation.h"
#include "gsn/container/management_interface.h"
#include "gsn/util/rng.h"
#include "gsn/vsensor/stream_source.h"
#include "gsn/wrappers/csv_wrapper.h"

namespace gsn::vsensor {
namespace {

class FillMissingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csv_path_ = std::filesystem::temp_directory_path() /
                ("gsn_fill_test_" + std::to_string(::getpid()) + ".csv");
    // Full first row (so CSV type inference sees integers), gaps later.
    std::ofstream out(csv_path_);
    out << "a,b\n5,1\n10,\n,\n20,2\n,\n";
  }
  void TearDown() override { std::filesystem::remove(csv_path_); }

  std::unique_ptr<wrappers::Wrapper> MakeCsv() {
    wrappers::WrapperConfig config;
    config.params = {{"file", csv_path_.string()}, {"interval-ms", "100"}};
    auto w = wrappers::CsvWrapper::Make(config);
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return *std::move(w);
  }

  std::filesystem::path csv_path_;
};

TEST_F(FillMissingTest, LastValueSubstitution) {
  StreamSourceSpec spec;
  spec.alias = "src";
  spec.window.kind = WindowSpec::Kind::kCount;
  spec.window.count = 100;
  spec.fill_missing_with_last = true;
  spec.address.wrapper = "csv";
  StreamSource source(spec, MakeCsv(), 1);
  ASSERT_TRUE(source.Poll(0).ok());
  auto admitted = source.Poll(kMicrosPerSecond);
  ASSERT_TRUE(admitted.ok());
  ASSERT_EQ(admitted->size(), 5u);

  // Row 0: both fresh.
  EXPECT_EQ((*admitted)[0].values[0], Value::Int(5));
  EXPECT_EQ((*admitted)[0].values[1], Value::Int(1));
  // Row 1: a=10 fresh; b missing -> filled with 1.
  EXPECT_EQ((*admitted)[1].values[0], Value::Int(10));
  EXPECT_EQ((*admitted)[1].values[1], Value::Int(1));
  // Row 2: both missing -> 10, 1.
  EXPECT_EQ((*admitted)[2].values[0], Value::Int(10));
  EXPECT_EQ((*admitted)[2].values[1], Value::Int(1));
  // Row 3: fresh values take over.
  EXPECT_EQ((*admitted)[3].values[0], Value::Int(20));
  EXPECT_EQ((*admitted)[3].values[1], Value::Int(2));
  // Row 4: filled with the new values.
  EXPECT_EQ((*admitted)[4].values[0], Value::Int(20));
  EXPECT_EQ((*admitted)[4].values[1], Value::Int(2));

  EXPECT_EQ(source.filled_missing_count(), 5);
}

TEST_F(FillMissingTest, LeadingNullHasNothingToFillFrom) {
  // A column whose first values are NULL stays NULL until a real value
  // arrives.
  std::ofstream(csv_path_) << "x,y\n7,\n8,\n9,3\n10,\n";
  StreamSourceSpec spec;
  spec.alias = "src";
  spec.window.kind = WindowSpec::Kind::kCount;
  spec.window.count = 100;
  spec.fill_missing_with_last = true;
  spec.address.wrapper = "csv";
  StreamSource source(spec, MakeCsv(), 1);
  ASSERT_TRUE(source.Poll(0).ok());
  auto admitted = source.Poll(kMicrosPerSecond);
  ASSERT_TRUE(admitted.ok());
  ASSERT_EQ(admitted->size(), 4u);
  EXPECT_TRUE((*admitted)[0].values[1].is_null());
  EXPECT_TRUE((*admitted)[1].values[1].is_null());
  EXPECT_FALSE((*admitted)[2].values[1].is_null());
  EXPECT_EQ((*admitted)[3].values[1].ToString(),
            (*admitted)[2].values[1].ToString());
}

TEST_F(FillMissingTest, DisabledLeavesNulls) {
  StreamSourceSpec spec;
  spec.alias = "src";
  spec.window.kind = WindowSpec::Kind::kCount;
  spec.window.count = 100;
  spec.address.wrapper = "csv";
  StreamSource source(spec, MakeCsv(), 1);
  ASSERT_TRUE(source.Poll(0).ok());
  auto admitted = source.Poll(kMicrosPerSecond);
  ASSERT_TRUE(admitted.ok());
  EXPECT_TRUE((*admitted)[1].values[1].is_null());
  EXPECT_EQ(source.filled_missing_count(), 0);
}

TEST(FillMissingDescriptorTest, ParsedAndRoundTripped) {
  constexpr char kXml[] =
      "<virtual-sensor name=\"x\"><output-structure>"
      "<field name=\"v\" type=\"integer\"/></output-structure>"
      "<input-stream name=\"s\">"
      "<stream-source alias=\"a\" fill-missing=\"last\">"
      "<address wrapper=\"mote\"/></stream-source>"
      "<query>select * from a</query></input-stream></virtual-sensor>";
  auto spec = ParseDescriptor(kXml);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->input_streams[0].sources[0].fill_missing_with_last);
  auto round = ParseDescriptor(spec->ToXml());
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->input_streams[0].sources[0].fill_missing_with_last);

  // Unknown modes are rejected.
  std::string bad(kXml);
  const size_t pos = bad.find("\"last\"");
  bad.replace(pos, 6, "\"interpolate\"");
  EXPECT_FALSE(ParseDescriptor(bad).ok());
}

}  // namespace
}  // namespace gsn::vsensor

namespace gsn::container {
namespace {

std::string ChurnSensorXml(const std::string& name, int interval_ms,
                           const std::string& wrapper) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata><predicate key=\"kind\" val=\"churn\"/></metadata>"
         "<output-structure>"
         "  <field name=\"v\" type=\"double\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"5s\">"
         "    <address wrapper=\"" + wrapper + "\">"
         "      <predicate key=\"interval-ms\" val=\"" +
         std::to_string(interval_ms) + "\"/>"
         "    </address>"
         "    <query>select avg(" +
         (wrapper == "mote" ? std::string("temperature") :
                              std::string("value")) +
         ") from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

/// Soak: three nodes, continuous deploy/undeploy churn, standing
/// queries and subscriptions, all invariants checked as time advances.
TEST(ChurnSoakTest, FederationSurvivesContinuousReconfiguration) {
  Federation fed(31337);
  std::vector<Container*> nodes;
  for (const char* id : {"n0", "n1", "n2"}) {
    auto node = fed.AddNode(id);
    ASSERT_TRUE(node.ok());
    nodes.push_back(*node);
  }
  Rng rng(2024);
  int deploy_counter = 0;
  std::vector<std::pair<Container*, std::string>> live;

  // Incremented from the sensors' worker threads; read at the end.
  std::atomic<int> notifications{0};
  for (Container* node : nodes) {
    (void)node->notification_manager().Subscribe(
        "*", "v > -1e18",
        std::make_shared<CallbackChannel>(
            [&notifications](const Notification&) { ++notifications; }));
  }

  for (int round = 0; round < 120; ++round) {
    // Random churn: deploy on a random node, or undeploy a random
    // live sensor.
    if (live.empty() || rng.NextBool(0.6)) {
      Container* node = nodes[rng.NextUint64(nodes.size())];
      const std::string name = "churn-" + std::to_string(deploy_counter++);
      const char* wrapper = rng.NextBool(0.5) ? "mote" : "generator";
      auto sensor = node->Deploy(
          ChurnSensorXml(name, static_cast<int>(rng.NextInt(50, 300)),
                         wrapper));
      ASSERT_TRUE(sensor.ok()) << sensor.status().ToString();
      live.emplace_back(node, name);
    } else {
      const size_t pick = rng.NextUint64(live.size());
      ASSERT_TRUE(live[pick].first->Undeploy(live[pick].second).ok());
      live.erase(live.begin() + static_cast<long>(pick));
    }

    ASSERT_TRUE(fed.Step(100 * kMicrosPerMilli).ok()) << "round " << round;

    // Invariants: list sizes match, every live sensor queryable, no
    // pipeline errors anywhere.
    size_t listed = 0;
    for (Container* node : nodes) {
      for (const std::string& sensor : node->ListSensors()) {
        ++listed;
        auto status = node->GetSensorStatus(sensor);
        ASSERT_TRUE(status.ok());
        EXPECT_EQ(status->stats.errors, 0) << sensor;
        ASSERT_TRUE(node->Query("select count(*) from \"" + sensor + "\"")
                        .ok())
            << sensor;
      }
    }
    ASSERT_EQ(listed, live.size()) << "round " << round;
  }
  // The run produced real traffic.
  EXPECT_GT(notifications.load(), 100);
}

/// The management interface must never crash on arbitrary command
/// lines (it fronts untrusted web input).
TEST(ManagementFuzzTest, RandomCommandsNeverCrash) {
  auto clock = std::make_shared<VirtualClock>();
  Container::Options options;
  options.clock = clock;
  Container container(std::move(options));
  ManagementInterface mgmt(&container);
  Rng rng(6174);
  static const char* kWords[] = {
      "list",   "status", "deploy",  "undeploy", "query",   "select",
      "*",      "from",   "help",    "discover", "explain", "plot",
      "<xml>",  "k=v",    "\"q\"",   ";;",       "--",      "topology",
      "sensor", "1",      "'--'",    "\n",       "query-json"};
  for (int i = 0; i < 500; ++i) {
    std::string line;
    const size_t words = rng.NextUint64(6);
    for (size_t w = 0; w < words; ++w) {
      line += kWords[rng.NextUint64(sizeof(kWords) / sizeof(kWords[0]))];
      line += " ";
    }
    (void)mgmt.Execute(line);  // must not crash; output content is free
  }
  SUCCEED();
}

}  // namespace
}  // namespace gsn::container

// Tests for adaptive join execution: hash and nested-loop strategies
// must produce identical results, strategy selection must react to
// input cardinality, and SQL NULL-key semantics must hold on both
// paths.

#include <gtest/gtest.h>

#include "gsn/sql/executor.h"
#include "gsn/util/rng.h"

namespace gsn::sql {
namespace {

MapResolver MakeJoinFixture(size_t left_rows, size_t right_rows,
                            uint64_t seed) {
  Rng rng(seed);
  MapResolver resolver;
  {
    Schema schema;
    schema.AddField("id", DataType::kInt);
    schema.AddField("v", DataType::kInt);
    Relation rel(schema);
    for (size_t i = 0; i < left_rows; ++i) {
      Value id = rng.NextBool(0.05) ? Value::Null()
                                    : Value::Int(rng.NextInt(0, 50));
      EXPECT_TRUE(rel.AddRow({id, Value::Int(rng.NextInt(0, 100))}).ok());
    }
    resolver.Put("l", std::move(rel));
  }
  {
    Schema schema;
    schema.AddField("id", DataType::kInt);
    schema.AddField("w", DataType::kInt);
    Relation rel(schema);
    for (size_t i = 0; i < right_rows; ++i) {
      Value id = rng.NextBool(0.05) ? Value::Null()
                                    : Value::Int(rng.NextInt(0, 50));
      EXPECT_TRUE(rel.AddRow({id, Value::Int(rng.NextInt(0, 100))}).ok());
    }
    resolver.Put("r", std::move(rel));
  }
  return resolver;
}

class JoinStrategyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threshold_ = GetHashJoinThreshold();
    ResetJoinCounters();
  }
  void TearDown() override { SetHashJoinThreshold(saved_threshold_); }

  size_t saved_threshold_;
};

TEST_F(JoinStrategyTest, HashAndNestedLoopAgree) {
  MapResolver resolver = MakeJoinFixture(80, 60, 42);
  Executor exec(&resolver);
  const char* queries[] = {
      "select l.id, l.v, r.w from l join r on l.id = r.id order by 1, 2, 3",
      "select l.id, r.w from l left join r on l.id = r.id order by 1, 2",
      "select count(*) from l join r on l.id = r.id and l.v > r.w",
  };
  for (const char* q : queries) {
    SetHashJoinThreshold(0);  // always hash
    auto hashed = exec.Query(q);
    ASSERT_TRUE(hashed.ok()) << q;
    SetHashJoinThreshold(SIZE_MAX);  // never hash
    auto nested = exec.Query(q);
    ASSERT_TRUE(nested.ok()) << q;
    ASSERT_EQ(hashed->NumRows(), nested->NumRows()) << q;
    for (size_t i = 0; i < hashed->NumRows(); ++i) {
      EXPECT_EQ(hashed->rows()[i], nested->rows()[i]) << q << " row " << i;
    }
  }
}

TEST_F(JoinStrategyTest, StrategySelectionIsAdaptive) {
  Executor* exec;
  // Small inputs: nested loop even though the condition is an equi-join.
  MapResolver small = MakeJoinFixture(5, 5, 1);
  Executor small_exec(&small);
  exec = &small_exec;
  SetHashJoinThreshold(1024);
  ResetJoinCounters();
  ASSERT_TRUE(exec->Query("select count(*) from l join r on l.id = r.id").ok());
  EXPECT_EQ(GetJoinCounters().hash_joins, 0);
  EXPECT_EQ(GetJoinCounters().nested_loop_joins, 1);

  // Large inputs: same query hashes.
  MapResolver large = MakeJoinFixture(100, 100, 2);
  Executor large_exec(&large);
  ResetJoinCounters();
  ASSERT_TRUE(
      large_exec.Query("select count(*) from l join r on l.id = r.id").ok());
  EXPECT_EQ(GetJoinCounters().hash_joins, 1);
  EXPECT_EQ(GetJoinCounters().nested_loop_joins, 0);

  // Non-equi condition: nested loop regardless of size.
  ResetJoinCounters();
  ASSERT_TRUE(
      large_exec.Query("select count(*) from l join r on l.id < r.id").ok());
  EXPECT_EQ(GetJoinCounters().hash_joins, 0);
  EXPECT_EQ(GetJoinCounters().nested_loop_joins, 1);

  // Cross join: nothing to hash.
  ResetJoinCounters();
  ASSERT_TRUE(large_exec.Query("select count(*) from l cross join r").ok());
  EXPECT_EQ(GetJoinCounters().hash_joins, 0);
}

TEST_F(JoinStrategyTest, NullKeysNeverMatchOnEitherPath) {
  MapResolver resolver;
  Schema schema;
  schema.AddField("id", DataType::kInt);
  Relation l(schema), r(schema);
  ASSERT_TRUE(l.AddRow({Value::Null()}).ok());
  ASSERT_TRUE(l.AddRow({Value::Int(1)}).ok());
  ASSERT_TRUE(r.AddRow({Value::Null()}).ok());
  ASSERT_TRUE(r.AddRow({Value::Int(1)}).ok());
  resolver.Put("l", std::move(l));
  resolver.Put("r", std::move(r));
  Executor exec(&resolver);
  for (size_t threshold : {size_t{0}, SIZE_MAX}) {
    SetHashJoinThreshold(threshold);
    auto result =
        exec.Query("select count(*) from l join r on l.id = r.id");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows()[0][0], Value::Int(1)) << threshold;
    // LEFT JOIN: the NULL-keyed left row survives as unmatched.
    auto left = exec.Query(
        "select count(*) from l left join r on l.id = r.id");
    ASSERT_TRUE(left.ok());
    EXPECT_EQ(left->rows()[0][0], Value::Int(2)) << threshold;
  }
}

TEST_F(JoinStrategyTest, MultiKeyEquiJoinWithResidual) {
  MapResolver resolver;
  Schema ls;
  ls.AddField("a", DataType::kInt);
  ls.AddField("b", DataType::kString);
  ls.AddField("x", DataType::kInt);
  Schema rs;
  rs.AddField("a", DataType::kInt);
  rs.AddField("b", DataType::kString);
  rs.AddField("y", DataType::kInt);
  Relation l(ls), r(rs);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(l.AddRow({Value::Int(i % 4),
                          Value::String(i % 2 ? "p" : "q"), Value::Int(i)})
                    .ok());
    ASSERT_TRUE(r.AddRow({Value::Int(i % 4),
                          Value::String(i % 2 ? "p" : "q"), Value::Int(i)})
                    .ok());
  }
  resolver.Put("l", std::move(l));
  resolver.Put("r", std::move(r));
  Executor exec(&resolver);
  const char* q =
      "select count(*) from l join r on l.a = r.a and l.b = r.b and "
      "l.x < r.y";
  SetHashJoinThreshold(0);
  ResetJoinCounters();
  auto hashed = exec.Query(q);
  ASSERT_TRUE(hashed.ok());
  EXPECT_EQ(GetJoinCounters().hash_joins, 1);
  SetHashJoinThreshold(SIZE_MAX);
  auto nested = exec.Query(q);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(hashed->rows()[0][0], nested->rows()[0][0]);
  EXPECT_GT(hashed->rows()[0][0].int_value(), 0);
}

}  // namespace
}  // namespace gsn::sql

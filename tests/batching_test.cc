// Differential tests for batched pipeline execution: the batched paths
// (batch listeners, NotificationManager::OnBatch, InsertBatch,
// QueryManager::OnNewElementBatch) must produce byte-identical outputs
// and downstream state to their per-element equivalents. Also covers
// the bounded LRU prepared-statement cache.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gsn/container/container.h"
#include "gsn/container/notification.h"
#include "gsn/container/query_manager.h"
#include "gsn/storage/table.h"
#include "gsn/telemetry/metrics.h"

namespace gsn::container {
namespace {

StreamElement Elem(Timestamp t, int64_t seq, double value) {
  StreamElement e;
  e.timed = t;
  e.values = {Value::Int(seq), Value::Double(value)};
  return e;
}

Schema ElementSchema() {
  Schema s;
  s.AddField("seq", DataType::kInt);
  s.AddField("value", DataType::kDouble);
  return s;
}

bool SameElement(const StreamElement& a, const StreamElement& b) {
  return a.timed == b.timed && a.values == b.values;
}

// --------------------------------------------------------- Notification

TEST(BatchingDifferential, NotificationOnBatchMatchesOnElementLoop) {
  NotificationManager per_element;
  NotificationManager batched;

  std::vector<Notification> per_element_log;
  std::vector<Notification> batched_log;
  auto subscribe = [](NotificationManager* manager,
                      std::vector<Notification>* log) {
    // Two subscriptions: a conditional one and a catch-all, so delivery
    // order across subscriptions is exercised too.
    ASSERT_TRUE(manager
                    ->Subscribe("s", "seq % 2 = 0",
                                std::make_shared<CallbackChannel>(
                                    [log](const Notification& n) {
                                      log->push_back(n);
                                    }))
                    .ok());
    ASSERT_TRUE(manager
                    ->Subscribe("*", "",
                                std::make_shared<CallbackChannel>(
                                    [log](const Notification& n) {
                                      log->push_back(n);
                                    }))
                    .ok());
  };
  subscribe(&per_element, &per_element_log);
  subscribe(&batched, &batched_log);

  std::vector<StreamElement> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(Elem(1000 + i * 10, i, i * 0.5));
  }

  int delivered_loop = 0;
  for (const StreamElement& e : batch) {
    delivered_loop += per_element.OnElement("s", ElementSchema(), e);
  }
  const int delivered_batch = batched.OnBatch("s", ElementSchema(), batch);

  EXPECT_EQ(delivered_batch, delivered_loop);
  ASSERT_EQ(batched_log.size(), per_element_log.size());
  for (size_t i = 0; i < batched_log.size(); ++i) {
    EXPECT_EQ(batched_log[i].sensor_name, per_element_log[i].sensor_name);
    EXPECT_TRUE(SameElement(batched_log[i].element,
                            per_element_log[i].element))
        << "delivery " << i;
  }
  EXPECT_EQ(batched.stats().elements_seen, per_element.stats().elements_seen);
  EXPECT_EQ(batched.stats().delivered, per_element.stats().delivered);
}

// ----------------------------------------------------- Continuous query

TEST(BatchingDifferential, ContinuousBatchMatchesFinalPerElementRun) {
  // Continuous queries read the sensor's stored table, so one run after
  // a fully inserted batch must equal the *last* of N per-element runs.
  const std::string sql = "select count(*), max(seq), avg(value) from s";
  WindowSpec retention;
  retention.kind = WindowSpec::Kind::kCount;
  retention.count = 100;

  std::vector<StreamElement> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(Elem(2000 + i * 10, i, i * 0.25));
  }

  // Per-element: insert + notify per element, keep the last result.
  storage::TableManager tables_a;
  auto table_a = tables_a.CreateTable("s", ElementSchema(), retention);
  ASSERT_TRUE(table_a.ok());
  QueryManager qm_a(&tables_a);
  Relation last_a;
  ASSERT_TRUE(qm_a.RegisterContinuous(
                      sql, [&last_a](const std::string&, const Relation& r) {
                        last_a = r;
                      })
                  .ok());
  int runs_a = 0;
  for (const StreamElement& e : batch) {
    ASSERT_TRUE((*table_a)->Insert(e).ok());
    runs_a += qm_a.OnNewElement("s");
  }

  // Batched: one InsertBatch, one OnNewElementBatch.
  storage::TableManager tables_b;
  auto table_b = tables_b.CreateTable("s", ElementSchema(), retention);
  ASSERT_TRUE(table_b.ok());
  QueryManager qm_b(&tables_b);
  Relation last_b;
  int calls_b = 0;
  ASSERT_TRUE(qm_b.RegisterContinuous(
                      sql,
                      [&last_b, &calls_b](const std::string&,
                                          const Relation& r) {
                        last_b = r;
                        ++calls_b;
                      })
                  .ok());
  ASSERT_TRUE((*table_b)->InsertBatch(batch).ok());
  const int runs_b = qm_b.OnNewElementBatch("s", batch);

  EXPECT_EQ(runs_a, static_cast<int>(batch.size()));
  EXPECT_EQ(runs_b, 1);
  EXPECT_EQ(calls_b, 1);
  ASSERT_EQ(last_a.NumRows(), last_b.NumRows());
  ASSERT_EQ(last_a.NumRows(), 1u);
  EXPECT_EQ(last_a.row(0), last_b.row(0));
}

// ------------------------------------------------------- Local chaining

TEST(BatchingDifferential, PushBatchMatchesPushLoop) {
  LocalStreamWrapper loop(ElementSchema(), "producer");
  LocalStreamWrapper batched(ElementSchema(), "producer");

  std::vector<StreamElement> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(Elem(3000 + i, i, i * 1.5));
  }
  for (const StreamElement& e : batch) loop.Push(e);
  batched.PushBatch(batch);

  EXPECT_EQ(loop.received_count(), batched.received_count());
  auto a = loop.Poll(4000);
  auto b = batched.Poll(4000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE(SameElement((*a)[i], (*b)[i])) << "element " << i;
  }
}

// ----------------------------------------------------------- Container

std::string MoteDescriptor(const std::string& name) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"integer\"/>"
         "</output-structure>"
         "<storage permanent-storage=\"false\" size=\"10m\"/>"
         "<input-stream name=\"in\">"
         // The source emits its whole 2-second window per trigger, so a
         // coarse tick yields a multi-element output batch.
         "  <stream-source alias=\"src\" storage-size=\"2s\">"
         "    <address wrapper=\"mote\">"
         "      <predicate key=\"interval-ms\" val=\"100\"/>"
         "    </address>"
         "    <query>select temperature from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

TEST(BatchingDifferential, BatchListenersSeePerElementSequence) {
  // Coarse ticking admits many elements per trigger; the concatenation
  // of the batch-listener batches must be exactly the per-element
  // listener sequence, and the whole batch must land in storage.
  auto clock = std::make_shared<VirtualClock>();
  telemetry::MetricRegistry registry;
  Container::Options options;
  options.node_id = "batch-test";
  options.clock = clock;
  options.seed = 99;
  options.metrics = &registry;
  Container container(std::move(options));

  auto deployed = container.Deploy(MoteDescriptor("room"));
  ASSERT_TRUE(deployed.ok());

  std::vector<StreamElement> per_element;
  std::vector<StreamElement> concatenated;
  std::vector<size_t> batch_sizes;
  (*deployed)->AddListener(
      [&per_element](const vsensor::VirtualSensor&, const StreamElement& e) {
        per_element.push_back(e);
      });
  (*deployed)->AddBatchListener(
      [&concatenated, &batch_sizes](const vsensor::VirtualSensor&,
                                    const std::vector<StreamElement>& batch) {
        batch_sizes.push_back(batch.size());
        concatenated.insert(concatenated.end(), batch.begin(), batch.end());
      });

  // 1-second steps against a 100 ms device: ~10 elements per trigger.
  for (int i = 0; i < 5; ++i) {
    clock->Advance(kMicrosPerSecond);
    ASSERT_TRUE(container.Tick().ok());
  }

  ASSERT_FALSE(per_element.empty());
  ASSERT_EQ(concatenated.size(), per_element.size());
  for (size_t i = 0; i < concatenated.size(); ++i) {
    EXPECT_TRUE(SameElement(concatenated[i], per_element[i]))
        << "element " << i;
  }
  bool saw_real_batch = false;
  for (size_t n : batch_sizes) saw_real_batch |= n > 1;
  EXPECT_TRUE(saw_real_batch);

  // The batch-size histogram saw every trigger, and its sum is the
  // number of admitted elements.
  const telemetry::Histogram::Snapshot sizes =
      registry.SumHistograms("gsn_pipeline_batch_size");
  EXPECT_EQ(sizes.count, static_cast<int64_t>(batch_sizes.size()));

  // Storage received the same elements (batched insert path).
  auto count = container.Query("select count(*) from room");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->NumRows(), 1u);
  EXPECT_EQ(count->row(0)[0], Value::Int(static_cast<int64_t>(
                                  per_element.size())));
}

// -------------------------------------------------------- LRU cache

TEST(QueryCacheLru, BoundedWithEvictionMetric) {
  telemetry::MetricRegistry registry;
  storage::TableManager tables;
  WindowSpec retention;
  retention.kind = WindowSpec::Kind::kCount;
  retention.count = 10;
  auto table = tables.CreateTable("s", ElementSchema(), retention);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(Elem(1, 1, 1.0)).ok());

  QueryManager qm(&tables, &registry);
  EXPECT_EQ(qm.cache_capacity(), 256u);  // the documented default bound
  qm.set_cache_capacity(2);

  const std::string q1 = "select seq from s";
  const std::string q2 = "select value from s";
  const std::string q3 = "select count(*) from s";
  ASSERT_TRUE(qm.Execute(q1).ok());
  ASSERT_TRUE(qm.Execute(q2).ok());
  EXPECT_EQ(qm.cache_size(), 2u);
  EXPECT_EQ(registry.SumCounters("gsn_query_cache_evictions_total"), 0);

  // Third distinct query evicts the least recently used (q1).
  ASSERT_TRUE(qm.Execute(q3).ok());
  EXPECT_EQ(qm.cache_size(), 2u);
  EXPECT_EQ(registry.SumCounters("gsn_query_cache_evictions_total"), 1);

  // q3 is cached (hit); q1 was evicted (miss, evicting q2 in turn).
  const int64_t hits_before = qm.stats().cache_hits;
  ASSERT_TRUE(qm.Execute(q3).ok());
  EXPECT_EQ(qm.stats().cache_hits, hits_before + 1);
  const int64_t misses_before = qm.stats().cache_misses;
  ASSERT_TRUE(qm.Execute(q1).ok());
  EXPECT_EQ(qm.stats().cache_misses, misses_before + 1);
  EXPECT_EQ(registry.SumCounters("gsn_query_cache_evictions_total"), 2);

  // Shrinking evicts immediately; the survivor is the MRU entry (q1).
  qm.set_cache_capacity(1);
  EXPECT_EQ(qm.cache_size(), 1u);
  EXPECT_EQ(registry.SumCounters("gsn_query_cache_evictions_total"), 3);
  const int64_t hits_shrunk = qm.stats().cache_hits;
  ASSERT_TRUE(qm.Execute(q1).ok());
  EXPECT_EQ(qm.stats().cache_hits, hits_shrunk + 1);
}

}  // namespace
}  // namespace gsn::container

// Bound tests for the always-on observability stores: the trace ring
// and the slow-query log must stay O(1) in memory under sustained
// load, evicting oldest-first and counting what they drop.

#include <gtest/gtest.h>

#include <string>

#include "gsn/container/query_manager.h"
#include "gsn/sql/executor.h"
#include "gsn/telemetry/tracing.h"

namespace gsn::telemetry {
namespace {

TEST(TelemetryBoundsTest, TraceStoreEvictsOldestAndCountsDropped) {
  TraceStore store(8);
  for (int i = 0; i < 20; ++i) {
    SpanRecord record;
    record.trace_hi = 1;
    record.trace_lo = 1;
    record.span_id = static_cast<uint64_t>(i + 1);
    record.name = "span-" + std::to_string(i);
    store.Record(std::move(record));
  }
  EXPECT_EQ(store.size(), 8u);
  EXPECT_EQ(store.capacity(), 8u);
  EXPECT_EQ(store.dropped(), 12u);

  const auto spans = store.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // Oldest-first, and the survivors are the 8 newest records.
  EXPECT_EQ(spans.front().name, "span-12");
  EXPECT_EQ(spans.back().name, "span-19");
}

}  // namespace
}  // namespace gsn::telemetry

namespace gsn::container {
namespace {

TEST(TelemetryBoundsTest, SlowQueryLogIsABoundedRing) {
  // A table big enough that every execution costs well over the 1us
  // slow bar.
  Schema schema;
  schema.AddField("x", DataType::kInt);
  Relation rows(schema);
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(rows.AddRow({Value::Int(i % 97)}).ok());
  }
  sql::MapResolver resolver;
  resolver.Put("t", std::move(rows));

  telemetry::MetricRegistry registry;
  QueryManager manager(&resolver, &registry);
  manager.set_slow_query_micros(1);

  constexpr int kQueries = 40;
  for (int i = 0; i < kQueries; ++i) {
    auto result = manager.Execute(
        "select avg(x) from t where x >= " + std::to_string(-i), "bounds");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  const auto log = manager.slow_log();
  // Bounded ring of 32, oldest evicted first: the survivors are the 32
  // most recent executions, newest last.
  ASSERT_EQ(log.size(), 32u);
  EXPECT_NE(log.front().sql_text.find(std::to_string(-(kQueries - 32))),
            std::string::npos)
      << log.front().sql_text;
  EXPECT_NE(log.back().sql_text.find(std::to_string(-(kQueries - 1))),
            std::string::npos)
      << log.back().sql_text;
  for (const auto& entry : log) {
    EXPECT_EQ(entry.source, "bounds");
    EXPECT_GE(entry.elapsed_micros, 1);
    // Each retained occurrence carries the analyzed plan of the slow
    // execution itself.
    EXPECT_NE(entry.plan.find("rows="), std::string::npos) << entry.plan;
  }
  // Every slow occurrence was counted, not just the retained ones.
  EXPECT_EQ(registry.SumCounters("gsn_slow_queries_total"), kQueries);
}

}  // namespace
}  // namespace gsn::container

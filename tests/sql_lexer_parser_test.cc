#include <gtest/gtest.h>

#include "gsn/sql/lexer.h"
#include "gsn/sql/parser.h"

namespace gsn::sql {
namespace {

// ------------------------------------------------------------------ Lexer

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("select Select SELECT");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // 3 + EOF
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kKeyword);
    EXPECT_EQ((*tokens)[i].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Lex("Temperature");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "Temperature");
}

TEST(LexerTest, NumbersIntAndDouble) {
  auto tokens = Lex("42 3.14 .5 2e3 1E-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIntegerLiteral);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 3.14);
  EXPECT_EQ((*tokens)[2].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 0.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].double_value, 2000.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].double_value, 0.01);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kStringLiteral);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, QuotedIdentifier) {
  auto tokens = Lex("\"order\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kQuotedIdentifier);
  EXPECT_EQ((*tokens)[0].text, "order");
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= <> != < <= > >= || + - * / %");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> expected = {
      TokenType::kEq,      TokenType::kNotEq,     TokenType::kNotEq,
      TokenType::kLess,    TokenType::kLessEq,    TokenType::kGreater,
      TokenType::kGreaterEq, TokenType::kConcat,  TokenType::kPlus,
      TokenType::kMinus,   TokenType::kStar,      TokenType::kSlash,
      TokenType::kPercent, TokenType::kEof};
  ASSERT_EQ(tokens->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*tokens)[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, Comments) {
  auto tokens = Lex("select -- a comment\n 1 /* block\ncomment */ + 2");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // SELECT 1 + 2 EOF
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_FALSE(Lex("a | b").ok());
  EXPECT_FALSE(Lex("select /* never closed").ok());
  EXPECT_FALSE(Lex("#").ok());
}

// ----------------------------------------------------------------- Parser

TEST(ParserTest, PaperQueryAvgFromWrapper) {
  // The exact query from Figure 1 of the paper.
  auto stmt = ParseSelect("select avg(temperature) from WRAPPER");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->items.size(), 1u);
  EXPECT_EQ((*stmt)->items[0].expr->kind, ExprKind::kFunctionCall);
  EXPECT_EQ((*stmt)->items[0].expr->function, "AVG");
  ASSERT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0]->table_name, "WRAPPER");
}

TEST(ParserTest, PaperQuerySelectStarFromSrc1) {
  auto stmt = ParseSelect("select * from src1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->items[0].is_star);
  EXPECT_EQ((*stmt)->from[0]->table_name, "src1");
}

TEST(ParserTest, QualifiedStar) {
  auto stmt = ParseSelect("select src1.*, src2.temp from src1, src2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->items[0].is_star);
  EXPECT_EQ((*stmt)->items[0].star_qualifier, "src1");
  EXPECT_EQ((*stmt)->items[1].expr->qualifier, "src2");
  EXPECT_EQ((*stmt)->from.size(), 2u);
}

TEST(ParserTest, Aliases) {
  auto stmt = ParseSelect("select temp as t, light l from motes m");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].alias, "t");
  EXPECT_EQ((*stmt)->items[1].alias, "l");
  EXPECT_EQ((*stmt)->from[0]->alias, "m");
}

TEST(ParserTest, WhereGroupHavingOrderLimit) {
  auto stmt = ParseSelect(
      "select type, avg(temp) from readings where temp > 10 "
      "group by type having count(*) > 2 order by type desc limit 5 "
      "offset 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  EXPECT_NE((*stmt)->having, nullptr);
  EXPECT_EQ((*stmt)->order_by.size(), 1u);
  EXPECT_FALSE((*stmt)->order_by[0].ascending);
  EXPECT_EQ((*stmt)->limit, 5);
  EXPECT_EQ((*stmt)->offset, 2);
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  // Should parse as 1 + (2 * 3).
  EXPECT_EQ((*e)->binary_op, BinaryOp::kAdd);
  EXPECT_EQ((*e)->children[1]->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, AndOrPrecedence) {
  auto e = ParseExpression("a = 1 or b = 2 and c = 3");
  ASSERT_TRUE(e.ok());
  // OR binds loosest: a=1 OR (b=2 AND c=3).
  EXPECT_EQ((*e)->binary_op, BinaryOp::kOr);
  EXPECT_EQ((*e)->children[1]->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, NotBetweenInLike) {
  EXPECT_TRUE(ParseExpression("x not between 1 and 5").ok());
  EXPECT_TRUE(ParseExpression("x not in (1, 2, 3)").ok());
  EXPECT_TRUE(ParseExpression("name not like 'mica%'").ok());
  EXPECT_TRUE(ParseExpression("x is not null").ok());
  EXPECT_TRUE(ParseExpression("not x = 1").ok());
}

TEST(ParserTest, InSubqueryAndExists) {
  auto stmt = ParseSelect(
      "select * from a where id in (select id from b) and "
      "exists (select 1 from c where c.x = a.x)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(ParserTest, ScalarSubquery) {
  auto stmt =
      ParseSelect("select (select max(t) from b) as mt, x from a");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].expr->kind, ExprKind::kScalarSubquery);
  EXPECT_EQ((*stmt)->items[0].alias, "mt");
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_TRUE(
      ParseSelect("select * from (select 1 as one) sub").ok());
  EXPECT_FALSE(ParseSelect("select * from (select 1 as one)").ok());
}

TEST(ParserTest, Joins) {
  auto stmt = ParseSelect(
      "select * from a join b on a.id = b.id "
      "left join c on b.id = c.id cross join d");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const TableRef* top = (*stmt)->from[0].get();
  EXPECT_EQ(top->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(top->join_type, TableRef::JoinType::kCross);
  EXPECT_EQ(top->left->join_type, TableRef::JoinType::kLeft);
  EXPECT_EQ(top->left->left->join_type, TableRef::JoinType::kInner);
}

TEST(ParserTest, SetOperations) {
  auto stmt = ParseSelect(
      "select x from a union select x from b intersect select x from c");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->set_op, SetOp::kUnion);
  ASSERT_NE((*stmt)->set_rhs, nullptr);
  EXPECT_EQ((*stmt)->set_rhs->set_op, SetOp::kIntersect);
}

TEST(ParserTest, UnionAll) {
  auto stmt = ParseSelect("select 1 union all select 2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->set_op, SetOp::kUnionAll);
}

TEST(ParserTest, CaseExpressions) {
  EXPECT_TRUE(
      ParseExpression("case when x > 0 then 'pos' else 'neg' end").ok());
  EXPECT_TRUE(
      ParseExpression("case x when 1 then 'one' when 2 then 'two' end").ok());
  EXPECT_FALSE(ParseExpression("case end").ok());
}

TEST(ParserTest, Cast) {
  auto e = ParseExpression("cast(temp as double)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kCast);
  EXPECT_EQ((*e)->cast_type, DataType::kDouble);
}

TEST(ParserTest, CountStarAndDistinct) {
  auto e1 = ParseExpression("count(*)");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ((*e1)->children[0]->kind, ExprKind::kStar);
  auto e2 = ParseExpression("count(distinct type)");
  ASSERT_TRUE(e2.ok());
  EXPECT_TRUE((*e2)->distinct);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("select").ok());
  EXPECT_FALSE(ParseSelect("select * from").ok());
  EXPECT_FALSE(ParseSelect("select * from t where").ok());
  EXPECT_FALSE(ParseSelect("select * from t limit x").ok());
  EXPECT_FALSE(ParseSelect("select * from t garbage trailing").ok());
  EXPECT_FALSE(ParseSelect("from t").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1 + 2").ok());
}

TEST(ParserTest, RoundTripToString) {
  // ToString must itself be parseable (fixed point after one round).
  const char* queries[] = {
      "select avg(temperature) from WRAPPER",
      "select * from src1",
      "select a.x, b.y from a join b on a.id = b.id where a.x > 3",
      "select type, count(*) from t group by type having count(*) > 1",
      "select x from a union all select y from b",
      "select case when x > 0 then 1 else 0 end from t",
  };
  for (const char* q : queries) {
    auto stmt = ParseSelect(q);
    ASSERT_TRUE(stmt.ok()) << q;
    const std::string rendered = (*stmt)->ToString();
    auto reparsed = ParseSelect(rendered);
    ASSERT_TRUE(reparsed.ok()) << "re-parse failed for: " << rendered;
    EXPECT_EQ((*reparsed)->ToString(), rendered);
  }
}

}  // namespace
}  // namespace gsn::sql

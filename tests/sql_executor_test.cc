#include <gtest/gtest.h>

#include <cmath>

#include "gsn/sql/executor.h"
#include "gsn/sql/parser.h"

namespace gsn::sql {
namespace {

/// Builds the fixture tables used throughout:
///   readings(node int, type string, temp int, light double, timed ts)
///   nodes(node int, location string)
MapResolver MakeFixture() {
  MapResolver resolver;

  Schema readings_schema;
  readings_schema.AddField("node", DataType::kInt);
  readings_schema.AddField("type", DataType::kString);
  readings_schema.AddField("temp", DataType::kInt);
  readings_schema.AddField("light", DataType::kDouble);
  readings_schema.AddField("timed", DataType::kTimestamp);
  Relation readings(readings_schema);
  auto add = [&](int node, const char* type, int temp, double light,
                 int64_t t) {
    EXPECT_TRUE(readings
                    .AddRow({Value::Int(node), Value::String(type),
                             Value::Int(temp), Value::Double(light),
                             Value::TimestampVal(t)})
                    .ok());
  };
  add(1, "mica2", 20, 100.0, 1000);
  add(1, "mica2", 22, 110.0, 2000);
  add(2, "mica2", 30, 90.0, 1500);
  add(2, "mica2dot", 26, 80.0, 2500);
  add(3, "tinynode", 18, 120.0, 3000);
  resolver.Put("readings", std::move(readings));

  Schema nodes_schema;
  nodes_schema.AddField("node", DataType::kInt);
  nodes_schema.AddField("location", DataType::kString);
  Relation nodes(nodes_schema);
  EXPECT_TRUE(nodes.AddRow({Value::Int(1), Value::String("bc143")}).ok());
  EXPECT_TRUE(nodes.AddRow({Value::Int(2), Value::String("bc144")}).ok());
  EXPECT_TRUE(nodes.AddRow({Value::Int(4), Value::String("lab")}).ok());
  resolver.Put("nodes", std::move(nodes));
  return resolver;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : resolver_(MakeFixture()), exec_(&resolver_) {}

  Relation MustQuery(const std::string& sql) {
    Result<Relation> r = exec_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *std::move(r) : Relation();
  }

  MapResolver resolver_;
  Executor exec_;
};

// ------------------------------------------------------------- basics

TEST_F(ExecutorTest, SelectStar) {
  Relation r = MustQuery("select * from readings");
  EXPECT_EQ(r.NumRows(), 5u);
  EXPECT_EQ(r.schema().size(), 5u);
  EXPECT_EQ(r.schema().field(0).name, "node");
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  Relation r = MustQuery("select 1 + 2 as three, 'x' as s");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value::Int(3));
  EXPECT_EQ(r.rows()[0][1], Value::String("x"));
  EXPECT_EQ(r.schema().field(0).name, "three");
}

TEST_F(ExecutorTest, Projection) {
  Relation r = MustQuery("select temp, temp * 2 as doubled from readings");
  ASSERT_EQ(r.NumRows(), 5u);
  EXPECT_EQ(r.rows()[0][1], Value::Int(40));
  EXPECT_EQ(r.schema().field(1).name, "doubled");
  EXPECT_EQ(r.schema().field(1).type, DataType::kInt);
}

TEST_F(ExecutorTest, WhereFilter) {
  Relation r = MustQuery("select node from readings where temp > 21");
  EXPECT_EQ(r.NumRows(), 3u);
}

TEST_F(ExecutorTest, WherePredicateCombination) {
  Relation r = MustQuery(
      "select * from readings where temp > 19 and light < 105 or node = 3");
  EXPECT_EQ(r.NumRows(), 4u);
}

TEST_F(ExecutorTest, MissingTable) {
  EXPECT_EQ(exec_.Query("select * from nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ExecutorTest, MissingColumn) {
  EXPECT_FALSE(exec_.Query("select wat from readings").ok());
}

// ------------------------------------------------------------ aggregates

TEST_F(ExecutorTest, PaperAvgQuery) {
  // Figure 1 of the paper: select avg(temperature) from WRAPPER — here
  // against the fixture's temp column.
  Relation r = MustQuery("select avg(temp) from readings");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(r.rows()[0][0].double_value(), (20 + 22 + 30 + 26 + 18) / 5.0);
}

TEST_F(ExecutorTest, AggregateFunctions) {
  Relation r = MustQuery(
      "select count(*), count(light), sum(temp), min(temp), max(temp), "
      "avg(light) from readings");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value::Int(5));
  EXPECT_EQ(r.rows()[0][1], Value::Int(5));
  EXPECT_EQ(r.rows()[0][2], Value::Int(116));
  EXPECT_EQ(r.rows()[0][3], Value::Int(18));
  EXPECT_EQ(r.rows()[0][4], Value::Int(30));
  EXPECT_DOUBLE_EQ(r.rows()[0][5].double_value(), 100.0);
}

TEST_F(ExecutorTest, CountDistinct) {
  Relation r = MustQuery("select count(distinct type) from readings");
  EXPECT_EQ(r.rows()[0][0], Value::Int(3));
}

TEST_F(ExecutorTest, GroupBy) {
  Relation r = MustQuery(
      "select node, count(*) as n, avg(temp) from readings group by node "
      "order by node");
  ASSERT_EQ(r.NumRows(), 3u);
  EXPECT_EQ(r.rows()[0][0], Value::Int(1));
  EXPECT_EQ(r.rows()[0][1], Value::Int(2));
  EXPECT_DOUBLE_EQ(r.rows()[0][2].double_value(), 21.0);
  EXPECT_EQ(r.rows()[1][1], Value::Int(2));
  EXPECT_EQ(r.rows()[2][1], Value::Int(1));
}

TEST_F(ExecutorTest, Having) {
  Relation r = MustQuery(
      "select node from readings group by node having count(*) > 1 "
      "order by node");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows()[0][0], Value::Int(1));
  EXPECT_EQ(r.rows()[1][0], Value::Int(2));
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  Relation r =
      MustQuery("select count(*), avg(temp) from readings where temp > 999");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value::Int(0));
  EXPECT_TRUE(r.rows()[0][1].is_null());
}

TEST_F(ExecutorTest, GroupByEmptyInputProducesNoGroups) {
  Relation r = MustQuery(
      "select node, count(*) from readings where temp > 999 group by node");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST_F(ExecutorTest, StddevAndVariance) {
  Relation r = MustQuery("select variance(temp), stddev(temp) from readings");
  ASSERT_EQ(r.NumRows(), 1u);
  // temps: 20,22,30,26,18; mean 23.2; sample variance = 23.2
  EXPECT_NEAR(r.rows()[0][0].double_value(), 23.2, 1e-9);
  EXPECT_NEAR(r.rows()[0][1].double_value(), std::sqrt(23.2), 1e-9);
}

// ----------------------------------------------------------------- joins

TEST_F(ExecutorTest, InnerJoin) {
  Relation r = MustQuery(
      "select r.temp, n.location from readings r join nodes n "
      "on r.node = n.node order by r.temp");
  ASSERT_EQ(r.NumRows(), 4u);  // node 3 has no location
  EXPECT_EQ(r.rows()[0][1], Value::String("bc143"));
}

TEST_F(ExecutorTest, LeftJoinPadsNulls) {
  Relation r = MustQuery(
      "select r.node, n.location from readings r left join nodes n "
      "on r.node = n.node where r.node = 3");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_TRUE(r.rows()[0][1].is_null());
}

TEST_F(ExecutorTest, CrossJoinCardinality) {
  Relation r = MustQuery("select * from readings cross join nodes");
  EXPECT_EQ(r.NumRows(), 15u);
}

TEST_F(ExecutorTest, CommaJoinWithWhere) {
  Relation r = MustQuery(
      "select r.temp from readings r, nodes n where r.node = n.node");
  EXPECT_EQ(r.NumRows(), 4u);
}

TEST_F(ExecutorTest, AmbiguousColumnIsError) {
  EXPECT_FALSE(
      exec_.Query("select node from readings r join nodes n on r.node = n.node")
          .ok());
}

// ------------------------------------------------------------- subqueries

TEST_F(ExecutorTest, DerivedTable) {
  Relation r = MustQuery(
      "select t.m from (select max(temp) as m from readings) t");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value::Int(30));
}

TEST_F(ExecutorTest, InSubquery) {
  Relation r = MustQuery(
      "select location from nodes where node in "
      "(select node from readings where temp > 25) order by location");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value::String("bc144"));
}

TEST_F(ExecutorTest, CorrelatedScalarSubquery) {
  Relation r = MustQuery(
      "select n.node, (select count(*) from readings r where r.node = n.node) "
      "as cnt from nodes n order by n.node");
  ASSERT_EQ(r.NumRows(), 3u);
  EXPECT_EQ(r.rows()[0][1], Value::Int(2));
  EXPECT_EQ(r.rows()[1][1], Value::Int(2));
  EXPECT_EQ(r.rows()[2][1], Value::Int(0));
}

TEST_F(ExecutorTest, CorrelatedExists) {
  Relation r = MustQuery(
      "select location from nodes n where exists "
      "(select 1 from readings r where r.node = n.node) order by location");
  ASSERT_EQ(r.NumRows(), 2u);
}

TEST_F(ExecutorTest, ScalarSubqueryMultipleRowsIsError) {
  EXPECT_FALSE(
      exec_.Query("select (select temp from readings) from nodes").ok());
}

// ---------------------------------------------------- distinct/order/limit

TEST_F(ExecutorTest, Distinct) {
  Relation r = MustQuery("select distinct node from readings order by node");
  ASSERT_EQ(r.NumRows(), 3u);
}

TEST_F(ExecutorTest, OrderByMultipleKeysAndDesc) {
  Relation r = MustQuery(
      "select node, temp from readings order by node asc, temp desc");
  ASSERT_EQ(r.NumRows(), 5u);
  EXPECT_EQ(r.rows()[0][1], Value::Int(22));
  EXPECT_EQ(r.rows()[1][1], Value::Int(20));
}

TEST_F(ExecutorTest, OrderByNonProjectedColumn) {
  Relation r = MustQuery("select type from readings order by temp desc");
  EXPECT_EQ(r.rows()[0][0], Value::String("mica2"));  // temp=30
}

TEST_F(ExecutorTest, OrderByAlias) {
  Relation r =
      MustQuery("select temp * 2 as d from readings order by d limit 1");
  EXPECT_EQ(r.rows()[0][0], Value::Int(36));
}

TEST_F(ExecutorTest, OrderByOrdinal) {
  // Standard SQL: ORDER BY 2 sorts by the second output column.
  Relation r = MustQuery("select node, temp from readings order by 2 desc");
  ASSERT_EQ(r.NumRows(), 5u);
  EXPECT_EQ(r.rows()[0][1], Value::Int(30));
  EXPECT_EQ(r.rows()[4][1], Value::Int(18));
  // Mixed ordinal + expression keys.
  Relation m =
      MustQuery("select node, temp from readings order by 1, temp desc");
  EXPECT_EQ(m.rows()[0][0], Value::Int(1));
  EXPECT_EQ(m.rows()[0][1], Value::Int(22));
  // Out-of-range ordinals are errors.
  EXPECT_FALSE(exec_.Query("select node from readings order by 2").ok());
  EXPECT_FALSE(exec_.Query("select node from readings order by 0").ok());
}

TEST_F(ExecutorTest, LimitOffset) {
  Relation r =
      MustQuery("select temp from readings order by temp limit 2 offset 1");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows()[0][0], Value::Int(20));
  EXPECT_EQ(r.rows()[1][0], Value::Int(22));
}

TEST_F(ExecutorTest, LimitLargerThanResult) {
  Relation r = MustQuery("select * from nodes limit 100");
  EXPECT_EQ(r.NumRows(), 3u);
}

// ---------------------------------------------------------------- set ops

TEST_F(ExecutorTest, UnionDedupes) {
  Relation r = MustQuery(
      "select node from readings union select node from nodes order by 1");
  // readings nodes {1,2,3} ∪ nodes {1,2,4} = {1,2,3,4}
  EXPECT_EQ(r.NumRows(), 4u);
}

TEST_F(ExecutorTest, UnionAllKeepsDuplicates) {
  Relation r = MustQuery(
      "select node from readings union all select node from nodes");
  EXPECT_EQ(r.NumRows(), 8u);
}

TEST_F(ExecutorTest, Intersect) {
  Relation r = MustQuery(
      "select node from readings intersect select node from nodes");
  EXPECT_EQ(r.NumRows(), 2u);  // {1,2}
}

TEST_F(ExecutorTest, Except) {
  Relation r = MustQuery(
      "select node from readings except select node from nodes");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value::Int(3));
}

TEST_F(ExecutorTest, SetOpArityMismatchIsError) {
  EXPECT_FALSE(
      exec_.Query("select node, temp from readings union select node from nodes")
          .ok());
}

// ------------------------------------------------------------ expressions

TEST_F(ExecutorTest, ThreeValuedLogicInWhere) {
  // NULL location rows must not pass WHERE.
  Relation r = MustQuery(
      "select n.location from readings r left join nodes n on r.node = n.node "
      "where n.location <> 'bc143'");
  // Only node-2 rows (bc144) qualify; node 3's NULL is filtered.
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST_F(ExecutorTest, LikePatterns) {
  Relation r = MustQuery(
      "select distinct type from readings where type like 'mica%' "
      "order by type");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows()[0][0], Value::String("mica2"));
}

TEST_F(ExecutorTest, BetweenAndIn) {
  Relation r1 = MustQuery(
      "select count(*) from readings where temp between 20 and 26");
  EXPECT_EQ(r1.rows()[0][0], Value::Int(3));
  Relation r2 =
      MustQuery("select count(*) from readings where node in (1, 3)");
  EXPECT_EQ(r2.rows()[0][0], Value::Int(3));
}

TEST_F(ExecutorTest, CaseExpression) {
  Relation r = MustQuery(
      "select case when temp >= 25 then 'hot' else 'cold' end as label "
      "from readings order by temp desc limit 1");
  EXPECT_EQ(r.rows()[0][0], Value::String("hot"));
}

TEST_F(ExecutorTest, CastExpression) {
  Relation r = MustQuery("select cast(temp as double) / 2 from readings "
                         "order by temp limit 1");
  EXPECT_DOUBLE_EQ(r.rows()[0][0].double_value(), 9.0);
}

TEST_F(ExecutorTest, IntegerDivisionTruncates) {
  Relation r = MustQuery("select 7 / 2, 7.0 / 2, 7 % 3");
  EXPECT_EQ(r.rows()[0][0], Value::Int(3));
  EXPECT_DOUBLE_EQ(r.rows()[0][1].double_value(), 3.5);
  EXPECT_EQ(r.rows()[0][2], Value::Int(1));
}

TEST_F(ExecutorTest, DivisionByZeroIsError) {
  EXPECT_FALSE(exec_.Query("select 1 / 0").ok());
  EXPECT_FALSE(exec_.Query("select 1 % 0").ok());
}

TEST_F(ExecutorTest, ScalarFunctions) {
  Relation r = MustQuery(
      "select abs(-5), upper('abc'), length('hello'), coalesce(null, 3), "
      "round(3.567, 2), substr('sensor', 1, 3)");
  EXPECT_EQ(r.rows()[0][0], Value::Int(5));
  EXPECT_EQ(r.rows()[0][1], Value::String("ABC"));
  EXPECT_EQ(r.rows()[0][2], Value::Int(5));
  EXPECT_EQ(r.rows()[0][3], Value::Int(3));
  EXPECT_DOUBLE_EQ(r.rows()[0][4].double_value(), 3.57);
  EXPECT_EQ(r.rows()[0][5], Value::String("sen"));
}

TEST_F(ExecutorTest, UnknownFunctionIsError) {
  EXPECT_FALSE(exec_.Query("select frobnicate(1)").ok());
}

TEST_F(ExecutorTest, TimestampArithmetic) {
  // Paper §3: time attributes manipulable through SQL.
  Relation r = MustQuery(
      "select count(*) from readings where timed > 1000 and timed <= 2500");
  EXPECT_EQ(r.rows()[0][0], Value::Int(3));
}

TEST_F(ExecutorTest, ConcatOperator) {
  Relation r = MustQuery("select 'a' || 'b' || 1");
  EXPECT_EQ(r.rows()[0][0], Value::String("ab1"));
}

// ------------------------------------------------------- LikeMatch directly

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("mica2dot", "mica%"));
  EXPECT_TRUE(LikeMatch("mica2", "mica_"));
  EXPECT_FALSE(LikeMatch("mica22", "mica_"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("temperature", "%per%"));
  EXPECT_TRUE(LikeMatch("ABC", "abc"));  // case-insensitive like MySQL
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_TRUE(LikeMatch("a%c", "a%c"));
}

// ----------------------------------------------------------- EvalBinary

TEST(EvalBinaryTest, NullPropagation) {
  auto r = EvalBinaryValues(BinaryOp::kAdd, Value::Null(), Value::Int(1));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
  auto c = EvalBinaryValues(BinaryOp::kEq, Value::Null(), Value::Null());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->is_null());
}

TEST(EvalBinaryTest, MixedNumericPromotion) {
  auto r = EvalBinaryValues(BinaryOp::kMul, Value::Int(2), Value::Double(1.5));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->double_value(), 3.0);
}

TEST(EvalBinaryTest, TimestampPlusIntIsTimestamp) {
  auto r = EvalBinaryValues(BinaryOp::kAdd, Value::TimestampVal(100),
                            Value::Int(50));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_timestamp());
  EXPECT_EQ(r->timestamp_value(), 150);
}

TEST(EvalBinaryTest, IncomparableTypesError) {
  EXPECT_FALSE(
      EvalBinaryValues(BinaryOp::kLess, Value::Int(1), Value::String("a")).ok());
}

}  // namespace
}  // namespace gsn::sql

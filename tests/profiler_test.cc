// Tests for the contention/scheduling profiler (docs/TELEMETRY.md):
// TimedMutex lock-wait metering, the aggregating span profiler, and the
// process/build introspection helpers behind the status surface.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "gsn/telemetry/profiler.h"

namespace gsn::telemetry {
namespace {

TEST(TelemetryProfilerTest, UninstrumentedTimedMutexBehavesLikeMutex) {
  TimedMutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  // Without Instrument() there are no metric handles and no counts.
  EXPECT_EQ(mu.acquisitions(), 0);
  EXPECT_EQ(mu.contended(), 0);
  EXPECT_EQ(mu.wait_micros_total(), 0);
  EXPECT_TRUE(mu.label().empty());
}

TEST(TelemetryProfilerTest, InstrumentedTimedMutexCountsAcquisitions) {
  MetricRegistry registry;
  TimedMutex mu;
  mu.Instrument(&registry, "unit", {{"sensor", "s1"}});
  EXPECT_EQ(mu.label(), "unit");

  mu.lock();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  EXPECT_EQ(mu.acquisitions(), 2);
  EXPECT_EQ(mu.contended(), 0);

  // The counters land in the registry under {lock=unit, sensor=s1}.
  EXPECT_EQ(registry.SumCounters("gsn_lock_acquisitions_total"), 2);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("lock=\"unit\""), std::string::npos) << text;
  EXPECT_NE(text.find("sensor=\"s1\""), std::string::npos) << text;
}

TEST(TelemetryProfilerTest, ContendedAcquisitionRecordsWaitTime) {
  MetricRegistry registry;
  TimedMutex mu;
  mu.Instrument(&registry, "contended");

  mu.lock();
  std::thread waiter([&] {
    mu.lock();  // blocks until the main thread releases
    mu.unlock();
  });
  // Give the waiter time to hit the contended slow path, then release.
  while (mu.contended() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  mu.unlock();
  waiter.join();

  EXPECT_EQ(mu.acquisitions(), 2);
  EXPECT_EQ(mu.contended(), 1);
  EXPECT_GT(mu.wait_micros_total(), 0);
  EXPECT_EQ(registry.SumHistograms("gsn_lock_wait_micros").count, 1);
}

TEST(TelemetryProfilerTest, RecordAggregatesAndTopSpansRanksByTotal) {
  Profiler profiler;
  profiler.Record("dispatch", 100);
  profiler.Record("dispatch", 300);
  profiler.Record("checkpoint", 250);

  const auto top = profiler.TopSpans(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "dispatch");
  EXPECT_EQ(top[0].count, 2);
  EXPECT_EQ(top[0].total_micros, 400);
  EXPECT_EQ(top[0].max_micros, 300);
  EXPECT_EQ(top[1].name, "checkpoint");
  EXPECT_EQ(top[1].total_micros, 250);

  // n bounds the answer.
  EXPECT_EQ(profiler.TopSpans(1).size(), 1u);
}

TEST(TelemetryProfilerTest, ScopeObservesHistogramAndStopIsIdempotent) {
  VirtualClock clock;
  MetricRegistry registry;
  auto histogram = registry.GetHistogram("span_micros");
  Profiler profiler(1, &clock);

  Profiler::Scope scope(&profiler, "tick", histogram.get());
  clock.Advance(250);
  EXPECT_EQ(scope.Stop(), 250);
  clock.Advance(999);
  EXPECT_EQ(scope.Stop(), 0);  // second Stop is a no-op

  const auto top = profiler.TopSpans(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].name, "tick");
  EXPECT_EQ(top[0].total_micros, 250);
  const auto snapshot = histogram->TakeSnapshot();
  EXPECT_EQ(snapshot.count, 1);
  EXPECT_EQ(snapshot.sum, 250);
}

TEST(TelemetryProfilerTest, SamplingPeriodScalesCountsBackUp) {
  VirtualClock clock;
  Profiler profiler(4, &clock);
  EXPECT_EQ(profiler.sample_period(), 4);

  // 8 spans of 10us each; only every 4th takes clock readings, and the
  // measured ones are scaled by the period.
  for (int i = 0; i < 8; ++i) {
    Profiler::Scope scope(&profiler, "hot");
    clock.Advance(10);
  }
  const auto top = profiler.TopSpans(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].count, 8);
  EXPECT_EQ(top[0].total_micros, 80);
  EXPECT_EQ(top[0].max_micros, 10);
}

TEST(TelemetryProfilerTest, SpanTableIsBoundedOverflowAggregates) {
  Profiler profiler;
  for (int i = 0; i < 400; ++i) {
    profiler.Record("span-" + std::to_string(i), 1);
  }
  const auto top = profiler.TopSpans(1000);
  // 256 distinct names max, plus the "<other>" overflow bucket.
  EXPECT_LE(top.size(), 257u);
  int64_t other_count = 0;
  for (const auto& span : top) {
    if (span.name == "<other>") other_count = span.count;
  }
  EXPECT_GT(other_count, 0);
}

TEST(TelemetryProfilerTest, ProcessStatsAndBuildInfoArePopulated) {
  const ProcessStats stats = ReadProcessStats();
  EXPECT_GT(stats.rss_bytes, 0);
  EXPECT_GE(stats.cpu_seconds, 0.0);
  EXPECT_FALSE(BuildVersion().empty());
  EXPECT_FALSE(BuildCompiler().empty());
}

}  // namespace
}  // namespace gsn::telemetry

// Tests for the telemetry subsystem: metric primitives, the registry,
// span timing, Prometheus exposition, and the end-to-end path from a
// deployed sensor's pipeline to GET /metrics.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "gsn/container/container.h"
#include "gsn/container/management_interface.h"
#include "gsn/container/query_manager.h"
#include "gsn/container/web_interface.h"
#include "gsn/sql/executor.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/telemetry/tracing.h"
#include "gsn/util/logging.h"

namespace gsn::telemetry {
namespace {

// ---------------------------------------------------------------- Counter

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(2);
  EXPECT_EQ(gauge.Value(), 2);
}

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  h.Observe(1);
  h.Observe(10);
  h.Observe(100);
  const Histogram::Snapshot snapshot = h.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_EQ(snapshot.sum, 111);
  EXPECT_EQ(snapshot.max, 100);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 37.0);
}

TEST(HistogramTest, QuantileOfUniformDistribution) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Observe(v);
  const Histogram::Snapshot snapshot = h.TakeSnapshot();
  // Log buckets: quantiles are exact to within one power of two.
  const int64_t p50 = snapshot.Quantile(0.5);
  EXPECT_GE(p50, 250);
  EXPECT_LE(p50, 1000);
  const int64_t p95 = snapshot.Quantile(0.95);
  EXPECT_GE(p95, 475);
  EXPECT_LE(p95, 1000);
  // The top of the distribution is the exact max.
  EXPECT_EQ(snapshot.Quantile(1.0), 1000);
  EXPECT_EQ(snapshot.max, 1000);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.TakeSnapshot().Quantile(0.99), 0);
}

TEST(HistogramTest, ConcurrentObservesAreLossless) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(t * 1000 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.TakeSnapshot().count, kThreads * kPerThread);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a;
  Histogram b;
  a.Observe(5);
  b.Observe(50);
  Histogram::Snapshot merged = a.TakeSnapshot();
  Histogram::Merge(&merged, b.TakeSnapshot());
  EXPECT_EQ(merged.count, 2);
  EXPECT_EQ(merged.sum, 55);
  EXPECT_EQ(merged.max, 50);
}

// ---------------------------------------------------------------- SpanTimer

TEST(SpanTimerTest, ObservesVirtualClockDelta) {
  VirtualClock clock;
  Histogram h;
  {
    SpanTimer span(&clock, &h);
    clock.Advance(250);
  }
  const Histogram::Snapshot snapshot = h.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 1);
  EXPECT_EQ(snapshot.sum, 250);
}

TEST(SpanTimerTest, StopReturnsElapsedAndDisarms) {
  VirtualClock clock;
  Histogram h;
  SpanTimer span(&clock, &h);
  clock.Advance(70);
  EXPECT_EQ(span.Stop(), 70);
  clock.Advance(1000);
  EXPECT_EQ(span.Stop(), 0);  // second Stop is a no-op
  EXPECT_EQ(h.TakeSnapshot().count, 1);
}

TEST(SpanTimerTest, NullHistogramDisablesSpan) {
  VirtualClock clock;
  SpanTimer span(&clock, nullptr);
  clock.Advance(50);
  EXPECT_EQ(span.Stop(), 0);
}

// ---------------------------------------------------------------- Registry

TEST(MetricRegistryTest, GetOrCreateReturnsSameInstance) {
  MetricRegistry registry;
  auto a = registry.GetCounter("requests_total");
  auto b = registry.GetCounter("requests_total");
  EXPECT_EQ(a.get(), b.get());
  a->Increment();
  EXPECT_EQ(b->Value(), 1);
  EXPECT_EQ(registry.NumSeries(), 1u);
}

TEST(MetricRegistryTest, LabelsSeparateSeries) {
  MetricRegistry registry;
  auto a = registry.GetCounter("tuples_total", {{"sensor", "a"}});
  auto b = registry.GetCounter("tuples_total", {{"sensor", "b"}});
  EXPECT_NE(a.get(), b.get());
  a->Increment(3);
  b->Increment(4);
  EXPECT_EQ(registry.SumCounters("tuples_total"), 7);
  EXPECT_EQ(registry.NumSeries(), 2u);
}

TEST(MetricRegistryTest, TypeMismatchReturnsDetachedInstance) {
  MetricRegistry registry;
  (void)registry.GetCounter("mixed");
  auto gauge = registry.GetGauge("mixed");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(9);  // usable, just not exported
  EXPECT_EQ(registry.NumSeries(), 1u);
  EXPECT_EQ(registry.RenderPrometheus().find("gauge"), std::string::npos);
}

TEST(MetricRegistryTest, RemoveWithLabelDropsTheSensorFamily) {
  MetricRegistry registry;
  auto doomed = registry.GetCounter("tuples_total", {{"sensor", "old"}});
  (void)registry.GetCounter("tuples_total", {{"sensor", "new"}});
  (void)registry.GetHistogram("latency_micros", {{"sensor", "old"}});
  EXPECT_EQ(registry.RemoveWithLabel("sensor", "old"), 2);
  EXPECT_EQ(registry.NumSeries(), 1u);
  // Cached handles outlive unregistration; they just stop being exported.
  doomed->Increment();
  EXPECT_EQ(doomed->Value(), 1);
  EXPECT_EQ(registry.RenderPrometheus().find("old"), std::string::npos);
}

TEST(MetricRegistryTest, SumHistogramsMergesTheFamily) {
  MetricRegistry registry;
  registry.GetHistogram("proc_micros", {{"sensor", "a"}})->Observe(10);
  registry.GetHistogram("proc_micros", {{"sensor", "b"}})->Observe(30);
  const Histogram::Snapshot merged = registry.SumHistograms("proc_micros");
  EXPECT_EQ(merged.count, 2);
  EXPECT_EQ(merged.sum, 40);
  EXPECT_EQ(registry.SumHistograms("absent").count, 0);
}

TEST(MetricRegistryTest, ConcurrentGetOrCreateIsSafe) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared_total")->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.SumCounters("shared_total"), kThreads * 1000);
}

// ---------------------------------------------------------------- Exposition

TEST(RenderPrometheusTest, EmitsCountersGaugesAndHistograms) {
  MetricRegistry registry;
  registry
      .GetCounter("gsn_tuples_total", {{"sensor", "room1"}}, "Tuples emitted")
      ->Increment(5);
  registry.GetGauge("gsn_sensors_deployed", {}, "Deployed sensors")->Set(2);
  auto h = registry.GetHistogram("gsn_proc_micros", {}, "Processing time");
  h->Observe(3);
  h->Observe(300);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP gsn_tuples_total Tuples emitted"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gsn_tuples_total counter"), std::string::npos);
  EXPECT_NE(text.find("gsn_tuples_total{sensor=\"room1\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gsn_sensors_deployed gauge"),
            std::string::npos);
  EXPECT_NE(text.find("gsn_sensors_deployed 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsn_proc_micros histogram"), std::string::npos);
  EXPECT_NE(text.find("gsn_proc_micros_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gsn_proc_micros_sum 303"), std::string::npos);
  EXPECT_NE(text.find("gsn_proc_micros_count 2"), std::string::npos);
}

TEST(RenderPrometheusTest, EscapesLabelValues) {
  MetricRegistry registry;
  registry.GetCounter("c_total", {{"path", "a\"b\\c\nd"}})->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("c_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

TEST(RenderPrometheusTest, EscapesHelpText) {
  MetricRegistry registry;
  registry.GetCounter("h_total", {}, "line1\nline2 back\\slash")->Increment();
  const std::string text = registry.RenderPrometheus();
  // Newlines and backslashes must be escaped per the exposition format
  // or the # HELP comment corrupts the scrape.
  EXPECT_NE(text.find("# HELP h_total line1\\nline2 back\\\\slash"),
            std::string::npos)
      << text;
}

// ------------------------------------------------------------ Query manager

/// Clock that jumps forward a fixed step on every read: each span
/// measures exactly `step`, making latency-threshold tests exact.
class SteppingClock : public Clock {
 public:
  explicit SteppingClock(Timestamp step) : step_(step) {}
  Timestamp NowMicros() const override { return now_ += step_; }

 private:
  const Timestamp step_;
  mutable Timestamp now_ = 0;
};

TEST(QueryManagerTelemetryTest, SlowQueryLogCountsOverThreshold) {
  storage::TableManager tables;
  Schema schema;
  schema.AddField("v", DataType::kInt);
  ASSERT_TRUE(tables.CreateTable("t", schema, WindowSpec{}).ok());

  MetricRegistry registry;
  container::QueryManager qm(&tables, &registry);
  SteppingClock stepping(1000);  // every span measures 1000 us
  qm.set_span_clock(&stepping);

  qm.set_slow_query_micros(2000);  // above every span: nothing is slow
  ASSERT_TRUE(qm.Execute("select * from t").ok());
  EXPECT_EQ(qm.stats().slow_queries, 0);

  qm.set_slow_query_micros(500);  // below every span: everything is slow
  ASSERT_TRUE(qm.Execute("select v from t").ok());
  EXPECT_EQ(qm.stats().slow_queries, 1);
  EXPECT_EQ(registry.SumCounters("gsn_slow_queries_total"), 1);
}

TEST(SqlExecutorTelemetryTest, JoinCountersViewTracksRegistry) {
  sql::ResetJoinCounters();
  const sql::JoinCounters before = sql::GetJoinCounters();
  EXPECT_EQ(before.hash_joins, 0);
  EXPECT_EQ(before.nested_loop_joins, 0);
  EXPECT_GE(MetricRegistry::Default()->SumCounters(
                "gsn_sql_nested_loop_joins_total"),
            0);
}

// ------------------------------------------------------------- Integration

constexpr char kTelemetrySensorXml[] =
    "<virtual-sensor name=\"tele-sensor\">"
    "<metadata><predicate key=\"type\" val=\"generator\"/></metadata>"
    "<output-structure>"
    "  <field name=\"seq\" type=\"integer\"/>"
    "  <field name=\"value\" type=\"double\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"src\" storage-size=\"1m\">"
    "    <address wrapper=\"generator\">"
    "      <predicate key=\"interval-ms\" val=\"100\"/>"
    "    </address>"
    "    <query>select seq, value from wrapper</query>"
    "  </stream-source>"
    "  <query>select seq, value from src</query>"
    "</input-stream>"
    "</virtual-sensor>";

class TelemetryIntegrationTest : public ::testing::Test {
 protected:
  TelemetryIntegrationTest() {
    clock_ = std::make_shared<VirtualClock>();
    container::Container::Options options;
    options.node_id = "tele-node";
    options.clock = clock_;
    options.metrics = &registry_;
    container_ = std::make_unique<container::Container>(std::move(options));
  }

  void DeployAndRun() {
    ASSERT_TRUE(container_->Deploy(kTelemetrySensorXml).ok());
    for (int i = 0; i < 10; ++i) {
      clock_->Advance(100 * kMicrosPerMilli);
      ASSERT_TRUE(container_->Tick().ok());
    }
  }

  MetricRegistry registry_;
  std::shared_ptr<VirtualClock> clock_;
  std::unique_ptr<container::Container> container_;
};

TEST_F(TelemetryIntegrationTest, PipelineFillsTheSharedRegistry) {
  DeployAndRun();
  EXPECT_GT(registry_.SumCounters("gsn_sensor_tuples_total"), 0);
  EXPECT_GT(registry_.SumCounters("gsn_sensor_triggers_total"), 0);
  EXPECT_GT(registry_.SumCounters("gsn_wrapper_elements_total"), 0);
  // One-shot queries go through the container's query manager, which
  // shares the same registry.
  ASSERT_TRUE(container_->Query("select * from gsn_sensors").ok());
  EXPECT_EQ(registry_.SumCounters("gsn_queries_total"), 1);
  EXPECT_EQ(registry_.SumCounters("gsn_query_cache_misses_total"), 1);
  // Pipeline spans measure real wall time even under virtual stream
  // time: every trigger was observed.
  const Histogram::Snapshot processing =
      registry_.SumHistograms("gsn_sensor_processing_micros");
  EXPECT_EQ(processing.count,
            registry_.SumCounters("gsn_sensor_triggers_total"));
  // Stats views agree with the registry.
  auto status = container_->GetSensorStatus("tele-sensor");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->stats.produced,
            registry_.SumCounters("gsn_sensor_tuples_total"));
}

TEST_F(TelemetryIntegrationTest, MetricsEndpointReflectsDeployedSensor) {
  DeployAndRun();
  // The join-strategy counters register in the default registry on
  // first use; touch them so the exposition includes the series.
  (void)sql::GetJoinCounters();
  container::WebInterface web(container_.get());
  network::HttpRequest request;
  request.method = "GET";
  request.path = "/api/v1/metrics";
  const network::HttpResponse response = web.Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(response.body.find("gsn_sensor_tuples_total{sensor="
                               "\"tele-sensor\"}"),
            std::string::npos);
  EXPECT_NE(
      response.body.find("gsn_sensor_processing_micros_count{"),
      std::string::npos);
  EXPECT_NE(response.body.find("gsn_sensors_deployed{node=\"tele-node\"} 1"),
            std::string::npos);
  // Process-global series (join-strategy counters) are appended from
  // the default registry.
  EXPECT_NE(response.body.find("gsn_sql_nested_loop_joins_total"),
            std::string::npos);
}

TEST_F(TelemetryIntegrationTest, UndeployRetiresSensorSeries) {
  DeployAndRun();
  ASSERT_GT(registry_.SumCounters("gsn_sensor_tuples_total"), 0);
  ASSERT_TRUE(container_->Undeploy("tele-sensor").ok());
  EXPECT_EQ(registry_.SumCounters("gsn_sensor_tuples_total"), 0);
  container::WebInterface web(container_.get());
  network::HttpRequest request;
  request.method = "GET";
  request.path = "/api/v1/metrics";
  EXPECT_EQ(web.Handle(request).body.find("tele-sensor"), std::string::npos);
}

TEST_F(TelemetryIntegrationTest, ManagementMetricsAndSlowlogCommands) {
  DeployAndRun();
  container::ManagementInterface management(container_.get());
  const std::string metrics = management.Execute("metrics");
  EXPECT_NE(metrics.find("gsn_sensor_tuples_total{sensor=\"tele-sensor\"}"),
            std::string::npos);

  EXPECT_EQ(management.Execute("slowlog"), "slow-query log disabled\n");
  EXPECT_NE(management.Execute("slowlog 2500").find("2500"),
            std::string::npos);
  EXPECT_EQ(container_->query_manager().slow_query_micros(), 2500);
  EXPECT_NE(management.Execute("slowlog x").find("ERROR"), std::string::npos);
  EXPECT_EQ(management.Execute("slowlog 0"), "slow-query log disabled\n");
}

TEST_F(TelemetryIntegrationTest, TracesEndpointAndManagementCommands) {
  container::ManagementInterface management(container_.get());
  EXPECT_NE(management.Execute("trace").find("sample rate: 0"),
            std::string::npos);
  EXPECT_NE(management.Execute("trace 1").find("set to 1"),
            std::string::npos);
  EXPECT_NE(management.Execute("trace 2").find("ERROR"), std::string::npos);
  DeployAndRun();

  container::WebInterface web(container_.get());
  network::HttpRequest request;
  request.method = "GET";
  request.path = "/api/v1/traces";
  const network::HttpResponse response = web.Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"wrapper.produce\""), std::string::npos);
  EXPECT_NE(response.body.find("\"vsensor.pipeline\""), std::string::npos);
  EXPECT_NE(response.body.find("\"node\":\"tele-node\""), std::string::npos);

  // Filtering by one trace id returns only that trace's spans.
  const std::vector<SpanRecord> spans =
      container_->tracer()->store().Snapshot();
  ASSERT_FALSE(spans.empty());
  const std::string id = spans.front().TraceIdHex();
  request.query["id"] = id;
  const network::HttpResponse one = web.Handle(request);
  EXPECT_EQ(one.status, 200);
  EXPECT_NE(one.body.find("\"trace\":\"" + id + "\""), std::string::npos);
  request.query["id"] = "not-a-trace-id";
  EXPECT_EQ(web.Handle(request).status, 400);

  const std::string listing = management.Execute("traces " + id);
  EXPECT_NE(listing.find("\"trace\":\"" + id + "\""), std::string::npos);
  EXPECT_NE(management.Execute("traces nope").find("ERROR"),
            std::string::npos);
}

TEST_F(TelemetryIntegrationTest, LogLinesInsideSpansCarryTheTraceId) {
  container_->tracer()->set_sample_rate(1.0);
  std::vector<std::string> lines;
  Logger::Instance().SetSink([&lines](const std::string& line) {
    lines.push_back(line);
  });
  TraceContext ctx;
  {
    Span span(container_->tracer(), "log.test");
    ctx = span.context();
    GSN_LOG(kWarn, "test") << "inside the span";
  }
  GSN_LOG(kWarn, "test") << "outside the span";
  Logger::Instance().SetSink(nullptr);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("trace=" + ctx.TraceIdHex()), std::string::npos)
      << lines[0];
  EXPECT_EQ(lines[1].find("trace="), std::string::npos) << lines[1];
}

TEST_F(TelemetryIntegrationTest, ExplainAnalyzeOverWebAndManagement) {
  DeployAndRun();
  container::WebInterface web(container_.get());
  network::HttpRequest request;
  request.method = "GET";
  request.path = "/api/v1/explain";
  request.query["sql"] = "select count(*) from \"tele-sensor\"";
  const network::HttpResponse plain = web.Handle(request);
  EXPECT_EQ(plain.status, 200);
  EXPECT_EQ(plain.body.find("rows="), std::string::npos);
  request.query["analyze"] = "1";
  const network::HttpResponse analyzed = web.Handle(request);
  EXPECT_EQ(analyzed.status, 200);
  EXPECT_NE(analyzed.body.find("rows="), std::string::npos) << analyzed.body;

  container::ManagementInterface management(container_.get());
  const std::string plan = management.Execute(
      "explain analyze select count(*) from \"tele-sensor\"");
  EXPECT_NE(plan.find("rows="), std::string::npos) << plan;
}

}  // namespace
}  // namespace gsn::telemetry

// Property tests for the wire codec: random values round-trip exactly,
// and arbitrarily truncated or bit-flipped inputs fail cleanly (error
// status, never a crash or an over-read).

#include <gtest/gtest.h>

#include "gsn/types/codec.h"
#include "gsn/util/rng.h"

namespace gsn {
namespace {

Value RandomValue(Rng* rng, int depth_budget) {
  switch (rng->NextUint64(7)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->NextBool(0.5));
    case 2:
      return Value::Int(static_cast<int64_t>(rng->NextUint64()));
    case 3:
      return Value::Double(rng->NextGaussian() * 1e6);
    case 4: {
      std::string s;
      const size_t len = rng->NextUint64(depth_budget > 0 ? 64 : 8);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->NextUint64(256)));
      }
      return Value::String(std::move(s));
    }
    case 5: {
      std::vector<uint8_t> bytes(rng->NextUint64(128));
      for (auto& b : bytes) b = static_cast<uint8_t>(rng->NextUint64(256));
      return Value::Binary(MakeBlob(std::move(bytes)));
    }
    default:
      return Value::TimestampVal(static_cast<Timestamp>(rng->NextUint64()));
  }
}

StreamElement RandomElement(Rng* rng) {
  StreamElement e;
  e.timed = static_cast<Timestamp>(rng->NextUint64());
  const size_t n = rng->NextUint64(8);
  for (size_t i = 0; i < n; ++i) e.values.push_back(RandomValue(rng, 1));
  return e;
}

class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, ElementsRoundTripExactly) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const StreamElement original = RandomElement(&rng);
    const std::string encoded = Codec::EncodeElementToString(original);
    Result<StreamElement> decoded = Codec::DecodeElementFromString(encoded);
    ASSERT_TRUE(decoded.ok()) << i;
    EXPECT_EQ(decoded->timed, original.timed);
    ASSERT_EQ(decoded->values.size(), original.values.size());
    for (size_t v = 0; v < original.values.size(); ++v) {
      // NaN != NaN under Compare; compare re-encodings instead.
      std::string a, b;
      Codec::EncodeValue(original.values[v], &a);
      Codec::EncodeValue(decoded->values[v], &b);
      EXPECT_EQ(a, b) << "value " << v;
    }
  }
}

TEST_P(CodecPropertyTest, TruncationAlwaysFailsCleanly) {
  Rng rng(GetParam() + 77);
  for (int i = 0; i < 50; ++i) {
    const StreamElement original = RandomElement(&rng);
    const std::string encoded = Codec::EncodeElementToString(original);
    if (encoded.size() <= 1) continue;
    const size_t cut = 1 + rng.NextUint64(encoded.size() - 1);
    Result<StreamElement> decoded = Codec::DecodeElementFromString(
        std::string_view(encoded).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST_P(CodecPropertyTest, BitFlipsNeverCrash) {
  Rng rng(GetParam() + 777);
  for (int i = 0; i < 100; ++i) {
    const StreamElement original = RandomElement(&rng);
    std::string encoded = Codec::EncodeElementToString(original);
    if (encoded.empty()) continue;
    // Flip a few random bits; decoding may succeed (payload bytes) or
    // fail, but must not crash or hang.
    for (int flip = 0; flip < 3; ++flip) {
      encoded[rng.NextUint64(encoded.size())] ^=
          static_cast<char>(1 << rng.NextUint64(8));
    }
    (void)Codec::DecodeElementFromString(encoded);
  }
}

TEST_P(CodecPropertyTest, RelationsRoundTrip) {
  Rng rng(GetParam() + 7777);
  Schema schema;
  schema.AddField("a", DataType::kInt);
  schema.AddField("b", DataType::kString);
  schema.AddField("c", DataType::kBinary);
  Relation rel(schema);
  const size_t rows = rng.NextUint64(30);
  for (size_t r = 0; r < rows; ++r) {
    ASSERT_TRUE(rel.AddRow({RandomValue(&rng, 0), RandomValue(&rng, 0),
                            RandomValue(&rng, 0)})
                    .ok());
  }
  Result<Relation> decoded =
      Codec::DecodeRelationFromString(Codec::EncodeRelationToString(rel));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->schema(), rel.schema());
  EXPECT_EQ(decoded->NumRows(), rel.NumRows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace gsn

// Property tests for window semantics (paper §3 item 4): the
// WindowBuffer must agree with a naive reference model for every
// combination of window kind, window size, and arrival pattern.

#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "gsn/storage/table.h"
#include "gsn/storage/window_buffer.h"
#include "gsn/util/rng.h"

namespace gsn::storage {
namespace {

struct WindowCase {
  WindowSpec::Kind kind;
  int64_t size;        // count, or seconds for time windows
  int64_t max_gap_ms;  // arrival spacing upper bound
  uint64_t seed;
};

class WindowPropertyTest : public ::testing::TestWithParam<WindowCase> {};

StreamElement Elem(Timestamp t, int64_t v) {
  StreamElement e;
  e.timed = t;
  e.values = {Value::Int(v)};
  return e;
}

/// Reference model: keep everything, filter on demand.
class ReferenceWindow {
 public:
  explicit ReferenceWindow(WindowSpec spec) : spec_(spec) {}

  void Add(StreamElement e) { all_.push_back(std::move(e)); }

  std::vector<StreamElement> Snapshot(Timestamp now) const {
    std::vector<StreamElement> out;
    if (spec_.kind == WindowSpec::Kind::kCount) {
      const size_t start =
          all_.size() > static_cast<size_t>(spec_.count)
              ? all_.size() - static_cast<size_t>(spec_.count)
              : 0;
      out.assign(all_.begin() + static_cast<long>(start), all_.end());
      return out;
    }
    for (const StreamElement& e : all_) {
      if (e.timed > now - spec_.duration_micros) out.push_back(e);
    }
    return out;
  }

 private:
  WindowSpec spec_;
  std::vector<StreamElement> all_;
};

TEST_P(WindowPropertyTest, AgreesWithReferenceModel) {
  const WindowCase& c = GetParam();
  WindowSpec spec;
  spec.kind = c.kind;
  if (c.kind == WindowSpec::Kind::kCount) {
    spec.count = c.size;
  } else {
    spec.duration_micros = c.size * kMicrosPerSecond;
  }

  WindowBuffer buffer(spec);
  ReferenceWindow reference(spec);
  Rng rng(c.seed);

  Timestamp t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.NextInt(1, c.max_gap_ms) * kMicrosPerMilli;
    buffer.Add(Elem(t, i));
    reference.Add(Elem(t, i));

    // Probe at a random time at or after the last arrival.
    const Timestamp probe = t + rng.NextInt(0, c.max_gap_ms) * kMicrosPerMilli;
    const auto actual = buffer.Snapshot(probe);
    const auto expected = reference.Snapshot(probe);
    ASSERT_EQ(actual.size(), expected.size())
        << "i=" << i << " t=" << t << " probe=" << probe;
    for (size_t k = 0; k < actual.size(); ++k) {
      EXPECT_EQ(actual[k].timed, expected[k].timed);
      EXPECT_EQ(actual[k].values[0], expected[k].values[0]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowPropertyTest,
    ::testing::Values(
        // Count windows of several sizes and arrival cadences.
        WindowCase{WindowSpec::Kind::kCount, 1, 100, 1},
        WindowCase{WindowSpec::Kind::kCount, 7, 100, 2},
        WindowCase{WindowSpec::Kind::kCount, 64, 10, 3},
        WindowCase{WindowSpec::Kind::kCount, 1000, 500, 4},
        // Time windows: slow and bursty arrivals, short and long spans.
        WindowCase{WindowSpec::Kind::kTime, 1, 100, 5},
        WindowCase{WindowSpec::Kind::kTime, 5, 2000, 6},
        WindowCase{WindowSpec::Kind::kTime, 60, 500, 7},
        WindowCase{WindowSpec::Kind::kTime, 600, 10000, 8}),
    [](const ::testing::TestParamInfo<WindowCase>& info) {
      const WindowCase& c = info.param;
      return std::string(c.kind == WindowSpec::Kind::kCount ? "count"
                                                            : "time") +
             std::to_string(c.size) + "_gap" + std::to_string(c.max_gap_ms) +
             "ms";
    });

/// Table retention must match WindowBuffer semantics for the same spec
/// (they implement the same `<storage size>` contract).
class TableRetentionPropertyTest
    : public ::testing::TestWithParam<WindowCase> {};

TEST_P(TableRetentionPropertyTest, TableMatchesWindowBuffer) {
  const WindowCase& c = GetParam();
  WindowSpec spec;
  spec.kind = c.kind;
  if (c.kind == WindowSpec::Kind::kCount) {
    spec.count = c.size;
  } else {
    spec.duration_micros = c.size * kMicrosPerSecond;
  }
  Schema schema;
  schema.AddField("v", DataType::kInt);
  Table table("t", schema, spec);
  WindowBuffer buffer(spec);
  Rng rng(c.seed * 31);

  Timestamp t = 0;
  for (int i = 0; i < 300; ++i) {
    t += rng.NextInt(1, c.max_gap_ms) * kMicrosPerMilli;
    ASSERT_TRUE(table.Insert(Elem(t, i)).ok());
    buffer.Add(Elem(t, i));
    // Eager-eviction comparison: both structures evicted up to `t`.
    ASSERT_EQ(table.NumRows(), buffer.size()) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TableRetentionPropertyTest,
    ::testing::Values(WindowCase{WindowSpec::Kind::kCount, 5, 100, 11},
                      WindowCase{WindowSpec::Kind::kCount, 128, 50, 12},
                      WindowCase{WindowSpec::Kind::kTime, 2, 300, 13},
                      WindowCase{WindowSpec::Kind::kTime, 30, 5000, 14}),
    [](const ::testing::TestParamInfo<WindowCase>& info) {
      const WindowCase& c = info.param;
      return std::string(c.kind == WindowSpec::Kind::kCount ? "count"
                                                            : "time") +
             std::to_string(c.size) + "_s" + std::to_string(c.seed);
    });

}  // namespace
}  // namespace gsn::storage

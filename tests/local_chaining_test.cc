// Tests for wrapper="local": virtual sensors derived from other
// virtual sensors on the same container — the second half of the
// paper's core abstraction (§2: "a virtual sensor corresponds either to
// a data stream received directly from sensors or to a data stream
// derived from other virtual sensors").

#include <gtest/gtest.h>

#include "gsn/container/container.h"

namespace gsn::container {
namespace {

constexpr char kProducerXml[] =
    "<virtual-sensor name=\"raw-temp\">"
    "<metadata><predicate key=\"type\" val=\"temperature\"/></metadata>"
    "<output-structure>"
    "  <field name=\"temperature\" type=\"integer\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"src\" storage-size=\"1\">"
    "    <address wrapper=\"mote\">"
    "      <predicate key=\"interval-ms\" val=\"100\"/>"
    "    </address>"
    "    <query>select temperature from wrapper</query>"
    "  </stream-source>"
    "  <query>select * from src</query>"
    "</input-stream>"
    "</virtual-sensor>";

/// A smoothing sensor chained onto raw-temp: 2-second moving average.
constexpr char kDerivedXml[] =
    "<virtual-sensor name=\"smooth-temp\">"
    "<output-structure>"
    "  <field name=\"temperature\" type=\"double\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"raw\" storage-size=\"2s\">"
    "    <address wrapper=\"local\">"
    "      <predicate key=\"type\" val=\"temperature\"/>"
    "    </address>"
    "    <query>select avg(temperature) from wrapper</query>"
    "  </stream-source>"
    "  <query>select * from raw</query>"
    "</input-stream>"
    "</virtual-sensor>";

class LocalChainingTest : public ::testing::Test {
 protected:
  LocalChainingTest() {
    clock_ = std::make_shared<VirtualClock>();
    Container::Options options;
    options.node_id = "chain-node";
    options.clock = clock_;
    options.seed = 23;
    container_ = std::make_unique<Container>(std::move(options));
  }

  void Run(Timestamp duration, Timestamp step = 100 * kMicrosPerMilli) {
    for (Timestamp t = 0; t < duration; t += step) {
      clock_->Advance(step);
      ASSERT_TRUE(container_->Tick().ok());
    }
  }

  std::shared_ptr<VirtualClock> clock_;
  std::unique_ptr<Container> container_;
};

TEST_F(LocalChainingTest, DerivedSensorReceivesProducerStream) {
  ASSERT_TRUE(container_->Deploy(kProducerXml).ok());
  auto derived = container_->Deploy(kDerivedXml);
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();

  Run(3 * kMicrosPerSecond);

  auto raw = container_->Query("select count(*) from \"raw-temp\"");
  auto smooth = container_->Query(
      "select count(*), avg(temperature) from \"smooth-temp\"");
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(smooth.ok());
  const int64_t raw_count = raw->rows()[0][0].int_value();
  const int64_t smooth_count = smooth->rows()[0][0].int_value();
  EXPECT_GT(raw_count, 20);
  // Sensors tick in parallel, so several producer elements may drain in
  // one consumer poll — that is ONE trigger and one averaged output
  // (paper §3 trigger semantics). The consumer therefore produces
  // between half and all of the producer's count.
  EXPECT_GE(smooth_count, raw_count / 2);
  EXPECT_LE(smooth_count, raw_count);
  // The smoothed value sits in the same range as the raw temperature.
  const double avg = smooth->rows()[0][1].double_value();
  EXPECT_GT(avg, 0);
  EXPECT_LT(avg, 60);
}

TEST_F(LocalChainingTest, DeployFailsWithoutProducer) {
  auto derived = container_->Deploy(kDerivedXml);
  EXPECT_EQ(derived.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(container_->ListSensors().empty());
}

TEST_F(LocalChainingTest, ProducerUndeployStopsFeedConsumerSurvives) {
  ASSERT_TRUE(container_->Deploy(kProducerXml).ok());
  ASSERT_TRUE(container_->Deploy(kDerivedXml).ok());
  Run(2 * kMicrosPerSecond);
  ASSERT_TRUE(container_->Undeploy("raw-temp").ok());

  auto before = container_->Query("select count(*) from \"smooth-temp\"");
  ASSERT_TRUE(before.ok());
  const int64_t count_before = before->rows()[0][0].int_value();
  ASSERT_GT(count_before, 0);

  // Sensors tick in parallel on their life-cycle pools, so at most one
  // element can still be in the consumer's queue at undeploy time;
  // after that the stream is quiescent.
  Run(2 * kMicrosPerSecond);
  auto after = container_->Query("select count(*) from \"smooth-temp\"");
  ASSERT_TRUE(after.ok());
  const int64_t count_after = after->rows()[0][0].int_value();
  EXPECT_LE(count_after - count_before, 1);
  Run(kMicrosPerSecond);
  auto final_count = container_->Query("select count(*) from \"smooth-temp\"");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->rows()[0][0].int_value(), count_after);
  auto status = container_->GetSensorStatus("smooth-temp");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->stats.errors, 0);
}

TEST_F(LocalChainingTest, ConsumerUndeployDetachesCleanly) {
  ASSERT_TRUE(container_->Deploy(kProducerXml).ok());
  ASSERT_TRUE(container_->Deploy(kDerivedXml).ok());
  Run(kMicrosPerSecond);
  ASSERT_TRUE(container_->Undeploy("smooth-temp").ok());
  // Producer continues alone; pushing into the detached wrapper would
  // be use-after-free, so surviving this run is the assertion.
  Run(2 * kMicrosPerSecond);
  auto raw = container_->Query("select count(*) from \"raw-temp\"");
  ASSERT_TRUE(raw.ok());
  EXPECT_GT(raw->rows()[0][0].int_value(), 20);
}

TEST_F(LocalChainingTest, ThreeStageChain) {
  // raw -> smooth -> alarm: a second derivation on top of the first.
  ASSERT_TRUE(container_->Deploy(kProducerXml).ok());
  ASSERT_TRUE(container_->Deploy(kDerivedXml).ok());
  constexpr char kAlarmXml[] =
      "<virtual-sensor name=\"freeze-alarm\">"
      "<output-structure>"
      "  <field name=\"is_cold\" type=\"boolean\"/>"
      "</output-structure>"
      "<input-stream name=\"in\">"
      "  <stream-source alias=\"smooth\" storage-size=\"1\">"
      "    <address wrapper=\"local\">"
      "      <predicate key=\"name\" val=\"smooth-temp\"/>"
      "    </address>"
      "    <query>select temperature &lt; 5 as is_cold from wrapper</query>"
      "  </stream-source>"
      "  <query>select * from smooth</query>"
      "</input-stream>"
      "</virtual-sensor>";
  auto alarm = container_->Deploy(kAlarmXml);
  ASSERT_TRUE(alarm.ok()) << alarm.status().ToString();

  Run(3 * kMicrosPerSecond);
  auto result = container_->Query(
      "select count(*), sum(cast(is_cold as integer)) from \"freeze-alarm\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rows()[0][0].int_value(), 15);
  // Mote temps hover near 22C: never cold.
  EXPECT_EQ(result->rows()[0][1], Value::Int(0));
}

TEST_F(LocalChainingTest, TopologyShowsChain) {
  ASSERT_TRUE(container_->Deploy(kProducerXml).ok());
  ASSERT_TRUE(container_->Deploy(kDerivedXml).ok());
  bool found_chain_edge = false;
  for (const Container::TopologyEdge& e : container_->Topology()) {
    if (e.to == "smooth-temp") found_chain_edge = true;
  }
  EXPECT_TRUE(found_chain_edge);
}

}  // namespace
}  // namespace gsn::container

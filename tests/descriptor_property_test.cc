// Property tests for the descriptor layer: randomly generated
// VirtualSensorSpecs must survive the ToXml -> ParseDescriptor round
// trip exactly, and the XML parser must handle hostile content in
// attribute values and queries.

#include <gtest/gtest.h>

#include "gsn/util/rng.h"
#include "gsn/vsensor/descriptor_parser.h"
#include "gsn/xml/xml.h"

namespace gsn::vsensor {
namespace {

std::string RandomIdentifier(Rng* rng, const char* prefix) {
  return std::string(prefix) + std::to_string(rng->NextUint64(100000));
}

/// A random but valid spec exercising every descriptor feature.
VirtualSensorSpec RandomSpec(uint64_t seed) {
  Rng rng(seed);
  VirtualSensorSpec spec;
  spec.name = RandomIdentifier(&rng, "sensor-");

  const size_t num_meta = rng.NextUint64(4);
  for (size_t i = 0; i < num_meta; ++i) {
    spec.metadata[RandomIdentifier(&rng, "key")] =
        "value with spaces & specials <" + std::to_string(i) + ">";
  }

  spec.life_cycle.pool_size = static_cast<int>(rng.NextInt(1, 16));
  if (rng.NextBool(0.5)) {
    spec.life_cycle.lifetime_micros =
        rng.NextInt(1, 3600) * kMicrosPerSecond;
  }

  const size_t num_fields = 1 + rng.NextUint64(5);
  static const DataType kTypes[] = {DataType::kBool, DataType::kInt,
                                    DataType::kDouble, DataType::kString,
                                    DataType::kBinary};
  for (size_t i = 0; i < num_fields; ++i) {
    spec.output_structure.AddField("field_" + std::to_string(i),
                                   kTypes[rng.NextUint64(5)]);
  }

  spec.storage.permanent = rng.NextBool(0.5);
  if (rng.NextBool(0.5)) {
    spec.storage.history.kind = WindowSpec::Kind::kCount;
    spec.storage.history.count = rng.NextInt(1, 10000);
  } else {
    spec.storage.history.kind = WindowSpec::Kind::kTime;
    spec.storage.history.duration_micros =
        rng.NextInt(1, 7200) * kMicrosPerSecond;
  }

  const size_t num_streams = 1 + rng.NextUint64(3);
  for (size_t s = 0; s < num_streams; ++s) {
    InputStreamSpec stream;
    stream.name = "stream_" + std::to_string(s);
    if (rng.NextBool(0.3)) stream.max_rate = rng.NextDouble(1.0, 1000.0);
    const size_t num_sources = 1 + rng.NextUint64(3);
    std::string q = "select * from ";
    for (size_t i = 0; i < num_sources; ++i) {
      StreamSourceSpec source;
      source.alias = "src_" + std::to_string(i);
      source.sampling_rate = rng.NextDouble(0.01, 1.0);
      if (rng.NextBool(0.5)) {
        source.window.kind = WindowSpec::Kind::kCount;
        source.window.count = rng.NextInt(1, 1000);
      } else {
        source.window.kind = WindowSpec::Kind::kTime;
        source.window.duration_micros =
            rng.NextInt(1, 3600) * kMicrosPerSecond;
      }
      source.disconnect_buffer = rng.NextInt(0, 100);
      source.address.wrapper = rng.NextBool(0.5) ? "mote" : "generator";
      source.address.predicates["interval-ms"] =
          std::to_string(rng.NextInt(10, 1000));
      source.query = "select avg(field_0) from wrapper where field_0 > " +
                     std::to_string(rng.NextInt(-100, 100));
      stream.sources.push_back(std::move(source));
    }
    stream.query = q + "src_0";
    spec.input_streams.push_back(std::move(stream));
  }
  return spec;
}

class DescriptorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DescriptorPropertyTest, ToXmlParseRoundTripIsExact) {
  const VirtualSensorSpec original = RandomSpec(GetParam());
  ASSERT_TRUE(original.Validate().ok());
  const std::string xml_text = original.ToXml();
  Result<VirtualSensorSpec> reparsed = ParseDescriptor(xml_text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << xml_text;

  EXPECT_EQ(reparsed->name, original.name);
  EXPECT_EQ(reparsed->metadata, original.metadata);
  EXPECT_EQ(reparsed->life_cycle.pool_size, original.life_cycle.pool_size);
  EXPECT_EQ(reparsed->life_cycle.lifetime_micros,
            original.life_cycle.lifetime_micros);
  EXPECT_EQ(reparsed->output_structure, original.output_structure);
  EXPECT_EQ(reparsed->storage.permanent, original.storage.permanent);
  EXPECT_EQ(reparsed->storage.history.kind, original.storage.history.kind);
  ASSERT_EQ(reparsed->input_streams.size(), original.input_streams.size());
  for (size_t s = 0; s < original.input_streams.size(); ++s) {
    const InputStreamSpec& a = original.input_streams[s];
    const InputStreamSpec& b = reparsed->input_streams[s];
    EXPECT_EQ(b.name, a.name);
    ASSERT_EQ(b.sources.size(), a.sources.size());
    for (size_t i = 0; i < a.sources.size(); ++i) {
      EXPECT_EQ(b.sources[i].alias, a.sources[i].alias);
      EXPECT_EQ(b.sources[i].window.kind, a.sources[i].window.kind);
      EXPECT_EQ(b.sources[i].window.count, a.sources[i].window.count);
      EXPECT_EQ(b.sources[i].disconnect_buffer,
                a.sources[i].disconnect_buffer);
      EXPECT_EQ(b.sources[i].address.wrapper, a.sources[i].address.wrapper);
      EXPECT_EQ(b.sources[i].address.predicates,
                a.sources[i].address.predicates);
      EXPECT_EQ(StrTrim(b.sources[i].query), StrTrim(a.sources[i].query));
      EXPECT_NEAR(b.sources[i].sampling_rate, a.sources[i].sampling_rate,
                  1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptorPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ------------------------------------------------------------- XML hostile

TEST(XmlHostileTest, EntitiesInQueriesSurvive) {
  // Queries commonly contain <, >, and & — they must round-trip.
  auto doc = xml::Parse(
      "<q>select * from t where a &lt; 3 &amp;&amp; b &gt; 1</q>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->text(), "select * from t where a < 3 && b > 1");
}

TEST(XmlHostileTest, MalformedInputsFailCleanly) {
  const char* bad[] = {
      "",
      "<",
      "<a",
      "<a><b></a></b>",
      "<a attr=novalue/>",
      "<a attr='x' attr='y'/>",
      "<a>&undefined;</a>",
      "<a>&#xZZ;</a>",
      "<a/><b/>",  // two roots
      "<a>text after root</a> trailing",
  };
  for (const char* input : bad) {
    EXPECT_FALSE(xml::Parse(input).ok()) << input;
  }
}

TEST(XmlHostileTest, RandomBytesNeverCrashParser) {
  Rng rng(2718);
  for (int i = 0; i < 300; ++i) {
    std::string junk;
    const size_t len = rng.NextUint64(200);
    for (size_t j = 0; j < len; ++j) {
      // Bias toward XML-ish characters to reach deeper parser states.
      static const char kChars[] = "<>/=\"'&;ab c\n\t%#x0123!-[]?";
      junk.push_back(kChars[rng.NextUint64(sizeof(kChars) - 1)]);
    }
    (void)xml::Parse(junk);       // must not crash or hang
    (void)ParseDescriptor(junk);  // nor the descriptor layer above it
  }
}

TEST(XmlHostileTest, DeeplyNestedDocument) {
  std::string deep;
  const int depth = 2000;
  for (int i = 0; i < depth; ++i) deep += "<n>";
  for (int i = 0; i < depth; ++i) deep += "</n>";
  auto doc = xml::Parse(deep);
  ASSERT_TRUE(doc.ok());  // recursion depth is bounded by input size
  const xml::Element* e = doc->root();
  int measured = 1;
  while (!e->children().empty()) {
    e = e->children()[0].get();
    ++measured;
  }
  EXPECT_EQ(measured, depth);
}

}  // namespace
}  // namespace gsn::vsensor

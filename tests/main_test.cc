#include <gtest/gtest.h>

#include "gsn/util/logging.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Keep test output readable: only warnings and errors from the
  // middleware itself.
  gsn::Logger::Instance().set_min_level(gsn::LogLevel::kWarn);
  return RUN_ALL_TESTS();
}

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "gsn/util/clock.h"
#include "gsn/util/hash.h"
#include "gsn/util/result.h"
#include "gsn/util/rng.h"
#include "gsn/util/status.h"
#include "gsn/util/strings.h"
#include "gsn/util/thread_pool.h"

namespace gsn {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("sensor xyz");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "sensor xyz");
  EXPECT_EQ(s.ToString(), "NotFound: sensor xyz");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return Status::IoError("disk"); };
  auto outer = [&]() -> Status {
    GSN_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::ParseError("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnExtracts) {
  auto f = []() -> Result<int> { return 10; };
  auto g = [&]() -> Result<int> {
    GSN_ASSIGN_OR_RETURN(int v, f());
    return v * 2;
  };
  EXPECT_EQ(*g(), 20);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto f = []() -> Result<int> { return Status::NotFound("x"); };
  auto g = [&]() -> Result<int> {
    GSN_ASSIGN_OR_RETURN(int v, f());
    return v * 2;
  };
  EXPECT_EQ(g().status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Clock

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.Advance(5 * kMicrosPerSecond);
  EXPECT_EQ(clock.NowMicros(), 5 * kMicrosPerSecond);
  clock.SetTime(kMicrosPerHour);
  EXPECT_EQ(clock.NowMicros(), kMicrosPerHour);
}

TEST(ClockTest, SystemClockMonotoneEnough) {
  SystemClock clock;
  Timestamp a = clock.NowMicros();
  Timestamp b = clock.NowMicros();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 0);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(StringsTest, TrimAndCase) {
  EXPECT_EQ(StrTrim("  hi \n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrToLower("AvG"), "avg");
  EXPECT_EQ(StrToUpper("avg"), "AVG");
  EXPECT_TRUE(StrEqualsIgnoreCase("TEMPERATURE", "temperature"));
  EXPECT_FALSE(StrEqualsIgnoreCase("temp", "temperature"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StrStartsWith("select *", "select"));
  EXPECT_FALSE(StrStartsWith("sel", "select"));
  EXPECT_TRUE(StrEndsWith("foo.xml", ".xml"));
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64(" -5 "), -5);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringsTest, ParseBool) {
  EXPECT_TRUE(*ParseBool("true"));
  EXPECT_TRUE(*ParseBool("YES"));
  EXPECT_FALSE(*ParseBool("0"));
  EXPECT_FALSE(ParseBool("maybe").ok());
}

TEST(StringsTest, ParseDurations) {
  EXPECT_EQ(*ParseDurationMicros("500ms"), 500 * kMicrosPerMilli);
  EXPECT_EQ(*ParseDurationMicros("10s"), 10 * kMicrosPerSecond);
  EXPECT_EQ(*ParseDurationMicros("2m"), 2 * kMicrosPerMinute);
  EXPECT_EQ(*ParseDurationMicros("1h"), kMicrosPerHour);
  EXPECT_EQ(*ParseDurationMicros("250us"), 250);
  EXPECT_EQ(*ParseDurationMicros("3"), 3 * kMicrosPerSecond);
  EXPECT_FALSE(ParseDurationMicros("10 parsecs").ok());
}

TEST(StringsTest, WindowSpecTimeVsCount) {
  // Paper Fig 1: storage-size="1h" is a time window; a bare integer is
  // a count window.
  Result<WindowSpec> time_spec = ParseWindowSpec("1h");
  ASSERT_TRUE(time_spec.ok());
  EXPECT_EQ(time_spec->kind, WindowSpec::Kind::kTime);
  EXPECT_EQ(time_spec->duration_micros, kMicrosPerHour);

  Result<WindowSpec> count_spec = ParseWindowSpec("100");
  ASSERT_TRUE(count_spec.ok());
  EXPECT_EQ(count_spec->kind, WindowSpec::Kind::kCount);
  EXPECT_EQ(count_spec->count, 100);

  EXPECT_FALSE(ParseWindowSpec("0").ok());
  EXPECT_FALSE(ParseWindowSpec("").ok());
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    const double d = rng.NextDouble(0.1, 1.0);
    EXPECT_GE(d, 0.1);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ---------------------------------------------------------------- Hash

TEST(HashTest, Sha256KnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(Sha256::HexDigest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::HexDigest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256::HexDigest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(HashTest, Sha256StreamingMatchesOneShot) {
  Sha256 h;
  h.Update("hello ");
  h.Update("world");
  const auto streamed = h.Finish();
  const auto oneshot = Sha256::Hash("hello world");
  EXPECT_EQ(streamed, oneshot);
}

TEST(HashTest, Sha256LongInput) {
  // One million 'a' characters (standard vector).
  std::string input(1000000, 'a');
  EXPECT_EQ(Sha256::HexDigest(input),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HashTest, HmacSha256Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(HmacSha256Hex(key, "Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HashTest, HmacSha256Rfc4231Case2) {
  EXPECT_EQ(HmacSha256Hex("Jefe", "what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HashTest, HmacLongKeyIsHashedFirst) {
  const std::string key(131, '\xaa');  // longer than the 64-byte block
  EXPECT_EQ(HmacSha256Hex(key,
                          "Test Using Larger Than Block-Size Key - Hash Key "
                          "First"),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HashTest, Fnv1aStable) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(StringsTest, HexEncode) {
  const uint8_t bytes[] = {0x00, 0xff, 0x10};
  EXPECT_EQ(HexEncode(bytes, 3), "00ff10");
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count++; }));
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ParallelismAcrossWorkers) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      // Hold each task long enough that a single worker cannot drain
      // the queue alone before the others wake up.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace gsn

#include <gtest/gtest.h>

#include "gsn/wrappers/tinyos_wrapper.h"

namespace gsn::wrappers {
namespace {

using tinyos::DecodeFrames;
using tinyos::EncodeFrame;
using tinyos::Packet;

Packet SamplePacket(uint8_t am_type = 10) {
  Packet p;
  p.dest = 0xFFFF;
  p.am_type = am_type;
  p.group = 125;
  p.payload = {0x01, 0x00, 0x2A, 0x00};
  return p;
}

// ------------------------------------------------------------- frame codec

TEST(TinyOsFrameTest, EncodeDecodeRoundTrip) {
  std::vector<uint8_t> stream = EncodeFrame(SamplePacket());
  int bad = 0;
  auto packets = DecodeFrames(&stream, &bad);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(bad, 0);
  EXPECT_EQ(packets[0].dest, 0xFFFF);
  EXPECT_EQ(packets[0].am_type, 10);
  EXPECT_EQ(packets[0].group, 125);
  EXPECT_EQ(packets[0].payload, SamplePacket().payload);
}

TEST(TinyOsFrameTest, ByteStuffingOfSyncAndEscapeInPayload) {
  Packet p = SamplePacket();
  p.payload = {0x7E, 0x7D, 0x00, 0x7E};  // the two special bytes
  std::vector<uint8_t> stream = EncodeFrame(p);
  // Inner bytes must not contain a bare sync byte.
  for (size_t i = 1; i + 1 < stream.size(); ++i) {
    EXPECT_NE(stream[i], tinyos::kSyncByte) << "at " << i;
  }
  int bad = 0;
  auto packets = DecodeFrames(&stream, &bad);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, p.payload);
}

TEST(TinyOsFrameTest, MultipleFramesInOneRead) {
  std::vector<uint8_t> stream;
  for (uint8_t t = 1; t <= 3; ++t) {
    const auto frame = EncodeFrame(SamplePacket(t));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  int bad = 0;
  auto packets = DecodeFrames(&stream, &bad);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].am_type, 1);
  EXPECT_EQ(packets[2].am_type, 3);
  EXPECT_EQ(bad, 0);
}

TEST(TinyOsFrameTest, FragmentedFrameWaitsForMoreBytes) {
  const std::vector<uint8_t> frame = EncodeFrame(SamplePacket());
  std::vector<uint8_t> stream(frame.begin(), frame.begin() + 5);
  int bad = 0;
  auto packets = DecodeFrames(&stream, &bad);
  EXPECT_TRUE(packets.empty());
  EXPECT_EQ(bad, 0);
  // Feed the rest; the partial prefix was retained.
  stream.insert(stream.end(), frame.begin() + 5, frame.end());
  packets = DecodeFrames(&stream, &bad);
  ASSERT_EQ(packets.size(), 1u);
}

TEST(TinyOsFrameTest, CorruptedCrcDropped) {
  std::vector<uint8_t> frame = EncodeFrame(SamplePacket());
  frame[3] ^= 0x55;  // damage an inner byte
  // Append a good frame after the bad one.
  const auto good = EncodeFrame(SamplePacket(7));
  frame.insert(frame.end(), good.begin(), good.end());
  int bad = 0;
  auto packets = DecodeFrames(&frame, &bad);
  EXPECT_EQ(bad, 1);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].am_type, 7);
}

TEST(TinyOsFrameTest, GarbageBeforeSyncIgnored) {
  std::vector<uint8_t> stream = {0x00, 0x11, 0x22};
  const auto frame = EncodeFrame(SamplePacket());
  stream.insert(stream.end(), frame.begin(), frame.end());
  int bad = 0;
  auto packets = DecodeFrames(&stream, &bad);
  ASSERT_EQ(packets.size(), 1u);
}

TEST(TinyOsFrameTest, Crc16KnownProperty) {
  // CRC of data+crc (little-endian appended) re-checks to a fixed
  // relationship; spot-check determinism and sensitivity.
  const uint8_t data[] = {1, 2, 3, 4};
  const uint16_t c1 = tinyos::Crc16(data, 4);
  EXPECT_EQ(c1, tinyos::Crc16(data, 4));
  uint8_t tweaked[] = {1, 2, 3, 5};
  EXPECT_NE(c1, tinyos::Crc16(tweaked, 4));
}

// ---------------------------------------------------------------- wrapper

TEST(TinyOsWrapperTest, ProducesParsedReadings) {
  WrapperConfig config;
  config.params = {{"interval-ms", "100"}, {"node-id", "9"}};
  config.seed = 3;
  auto w = TinyOsWrapper::Make(config);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Poll(0).ok());
  auto batch = (*w)->Poll(kMicrosPerSecond);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 10u);
  for (size_t i = 0; i < batch->size(); ++i) {
    const StreamElement& e = (*batch)[i];
    EXPECT_EQ(e.values[0], Value::Int(9));                       // node_id
    EXPECT_EQ(e.values[1], Value::Int(static_cast<int64_t>(i))); // counter
    EXPECT_GE(e.values[3].int_value(), -40);                     // temp
    EXPECT_LE(e.values[3].int_value(), 60);
  }
}

TEST(TinyOsWrapperTest, CorruptFramesAreDroppedNotEmitted) {
  WrapperConfig config;
  config.params = {{"interval-ms", "10"}, {"corrupt-probability", "0.3"}};
  config.seed = 5;
  auto w = TinyOsWrapper::Make(config);
  ASSERT_TRUE(w.ok());
  auto* tos = static_cast<TinyOsWrapper*>(w->get());
  ASSERT_TRUE(tos->Poll(0).ok());
  auto batch = tos->Poll(10 * kMicrosPerSecond);  // 1000 frames
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(tos->bad_frame_count(), 200);
  EXPECT_LT(tos->bad_frame_count(), 400);
  EXPECT_EQ(batch->size() + static_cast<size_t>(tos->bad_frame_count()),
            1000u);
  // Surviving readings are intact (counters strictly increasing).
  for (size_t i = 1; i < batch->size(); ++i) {
    EXPECT_GT((*batch)[i].values[1].int_value(),
              (*batch)[i - 1].values[1].int_value());
  }
}

TEST(TinyOsWrapperTest, RegisteredAsBuiltin) {
  WrapperRegistry registry;
  WrapperRegistry::RegisterBuiltins(&registry);
  EXPECT_TRUE(registry.Has("tinyos"));
}

TEST(TinyOsWrapperTest, RejectsBadParams) {
  WrapperConfig config;
  config.params = {{"node-id", "70000"}};
  EXPECT_FALSE(TinyOsWrapper::Make(config).ok());
  config.params = {{"group", "300"}};
  EXPECT_FALSE(TinyOsWrapper::Make(config).ok());
  config.params = {{"corrupt-probability", "1.5"}};
  EXPECT_FALSE(TinyOsWrapper::Make(config).ok());
}

}  // namespace
}  // namespace gsn::wrappers

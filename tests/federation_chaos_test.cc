// Federation chaos tests: the resilient delivery protocol under
// scripted faults (docs/FEDERATION.md). The headline scenario is the
// one from the issue: 5% loss + a 10-second partition + one peer
// restart, after which every produced element must have been admitted
// exactly once, with the recovery visible in the federation metrics.
//
// Everything runs under virtual time on the in-process simulator, so
// these tests are fully deterministic for a given federation seed.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "gsn/container/federation.h"
#include "gsn/network/chaos_transport.h"
#include "gsn/network/epoll_transport.h"
#include "gsn/network/remote_stream_wrapper.h"
#include "gsn/telemetry/metrics.h"

namespace gsn::container {
namespace {

using gsn::network::ChaosTransport;
using gsn::network::EpollTransport;
using gsn::network::RemoteStreamWrapper;

/// The consumer's view of its remote source, or null at any broken link.
const RemoteStreamWrapper* FindRemote(Container* c, const std::string& name) {
  auto* sensor = c->FindSensor(name);
  if (sensor == nullptr) return nullptr;
  auto* source = sensor->FindSource("in", "src");
  if (source == nullptr) return nullptr;
  return dynamic_cast<const RemoteStreamWrapper*>(&source->wrapper());
}

int64_t CounterValue(Container* c, const std::string& name,
                     const telemetry::Labels& labels) {
  return c->metrics()->GetCounter(name, labels, "")->Value();
}

std::string GeneratorProducerXml(const std::string& name,
                                 const std::string& type) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata><predicate key=\"type\" val=\"" + type + "\"/></metadata>"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "  <field name=\"value\" type=\"double\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"generator\">"
         "      <predicate key=\"interval-ms\" val=\"100\"/>"
         "      <predicate key=\"payload-bytes\" val=\"0\"/>"
         "    </address>"
         "    <query>select seq, value from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

std::string RemoteConsumerXml(const std::string& name, const std::string& type,
                              const std::string& schema_fields,
                              const std::string& extra_predicates = "") {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>" + schema_fields + "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"remote\">"
         "      <predicate key=\"type\" val=\"" + type + "\"/>" +
         extra_predicates +
         "    </address>"
         "    <query>select * from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

/// A finite CSV feed with explicit timestamps: production starts
/// `start` micros after the wrapper's first poll and ends after `rows`
/// elements, so the test can drain to a known final count.
class FederationChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csv_path_ = std::filesystem::temp_directory_path() /
                ("gsn_chaos_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(csv_path_, ec);
  }

  void WriteCsv(int rows, Timestamp start, Timestamp spacing) {
    std::ofstream out(csv_path_);
    out << "timed,seq\n";
    for (int i = 0; i < rows; ++i) {
      out << (start + static_cast<Timestamp>(i) * spacing) << ","
          << (i + 1) << "\n";
    }
  }

  std::string CsvProducerXml(const std::string& name) const {
    return "<virtual-sensor name=\"" + name + "\">"
           "<metadata><predicate key=\"type\" val=\"chaos\"/></metadata>"
           "<output-structure>"
           "  <field name=\"seq\" type=\"integer\"/>"
           "</output-structure>"
           "<input-stream name=\"in\">"
           "  <stream-source alias=\"src\" storage-size=\"1\">"
           "    <address wrapper=\"csv\">"
           "      <predicate key=\"file\" val=\"" + csv_path_.string() +
           "\"/>"
           "      <predicate key=\"interval\" val=\"100ms\"/>"
           "    </address>"
           "    <query>select seq from wrapper</query>"
           "  </stream-source>"
           "  <query>select * from src</query>"
           "</input-stream>"
           "</virtual-sensor>";
  }

  std::filesystem::path csv_path_;
};

// The issue's acceptance scenario. A finite producer feeds a remote
// consumer while the link suffers 5% loss in both directions, a 10s
// partition, and a producer crash/restart. Once faults clear and the
// federation drains, the consumer must have admitted every element
// exactly once, the breaker must have opened and re-closed, and the
// repair work must show up in the federation counters.
TEST_F(FederationChaosTest, ExactlyOnceUnderLossPartitionAndRestart) {
  constexpr int kRows = 120;
  // Production starts 2s after the producer's first poll: by then the
  // consumer below is subscribed, so every element gets a sequence.
  WriteCsv(kRows, 2 * kMicrosPerSecond, 100 * kMicrosPerMilli);

  Federation fed(2026);
  auto producer = fed.AddNode("producer");
  auto consumer = fed.AddNode("consumer");
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE(consumer.ok());
  ASSERT_TRUE((*producer)->Deploy(CsvProducerXml("feed")).ok());
  for (int i = 0; i < 50 && (*consumer)->Discover({{"type", "chaos"}}).empty();
       ++i) {
    ASSERT_TRUE(fed.Step(100 * kMicrosPerMilli).ok());
  }
  ASSERT_FALSE((*consumer)->Discover({{"type", "chaos"}}).empty());
  // A generous NACK budget with a tight backoff cap keeps repair fast
  // and guarantees nothing is abandoned while faults are scripted.
  auto mirror = (*consumer)->Deploy(RemoteConsumerXml(
      "mirror", "chaos", "<field name=\"seq\" type=\"integer\"/>",
      "<predicate key=\"retry-max-attempts\" val=\"64\"/>"
      "<predicate key=\"retry-max-backoff\" val=\"1s\"/>"));
  ASSERT_TRUE(mirror.ok()) << mirror.status().ToString();
  ASSERT_TRUE(fed.RunFor(kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  // Chaos script, relative to "subscription established".
  auto& net = fed.network();
  const Timestamp t0 = fed.clock()->NowMicros();
  net.SetLoss("producer", "consumer", 0.05);
  net.SetLoss("consumer", "producer", 0.05);
  // A one-second asymmetric blackout while live elements are in
  // flight: the arrivals after it land behind a guaranteed gap.
  net.ScheduleAt(t0 + 2 * kMicrosPerSecond, [&net] {
    net.SetLoss("producer", "consumer", 1.0);
  });
  net.ScheduleAt(t0 + 3 * kMicrosPerSecond, [&net] {
    net.SetLoss("producer", "consumer", 0.05);
  });
  net.ScheduleAt(t0 + 4 * kMicrosPerSecond, [&net] {
    net.SetPartitioned("producer", "consumer", true);
  });
  net.ScheduleAt(t0 + 14 * kMicrosPerSecond, [&net] {
    net.SetPartitioned("producer", "consumer", false);
  });
  net.ScheduleAt(t0 + 15 * kMicrosPerSecond,
                 [&net] { net.SetNodeDown("producer", true); });
  net.ScheduleAt(t0 + 17 * kMicrosPerSecond,
                 [&net] { net.SetNodeDown("producer", false); });
  ASSERT_TRUE(fed.RunFor(18 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  // Faults over; let NACK/replay and tips drain the remaining gaps.
  net.SetLoss("producer", "consumer", 0.0);
  net.SetLoss("consumer", "producer", 0.0);
  net.ClearFaults();
  ASSERT_TRUE(fed.RunFor(20 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  // The producer finished its run: all rows are in its local table.
  auto produced = (*producer)->Query("select count(*) from feed");
  ASSERT_TRUE(produced.ok());
  ASSERT_EQ(produced->rows()[0][0], Value::Int(kRows));

  // Exactly-once admission at the consumer's wrapper.
  const RemoteStreamWrapper* remote = FindRemote(*consumer, "mirror");
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->admitted_count(), kRows);
  EXPECT_EQ(remote->abandoned_count(), 0);
  EXPECT_EQ(remote->expected_sequence(), static_cast<uint64_t>(kRows + 1));

  // No duplicates slipped into the pipeline.
  auto got = (*consumer)->Query(
      "select count(*), count(distinct seq) from mirror");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->rows()[0][0], got->rows()[0][1]);

  // The recovery is visible in the federation metrics: gaps were
  // detected, NACK rounds went out, and the producer replayed.
  EXPECT_GT(CounterValue(*consumer, "gsn_federation_gaps_total",
                         {{"node", "consumer"}}),
            0);
  EXPECT_GT(CounterValue(*consumer, "gsn_federation_retries_total",
                         {{"node", "consumer"}, {"kind", "replay"}}),
            0);
  EXPECT_GT(CounterValue(*producer, "gsn_federation_replays_total",
                         {{"node", "producer"}}),
            0);
  // No alternative producer exists, so nothing failed over.
  EXPECT_EQ(CounterValue(*consumer, "gsn_federation_failovers_total",
                         {{"node", "consumer"}}),
            0);

  // The 10s partition opened the consumer's breaker; the post-heal
  // heartbeat closed it again.
  bool saw_producer = false;
  for (const auto& peer : (*consumer)->PeerStatuses()) {
    if (peer.node_id != "producer") continue;
    saw_producer = true;
    EXPECT_EQ(peer.circuit, "closed");
    EXPECT_GE(peer.circuit_opened_total, 1);
  }
  EXPECT_TRUE(saw_producer);

  const auto stats = net.stats();
  EXPECT_GT(stats.dropped, 0);
}

// Two producers advertise the same predicates. When the one the
// consumer bound to dies for good, the opened breaker triggers a
// failover: the wrapper rebinds to the surviving producer and
// admission resumes under a fresh subscription.
TEST_F(FederationChaosTest, FailsOverToAlternateProducer) {
  Federation fed(11);
  auto alpha = fed.AddNode("alpha");
  auto beta = fed.AddNode("beta");
  auto gamma = fed.AddNode("gamma");
  ASSERT_TRUE(alpha.ok());
  ASSERT_TRUE(beta.ok());
  ASSERT_TRUE(gamma.ok());
  ASSERT_TRUE((*alpha)->Deploy(GeneratorProducerXml("gen-a", "dual")).ok());
  ASSERT_TRUE((*gamma)->Deploy(GeneratorProducerXml("gen-c", "dual")).ok());
  for (int i = 0;
       i < 100 && (*beta)->Discover({{"type", "dual"}}).size() < 2; ++i) {
    ASSERT_TRUE(fed.Step(100 * kMicrosPerMilli).ok());
  }
  ASSERT_EQ((*beta)->Discover({{"type", "dual"}}).size(), 2u);

  ASSERT_TRUE((*beta)
                  ->Deploy(RemoteConsumerXml(
                      "mirror", "dual",
                      "<field name=\"seq\" type=\"integer\"/>"
                      "<field name=\"value\" type=\"double\"/>"))
                  .ok());
  ASSERT_TRUE(fed.RunFor(2 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  const RemoteStreamWrapper* remote = FindRemote(*beta, "mirror");
  ASSERT_NE(remote, nullptr);
  const std::string first = remote->peer_node();
  const int64_t admitted_before = remote->admitted_count();
  EXPECT_GT(admitted_before, 0);

  // Kill the bound producer permanently. Silence trips the breaker,
  // and the failover scan finds the other advertisement.
  fed.network().SetNodeDown(first, true);
  ASSERT_TRUE(fed.RunFor(15 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  EXPECT_NE(remote->peer_node(), first);
  EXPECT_GT(remote->admitted_count(), admitted_before);
  EXPECT_EQ(CounterValue(*beta, "gsn_federation_failovers_total",
                         {{"node", "beta"}}),
            1);
}

// The initial subscribe is lost on a fully dead consumer->producer
// link. The retry policy keeps re-sending it (heartbeats still flow
// the other way, so the breaker stays closed), and once the link heals
// the subscription establishes and data flows.
TEST_F(FederationChaosTest, SubscribeRetriesUntilLinkHeals) {
  Federation fed(5);
  auto src = fed.AddNode("src");
  auto sink = fed.AddNode("sink");
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(sink.ok());
  ASSERT_TRUE((*src)->Deploy(GeneratorProducerXml("gen", "sr")).ok());
  for (int i = 0; i < 50 && (*sink)->Discover({{"type", "sr"}}).empty();
       ++i) {
    ASSERT_TRUE(fed.Step(100 * kMicrosPerMilli).ok());
  }
  ASSERT_FALSE((*sink)->Discover({{"type", "sr"}}).empty());

  fed.network().SetLoss("sink", "src", 1.0);
  ASSERT_TRUE((*sink)
                  ->Deploy(RemoteConsumerXml(
                      "mirror", "sr",
                      "<field name=\"seq\" type=\"integer\"/>"
                      "<field name=\"value\" type=\"double\"/>"))
                  .ok());
  ASSERT_TRUE(
      fed.RunFor(2500 * kMicrosPerMilli, 100 * kMicrosPerMilli).ok());

  const RemoteStreamWrapper* remote = FindRemote(*sink, "mirror");
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->admitted_count(), 0);
  EXPECT_GT(CounterValue(*sink, "gsn_federation_retries_total",
                         {{"node", "sink"}, {"kind", "subscribe"}}),
            0);

  fed.network().SetLoss("sink", "src", 0.0);
  ASSERT_TRUE(fed.RunFor(3 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());
  EXPECT_GT(remote->admitted_count(), 0);
}

// A producer process restart loses its (non-durable) subscriber table
// while the restarted node answers heartbeats immediately — so neither
// the circuit breaker nor gap repair can see anything wrong. Only the
// subscription-silence detector can: once an acked subscription stays
// silent past subscription_silence_timeout against a live peer, the
// consumer rebinds it under a fresh id and admission resumes.
TEST_F(FederationChaosTest, ResubscribesAfterProducerRestart) {
  Federation fed(31);
  auto producer = fed.AddNode("producer");
  auto consumer = fed.AddNode("consumer");
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE(consumer.ok());
  ASSERT_TRUE((*producer)->Deploy(GeneratorProducerXml("gen", "rp")).ok());
  for (int i = 0; i < 50 && (*consumer)->Discover({{"type", "rp"}}).empty();
       ++i) {
    ASSERT_TRUE(fed.Step(100 * kMicrosPerMilli).ok());
  }
  ASSERT_TRUE((*consumer)
                  ->Deploy(RemoteConsumerXml(
                      "mirror", "rp",
                      "<field name=\"seq\" type=\"integer\"/>"
                      "<field name=\"value\" type=\"double\"/>"))
                  .ok());

  // 15 virtual seconds of healthy streaming — longer than the silence
  // timeout, so this also pins that a flowing (tip-carrying) stream
  // never trips the detector spuriously.
  ASSERT_TRUE(fed.RunFor(15 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());
  const RemoteStreamWrapper* remote = FindRemote(*consumer, "mirror");
  ASSERT_NE(remote, nullptr);
  const int64_t before = remote->admitted_count();
  EXPECT_GT(before, 0);
  EXPECT_EQ(CounterValue(*consumer, "gsn_federation_resubscribes_total",
                         {{"node", "consumer"}}),
            0);

  // Restart: a brand-new container under the same node id.
  ASSERT_TRUE(fed.RemoveNode("producer").ok());
  auto restarted = fed.AddNode("producer");
  ASSERT_TRUE(restarted.ok());
  ASSERT_TRUE((*restarted)->Deploy(GeneratorProducerXml("gen", "rp")).ok());

  ASSERT_TRUE(fed.RunFor(20 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());
  EXPECT_GT(remote->admitted_count(), before);
  EXPECT_EQ(CounterValue(*consumer, "gsn_federation_resubscribes_total",
                         {{"node", "consumer"}}),
            1);
  // Same producer, fresh sequence space: the restarted stream admits
  // cleanly instead of dedup-ing away below the old cursor.
  EXPECT_EQ(remote->peer_node(), "producer");
  EXPECT_EQ(remote->duplicate_count(), 0);
  EXPECT_EQ(remote->abandoned_count(), 0);
}

// ------------------------------------- the same scenario, both transports

// The exactly-once acceptance scenario should not depend on which
// transport carries the frames: the simulator models faults, the chaos
// decorator injects the same faults into real TCP (docs/CHAOS.md).
// This harness abstracts just enough of the link for one parameterized
// test to drive both.
class ChaosLinkHarness {
 public:
  virtual ~ChaosLinkHarness() = default;
  virtual Container* producer() = 0;
  virtual Container* consumer() = 0;
  /// Advances both nodes by `micros` of virtual time and runs a tick.
  virtual Status Step(Timestamp micros) = 0;
  virtual void SetLoss(double probability) = 0;  // both directions
  virtual void SetPartitioned(bool on) = 0;      // both directions
  virtual void Heal() = 0;                       // clear every fault
  /// Forces a connection reset on the producer link; returns false
  /// where the transport has no connections to reset (the simulator).
  virtual bool ResetLink() = 0;
  /// How many faults the fault plane actually injected so far.
  virtual int64_t faults_injected() = 0;
};

/// Virtual-time federation on the in-process NetworkSimulator.
class SimulatorChaosHarness : public ChaosLinkHarness {
 public:
  SimulatorChaosHarness() : fed_(77) {
    auto producer = fed_.AddNode("producer");
    auto consumer = fed_.AddNode("consumer");
    producer_ = producer.ok() ? *producer : nullptr;
    consumer_ = consumer.ok() ? *consumer : nullptr;
  }

  Container* producer() override { return producer_; }
  Container* consumer() override { return consumer_; }
  Status Step(Timestamp micros) override {
    auto stepped = fed_.Step(micros);
    return stepped.ok() ? Status::OK() : stepped.status();
  }
  void SetLoss(double probability) override {
    fed_.network().SetLoss("producer", "consumer", probability);
    fed_.network().SetLoss("consumer", "producer", probability);
  }
  void SetPartitioned(bool on) override {
    fed_.network().SetPartitioned("producer", "consumer", on);
  }
  void Heal() override {
    fed_.network().SetLoss("producer", "consumer", 0.0);
    fed_.network().SetLoss("consumer", "producer", 0.0);
    fed_.network().ClearFaults();
  }
  bool ResetLink() override { return false; }  // no sockets to reset
  int64_t faults_injected() override {
    return static_cast<int64_t>(fed_.network().stats().dropped);
  }

 private:
  Federation fed_;
  Container* producer_ = nullptr;
  Container* consumer_ = nullptr;
};

/// Real TCP between two EpollTransports, with the consumer's side
/// wrapped in ChaosTransport: in+out rules on the one decorator gate
/// both directions of the producer<->consumer link. Containers run on
/// virtual clocks (protocol timers) while sockets deliver immediately,
/// the same split EpollFederationTest uses.
class EpollChaosHarness : public ChaosLinkHarness {
 public:
  EpollChaosHarness() {
    ok_ = net_producer_.Start().ok() && net_consumer_.Start().ok() &&
          net_producer_.ListenPeer(0).ok() && net_consumer_.ListenPeer(0).ok();
    if (!ok_) return;
    net_producer_.AddPeer("consumer", "127.0.0.1", net_consumer_.peer_port());
    net_consumer_.AddPeer("producer", "127.0.0.1", net_producer_.peer_port());
    ChaosTransport::Options chaos_options;
    chaos_options.seed = 77;
    chaos_ = std::make_unique<ChaosTransport>(&net_consumer_, chaos_options);

    clock_producer_ = std::make_shared<VirtualClock>();
    clock_consumer_ = std::make_shared<VirtualClock>();
    Container::Options producer_options;
    producer_options.node_id = "producer";
    producer_options.clock = clock_producer_;
    producer_options.network = &net_producer_;
    producer_ = std::make_unique<Container>(std::move(producer_options));
    Container::Options consumer_options;
    consumer_options.node_id = "consumer";
    consumer_options.clock = clock_consumer_;
    consumer_options.network = chaos_.get();
    consumer_ = std::make_unique<Container>(std::move(consumer_options));
  }

  ~EpollChaosHarness() override {
    if (consumer_ != nullptr) (void)consumer_->Shutdown();
    if (producer_ != nullptr) (void)producer_->Shutdown();
    consumer_.reset();
    producer_.reset();
    chaos_.reset();
    net_consumer_.Stop();
    net_producer_.Stop();
  }

  Container* producer() override { return ok_ ? producer_.get() : nullptr; }
  Container* consumer() override { return ok_ ? consumer_.get() : nullptr; }

  Status Step(Timestamp micros) override {
    clock_producer_->Advance(micros);
    clock_consumer_->Advance(micros);
    auto ticked = producer_->Tick();
    if (!ticked.ok()) return ticked.status();
    ticked = consumer_->Tick();
    if (!ticked.ok()) return ticked.status();
    // Give the sockets (and the chaos scheduler) a beat of real time.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Status::OK();
  }

  void SetLoss(double probability) override {
    rule_.drop = probability;
    Apply();
  }
  void SetPartitioned(bool on) override {
    rule_.partitioned = on;
    Apply();
  }
  void Heal() override {
    rule_ = ChaosTransport::Rule();
    chaos_->ClearRules();
  }
  bool ResetLink() override { return chaos_->ResetPeer("producer").ok(); }
  int64_t faults_injected() override {
    const ChaosTransport::Counters counters = chaos_->counters();
    return counters.dropped + counters.partitioned + counters.resets;
  }

 private:
  void Apply() {
    chaos_->SetRule("producer", ChaosTransport::Direction::kIn, rule_);
    chaos_->SetRule("producer", ChaosTransport::Direction::kOut, rule_);
  }

  EpollTransport net_producer_;
  EpollTransport net_consumer_;
  std::unique_ptr<ChaosTransport> chaos_;
  std::shared_ptr<VirtualClock> clock_producer_;
  std::shared_ptr<VirtualClock> clock_consumer_;
  std::unique_ptr<Container> producer_;
  std::unique_ptr<Container> consumer_;
  ChaosTransport::Rule rule_;
  bool ok_ = false;
};

enum class ChaosTransportKind { kSimulator, kChaosOverEpoll };

class FederationChaosTransportTest
    : public ::testing::TestWithParam<ChaosTransportKind> {
 protected:
  std::unique_ptr<ChaosLinkHarness> MakeHarness() const {
    if (GetParam() == ChaosTransportKind::kSimulator) {
      return std::make_unique<SimulatorChaosHarness>();
    }
    return std::make_unique<EpollChaosHarness>();
  }
};

// Loss, then a partition, then (where supported) a forced connection
// reset — and after healing, admission must still be dense and
// exactly-once. One scenario, two transports.
TEST_P(FederationChaosTransportTest, ExactlyOnceSurvivesLossPartitionReset) {
  auto harness = MakeHarness();
  Container* producer = harness->producer();
  Container* consumer = harness->consumer();
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(consumer, nullptr);

  ASSERT_TRUE(producer->Deploy(GeneratorProducerXml("gen", "xonce")).ok());
  for (int i = 0; i < 100 && consumer->Discover({{"type", "xonce"}}).empty();
       ++i) {
    ASSERT_TRUE(harness->Step(100 * kMicrosPerMilli).ok());
  }
  ASSERT_FALSE(consumer->Discover({{"type", "xonce"}}).empty());
  auto mirror = consumer->Deploy(RemoteConsumerXml(
      "mirror", "xonce",
      "<field name=\"seq\" type=\"integer\"/>"
      "<field name=\"value\" type=\"double\"/>",
      "<predicate key=\"retry-max-attempts\" val=\"64\"/>"
      "<predicate key=\"retry-max-backoff\" val=\"1s\"/>"));
  ASSERT_TRUE(mirror.ok()) << mirror.status().ToString();

  const auto admitted = [&]() -> int64_t {
    const RemoteStreamWrapper* remote = FindRemote(consumer, "mirror");
    return remote == nullptr ? 0 : remote->admitted_count();
  };
  for (int i = 0; i < 200 && admitted() < 5; ++i) {
    ASSERT_TRUE(harness->Step(100 * kMicrosPerMilli).ok());
  }
  ASSERT_GE(admitted(), 5) << "stream never warmed up";

  // The fault script: 3s of 25% loss, a 2s partition, then (on real
  // sockets) a forced reset under residual loss.
  harness->SetLoss(0.25);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(harness->Step(100 * kMicrosPerMilli).ok());
  }
  harness->SetPartitioned(true);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(harness->Step(100 * kMicrosPerMilli).ok());
  }
  harness->SetPartitioned(false);
  const bool reset_supported = harness->ResetLink();
  EXPECT_EQ(reset_supported,
            GetParam() == ChaosTransportKind::kChaosOverEpoll);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(harness->Step(100 * kMicrosPerMilli).ok());
  }
  harness->Heal();

  // Drain: admission must resume past the fault window and the repair
  // protocol must close every gap (expected == admitted + 1 says the
  // wrapper skipped nothing).
  const int64_t before_drain = admitted();
  const RemoteStreamWrapper* remote = FindRemote(consumer, "mirror");
  ASSERT_NE(remote, nullptr);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(harness->Step(100 * kMicrosPerMilli).ok());
    if (remote->admitted_count() > before_drain + 10 &&
        remote->expected_sequence() ==
            static_cast<uint64_t>(remote->admitted_count()) + 1) {
      break;
    }
  }
  EXPECT_GT(remote->admitted_count(), before_drain);
  EXPECT_EQ(remote->abandoned_count(), 0);
  EXPECT_EQ(remote->expected_sequence(),
            static_cast<uint64_t>(remote->admitted_count()) + 1);

  auto got =
      consumer->Query("select count(*), count(distinct seq) from mirror");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->rows()[0][0], got->rows()[0][1]);

  // The scripted faults really happened: the fault plane counted them.
  EXPECT_GT(harness->faults_injected(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, FederationChaosTransportTest,
    ::testing::Values(ChaosTransportKind::kSimulator,
                      ChaosTransportKind::kChaosOverEpoll),
    [](const ::testing::TestParamInfo<ChaosTransportKind>& info) {
      return info.param == ChaosTransportKind::kSimulator ? "Simulator"
                                                          : "ChaosOverEpoll";
    });

}  // namespace
}  // namespace gsn::container

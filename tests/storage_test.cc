#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "gsn/storage/persistence_log.h"
#include "gsn/storage/table.h"
#include "gsn/storage/window_buffer.h"
#include "gsn/types/codec.h"

namespace gsn::storage {
namespace {

StreamElement Elem(Timestamp t, int v) {
  StreamElement e;
  e.timed = t;
  e.values = {Value::Int(v)};
  return e;
}

// ------------------------------------------------------------ WindowBuffer

TEST(WindowBufferTest, CountWindowKeepsLastN) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kCount;
  spec.count = 3;
  WindowBuffer buf(spec);
  for (int i = 1; i <= 5; ++i) buf.Add(Elem(i * 100, i));
  auto snap = buf.Snapshot(0);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].values[0], Value::Int(3));
  EXPECT_EQ(snap[2].values[0], Value::Int(5));
}

TEST(WindowBufferTest, TimeWindowEvictsOldElements) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.duration_micros = 10 * kMicrosPerSecond;
  WindowBuffer buf(spec);
  buf.Add(Elem(1 * kMicrosPerSecond, 1));
  buf.Add(Elem(5 * kMicrosPerSecond, 2));
  buf.Add(Elem(12 * kMicrosPerSecond, 3));
  // At t=12s, the 10s window covers (2s, 12s]: elements at 5s and 12s.
  auto snap = buf.Snapshot(12 * kMicrosPerSecond);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].values[0], Value::Int(2));
}

TEST(WindowBufferTest, TimeWindowLazyExpiryAtSnapshot) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.duration_micros = kMicrosPerSecond;
  WindowBuffer buf(spec);
  buf.Add(Elem(0, 1));
  // No new arrivals; the element ages out purely by the snapshot time.
  EXPECT_EQ(buf.Snapshot(kMicrosPerSecond / 2).size(), 1u);
  EXPECT_EQ(buf.Snapshot(2 * kMicrosPerSecond).size(), 0u);
}

TEST(WindowBufferTest, BoundaryIsExclusiveAtCutoff) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.duration_micros = 10;
  WindowBuffer buf(spec);
  buf.Add(Elem(100, 1));
  // Window at now=110 covers (100, 110] — the element at exactly
  // now - duration is expired.
  EXPECT_EQ(buf.Snapshot(110).size(), 0u);
  EXPECT_EQ(buf.Snapshot(109).size(), 1u);
}

TEST(WindowBufferTest, OutOfOrderAddInsertsInTimestampOrder) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.duration_micros = 10 * kMicrosPerSecond;
  WindowBuffer buf(spec);
  buf.Add(Elem(11 * kMicrosPerSecond, 1));
  buf.Add(Elem(20 * kMicrosPerSecond, 2));
  // A late arrival is binary-search inserted into its timestamp slot,
  // so the buffer stays sorted: [11s, 12s, 20s].
  buf.Add(Elem(12 * kMicrosPerSecond, 3));
  ASSERT_EQ(buf.size(), 3u);

  // At t=22s the window covers (12s, 22s]: only the 20s element is
  // live. Before ordered insert this layout was adversarial (an expired
  // entry sat after a live one); now the binary-search cut is always
  // valid.
  auto snap = buf.Snapshot(22 * kMicrosPerSecond);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].values[0], Value::Int(2));
  auto rows = buf.SnapshotRows(22 * kMicrosPerSecond);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ((*rows[0])[1], Value::Int(2));

  // A much newer arrival expires everything older on admission.
  buf.Add(Elem(40 * kMicrosPerSecond, 4));
  ASSERT_EQ(buf.size(), 1u);
  buf.Add(Elem(41 * kMicrosPerSecond, 5));
  rows = buf.SnapshotRows(41 * kMicrosPerSecond);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ((*rows[0])[1], Value::Int(4));
  EXPECT_EQ((*rows[1])[1], Value::Int(5));
}

TEST(WindowBufferTest, OutOfOrderAddKeepsSnapshotsSortedAndStable) {
  // Regression for the ordered-insert Add: heavy out-of-order arrival
  // must leave every snapshot non-decreasing in timed, with equal
  // timestamps preserving arrival order (stable insert).
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.duration_micros = 1000 * kMicrosPerSecond;
  WindowBuffer buf(spec);
  const std::vector<Timestamp> arrivals = {50, 10, 40, 10, 30, 20, 40,
                                           10, 35, 5,  45, 20, 50};
  for (size_t i = 0; i < arrivals.size(); ++i) {
    buf.Add(Elem(arrivals[i] * kMicrosPerSecond, static_cast<int>(i)));
  }
  auto rows = buf.SnapshotRows(60 * kMicrosPerSecond);
  ASSERT_EQ(rows.size(), arrivals.size());
  for (size_t i = 1; i < rows.size(); ++i) {
    const Timestamp prev = (*rows[i - 1])[0].timestamp_value();
    const Timestamp cur = (*rows[i])[0].timestamp_value();
    EXPECT_LE(prev, cur) << "snapshot out of order at " << i;
    if (prev == cur) {
      // Ties keep arrival order: the payload (arrival index) ascends.
      EXPECT_LT((*rows[i - 1])[1].int_value(), (*rows[i])[1].int_value());
    }
  }
}

TEST(WindowBufferTest, ClearEmpties) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kCount;
  spec.count = 10;
  WindowBuffer buf(spec);
  buf.Add(Elem(1, 1));
  EXPECT_EQ(buf.size(), 1u);
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
}

// ------------------------------------------------------------------ Table

WindowSpec Count(int64_t n) {
  WindowSpec s;
  s.kind = WindowSpec::Kind::kCount;
  s.count = n;
  return s;
}

WindowSpec Time(Timestamp d) {
  WindowSpec s;
  s.kind = WindowSpec::Kind::kTime;
  s.duration_micros = d;
  return s;
}

Schema OneIntSchema() {
  Schema s;
  s.AddField("v", DataType::kInt);
  return s;
}

TEST(TableTest, InsertAndScanAddsTimedColumn) {
  Table t("s1", OneIntSchema(), Count(10));
  ASSERT_TRUE(t.Insert(Elem(123, 7)).ok());
  Relation rel = t.Scan();
  ASSERT_EQ(rel.NumRows(), 1u);
  EXPECT_EQ(rel.schema().field(0).name, "timed");
  EXPECT_EQ(rel.rows()[0][0].timestamp_value(), 123);
  EXPECT_EQ(rel.rows()[0][1], Value::Int(7));
}

TEST(TableTest, ArityMismatchRejected) {
  Table t("s1", OneIntSchema(), Count(10));
  StreamElement e;
  e.values = {Value::Int(1), Value::Int(2)};
  EXPECT_EQ(t.Insert(e).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, CountRetention) {
  Table t("s1", OneIntSchema(), Count(2));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(t.Insert(Elem(i, i)).ok());
  EXPECT_EQ(t.NumRows(), 2u);
  Relation rel = t.Scan();
  EXPECT_EQ(rel.rows()[0][1], Value::Int(3));
}

TEST(TableTest, TimeRetention) {
  Table t("s1", OneIntSchema(), Time(10 * kMicrosPerSecond));
  ASSERT_TRUE(t.Insert(Elem(0, 1)).ok());
  ASSERT_TRUE(t.Insert(Elem(5 * kMicrosPerSecond, 2)).ok());
  ASSERT_TRUE(t.Insert(Elem(20 * kMicrosPerSecond, 3)).ok());
  EXPECT_EQ(t.NumRows(), 1u);  // inserts at 20s evicted 0s and 5s
}

TEST(TableTest, ScanWithNowAppliesTimeWindow) {
  Table t("s1", OneIntSchema(), Time(10 * kMicrosPerSecond));
  ASSERT_TRUE(t.Insert(Elem(kMicrosPerSecond, 1)).ok());
  EXPECT_EQ(t.Scan(5 * kMicrosPerSecond).NumRows(), 1u);
  EXPECT_EQ(t.Scan(30 * kMicrosPerSecond).NumRows(), 0u);
}

TEST(TableTest, ByteAccounting) {
  Table t("s1", OneIntSchema(), Count(100));
  EXPECT_EQ(t.ApproximateBytes(), 0u);
  ASSERT_TRUE(t.Insert(Elem(1, 1)).ok());
  EXPECT_GT(t.ApproximateBytes(), 0u);
  t.Clear();
  EXPECT_EQ(t.ApproximateBytes(), 0u);
}

// ----------------------------------------------------------- TableManager

TEST(TableManagerTest, CreateGetDrop) {
  TableManager mgr;
  ASSERT_TRUE(mgr.CreateTable("temps", OneIntSchema(), Count(10)).ok());
  EXPECT_EQ(mgr.CreateTable("TEMPS", OneIntSchema(), Count(10)).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(mgr.GetTableHandle("Temps").ok());
  EXPECT_EQ(mgr.ListTables().size(), 1u);
  ASSERT_TRUE(mgr.DropTable("temps").ok());
  EXPECT_EQ(mgr.DropTable("temps").code(), StatusCode::kNotFound);
}

TEST(TableManagerTest, ResolvesForSqlExecutor) {
  TableManager mgr;
  auto table = mgr.CreateTable("temps", OneIntSchema(), Count(10));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(Elem(100, 42)).ok());
  ASSERT_TRUE((*table)->Insert(Elem(200, 58)).ok());

  sql::Executor exec(&mgr);
  auto rel = exec.Query("select avg(v) from temps");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_DOUBLE_EQ(rel->rows()[0][0].double_value(), 50.0);
}

// ------------------------------------------------------------------ Codec

TEST(CodecTest, ValueRoundTripAllTypes) {
  std::vector<Value> values = {
      Value::Null(),
      Value::Bool(true),
      Value::Int(-42),
      Value::Double(3.25),
      Value::String("hello"),
      Value::Binary(MakeBlob(std::string_view("\x00\x01\xff", 3))),
      Value::TimestampVal(123456789),
  };
  for (const Value& v : values) {
    std::string buf;
    Codec::EncodeValue(v, &buf);
    size_t pos = 0;
    auto decoded = Codec::DecodeValue(buf, &pos);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(pos, buf.size());
    EXPECT_EQ(*decoded, v) << v.ToString();
    // Type tags must survive, not just ordering equality.
    EXPECT_EQ(decoded->is_timestamp(), v.is_timestamp());
    EXPECT_EQ(decoded->is_binary(), v.is_binary());
  }
}

TEST(CodecTest, ElementRoundTrip) {
  StreamElement e;
  e.timed = 987654;
  e.values = {Value::Int(1), Value::String("x"), Value::Null()};
  auto decoded = Codec::DecodeElementFromString(Codec::EncodeElementToString(e));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->timed, e.timed);
  ASSERT_EQ(decoded->values.size(), 3u);
  EXPECT_EQ(decoded->values[1], Value::String("x"));
}

TEST(CodecTest, RelationRoundTrip) {
  Schema s;
  s.AddField("a", DataType::kInt);
  s.AddField("b", DataType::kString);
  Relation r(s);
  ASSERT_TRUE(r.AddRow({Value::Int(1), Value::String("one")}).ok());
  ASSERT_TRUE(r.AddRow({Value::Int(2), Value::Null()}).ok());
  auto decoded =
      Codec::DecodeRelationFromString(Codec::EncodeRelationToString(r));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->schema(), r.schema());
  ASSERT_EQ(decoded->NumRows(), 2u);
  EXPECT_EQ(decoded->rows()[0][1], Value::String("one"));
  EXPECT_TRUE(decoded->rows()[1][1].is_null());
}

TEST(CodecTest, TruncatedInputRejected) {
  StreamElement e;
  e.timed = 1;
  e.values = {Value::String("payload")};
  std::string buf = Codec::EncodeElementToString(e);
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    EXPECT_FALSE(
        Codec::DecodeElementFromString(std::string_view(buf).substr(0, cut))
            .ok())
        << "cut at " << cut;
  }
}

TEST(CodecTest, TrailingBytesRejected) {
  StreamElement e;
  e.timed = 1;
  e.values = {};
  std::string buf = Codec::EncodeElementToString(e) + "x";
  EXPECT_FALSE(Codec::DecodeElementFromString(buf).ok());
}

// --------------------------------------------------------- PersistenceLog

class PersistenceLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("gsn_log_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(PersistenceLogTest, AppendAndRecover) {
  {
    auto log = PersistenceLog::Open(path_.string());
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*log)->Append(Elem(i * 100, i)).ok());
    }
    EXPECT_EQ((*log)->appended_count(), 10u);
  }
  bool truncated = false;
  auto recovered = PersistenceLog::Recover(path_.string(), &truncated);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(recovered->size(), 10u);
  EXPECT_EQ((*recovered)[7].values[0], Value::Int(7));
  EXPECT_EQ((*recovered)[7].timed, 700);
}

TEST_F(PersistenceLogTest, MissingFileIsEmptyHistory) {
  bool truncated = true;
  auto recovered = PersistenceLog::Recover(path_.string(), &truncated);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->empty());
  EXPECT_FALSE(truncated);
}

TEST_F(PersistenceLogTest, TornTailWriteIsDroppedOnRecovery) {
  {
    auto log = PersistenceLog::Open(path_.string());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(Elem(1, 1)).ok());
    ASSERT_TRUE((*log)->Append(Elem(2, 2)).ok());
  }
  // Simulate a crash mid-write: chop the last few bytes.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 3);

  bool truncated = false;
  auto recovered = PersistenceLog::Recover(path_.string(), &truncated);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ((*recovered)[0].values[0], Value::Int(1));
}

TEST_F(PersistenceLogTest, CorruptPayloadDetectedByCrc) {
  {
    auto log = PersistenceLog::Open(path_.string());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(Elem(1, 1)).ok());
  }
  // Flip a byte in the middle of the file.
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8, SEEK_SET);
  std::fputc(0x5A, f);
  std::fclose(f);

  bool truncated = false;
  auto recovered = PersistenceLog::Recover(path_.string(), &truncated);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(recovered->empty());
}

TEST_F(PersistenceLogTest, OpenTruncatesTornTailSoLaterAppendsSurvive) {
  // Regression: Open used to append blindly after a torn record, so
  // every post-crash append sat behind the corrupt bytes and every
  // future Recover stopped before them — durable writes silently lost.
  {
    auto log = PersistenceLog::Open(path_.string());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(Elem(1, 1)).ok());
    ASSERT_TRUE((*log)->Append(Elem(2, 2)).ok());
  }
  // Crash mid-write: hand-corrupt the tail by chopping bytes.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 3);

  // Reopen (the post-crash boot) and append new history.
  {
    auto log = PersistenceLog::Open(path_.string());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(Elem(3, 3)).ok());
  }

  bool truncated = true;
  auto recovered = PersistenceLog::Recover(path_.string(), &truncated);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(truncated);  // Open repaired the tail
  ASSERT_EQ(recovered->size(), 2u);
  EXPECT_EQ((*recovered)[0].values[0], Value::Int(1));
  EXPECT_EQ((*recovered)[1].values[0], Value::Int(3));  // append visible
}

TEST_F(PersistenceLogTest, RewriteCompactsToGivenElements) {
  {
    auto log = PersistenceLog::Open(path_.string());
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*log)->Append(Elem(i, i)).ok());
    }
  }
  const auto before = std::filesystem::file_size(path_);
  // Checkpoint keeps only the retention window (here: the last 2).
  auto compacted =
      PersistenceLog::Rewrite(path_.string(), {Elem(98, 98), Elem(99, 99)});
  ASSERT_TRUE(compacted.ok());
  EXPECT_LT(std::filesystem::file_size(path_), before);
  // The handle returned by Rewrite stays appendable.
  ASSERT_TRUE((*compacted)->Append(Elem(100, 100)).ok());
  auto recovered = PersistenceLog::Recover(path_.string(), nullptr);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->size(), 3u);
  EXPECT_EQ((*recovered)[0].values[0], Value::Int(98));
  EXPECT_EQ((*recovered)[2].values[0], Value::Int(100));
}

TEST_F(PersistenceLogTest, ReopenAppends) {
  {
    auto log = PersistenceLog::Open(path_.string());
    ASSERT_TRUE((*log)->Append(Elem(1, 1)).ok());
  }
  {
    auto log = PersistenceLog::Open(path_.string());
    ASSERT_TRUE((*log)->Append(Elem(2, 2)).ok());
  }
  auto recovered = PersistenceLog::Recover(path_.string(), nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), 2u);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

}  // namespace
}  // namespace gsn::storage

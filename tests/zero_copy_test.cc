// Tests for the zero-copy row sharing introduced with the shared-row
// Relation: copy-on-write semantics, snapshot sharing in WindowBuffer
// and Table, and the binary-search time-window path (sorted and
// out-of-order arrivals, exact-boundary elements).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gsn/storage/table.h"
#include "gsn/storage/window_buffer.h"
#include "gsn/types/schema.h"

namespace gsn {
namespace {

StreamElement Elem(Timestamp t, int64_t seq, double value) {
  StreamElement e;
  e.timed = t;
  e.values = {Value::Int(seq), Value::Double(value)};
  return e;
}

Schema ElementSchema() {
  Schema s;
  s.AddField("seq", DataType::kInt);
  s.AddField("value", DataType::kDouble);
  return s;
}

// ------------------------------------------------------------- Relation

TEST(RelationSharing, CopyIsShallow) {
  Relation a(ElementSchema().WithTimedField());
  ASSERT_TRUE(a.AddRow({Value::TimestampVal(1), Value::Int(7),
                        Value::Double(0.5)}).ok());

  Relation b = a;
  // The copy shares the underlying row allocation: same address, and
  // the shared_ptr now counts both owners.
  EXPECT_EQ(&a.row(0), &b.row(0));
  EXPECT_EQ(a.shared_row(0).use_count(), 2);
}

TEST(RelationSharing, MutableRowClonesOnlyWhenShared) {
  Relation a(ElementSchema().WithTimedField());
  ASSERT_TRUE(a.AddRow({Value::TimestampVal(1), Value::Int(7),
                        Value::Double(0.5)}).ok());

  // Sole owner: mutation happens in place, no clone.
  const Relation::Row* before = &a.row(0);
  a.MutableRow(0)[1] = Value::Int(8);
  EXPECT_EQ(&a.row(0), before);
  EXPECT_EQ(a.row(0)[1], Value::Int(8));

  // Shared with a copy: mutation must clone (copy-on-write) and leave
  // the other owner untouched.
  Relation b = a;
  a.MutableRow(0)[1] = Value::Int(9);
  EXPECT_NE(&a.row(0), &b.row(0));
  EXPECT_EQ(a.row(0)[1], Value::Int(9));
  EXPECT_EQ(b.row(0)[1], Value::Int(8));
}

// --------------------------------------------------------- WindowBuffer

TEST(WindowBufferSharing, SnapshotIsRefCountBump) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kCount;
  spec.count = 8;
  storage::WindowBuffer buffer(spec);
  for (int i = 0; i < 4; ++i) {
    buffer.Add(Elem(i * kMicrosPerMilli, i, i * 0.5));
  }

  Relation::RowList first = buffer.SnapshotRows(4 * kMicrosPerMilli);
  Relation::RowList second = buffer.SnapshotRows(4 * kMicrosPerMilli);
  ASSERT_EQ(first.size(), 4u);
  ASSERT_EQ(second.size(), 4u);
  for (size_t i = 0; i < first.size(); ++i) {
    // Both snapshots point at the same buffered allocation.
    EXPECT_EQ(first[i].get(), second[i].get());
  }

  Relation rel = buffer.SnapshotRelation(4 * kMicrosPerMilli,
                                         ElementSchema());
  ASSERT_EQ(rel.NumRows(), 4u);
  EXPECT_EQ(rel.schema().size(), 3u);  // timed + seq + value
  EXPECT_EQ(rel.shared_row(0).get(), first[0].get());
  // Row layout is [timed, values...].
  EXPECT_EQ(rel.row(2)[0], Value::TimestampVal(2 * kMicrosPerMilli));
  EXPECT_EQ(rel.row(2)[1], Value::Int(2));
}

TEST(WindowBufferTime, ElementExactlyAtCutoffIsExcluded) {
  // Time windows retain `timed > now - duration`: an element exactly at
  // the boundary is out. This exercises the binary-search path (all
  // adds in order).
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.duration_micros = 100;
  storage::WindowBuffer buffer(spec);
  buffer.Add(Elem(1000, 0, 0.0));
  buffer.Add(Elem(1040, 1, 0.1));
  buffer.Add(Elem(1080, 2, 0.2));

  // now = 1140 => cutoff 1040: the element at exactly 1040 is excluded.
  Relation::RowList rows = buffer.SnapshotRows(1140);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ((*rows[0])[1], Value::Int(2));

  // One microsecond earlier the boundary element is still in.
  rows = buffer.SnapshotRows(1139);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ((*rows[0])[1], Value::Int(1));
  EXPECT_EQ((*rows[1])[1], Value::Int(2));
}

TEST(WindowBufferTime, OutOfOrderMatchesLinearReference) {
  // Out-of-order arrivals are binary-search inserted into their
  // timestamp slots; the snapshot must still match a brute-force filter
  // of everything added, and must agree with a buffer fed the same
  // elements already sorted.
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.duration_micros = 500;
  storage::WindowBuffer unsorted(spec);
  storage::WindowBuffer sorted(spec);

  const std::vector<Timestamp> shuffled = {1200, 1000, 1350, 1100, 1400};
  std::vector<Timestamp> ordered = shuffled;
  std::sort(ordered.begin(), ordered.end());
  for (Timestamp t : shuffled) unsorted.Add(Elem(t, t, 0.0));
  for (Timestamp t : ordered) sorted.Add(Elem(t, t, 0.0));

  for (Timestamp now : {1400, 1501, 1600, 1700, 1850, 1901}) {
    const Timestamp cutoff = now - spec.duration_micros;
    std::vector<Timestamp> expected;
    for (Timestamp t : ordered) {
      if (t > cutoff) expected.push_back(t);
    }
    Relation::RowList a = unsorted.SnapshotRows(now);
    Relation::RowList b = sorted.SnapshotRows(now);
    ASSERT_EQ(a.size(), expected.size()) << "now=" << now;
    ASSERT_EQ(b.size(), expected.size()) << "now=" << now;
    // Ordered insert means the shuffled buffer's snapshot is already
    // timestamp-sorted — identical to the pre-sorted buffer's.
    std::vector<Timestamp> got_a;
    for (const Relation::SharedRow& row : a) {
      got_a.push_back((*row)[0].timestamp_value());
    }
    EXPECT_EQ(got_a, expected) << "now=" << now;
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ((*b[i])[0].timestamp_value(), expected[i]) << "now=" << now;
    }
  }
}

TEST(WindowBufferTime, SortedPathRestoredAfterDrain) {
  // Boundary semantics survive an out-of-order insert followed by a
  // full drain: the buffer is sorted throughout, so the binary-search
  // cut stays exact at every step.
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.duration_micros = 100;
  storage::WindowBuffer buffer(spec);
  buffer.Add(Elem(1000, 0, 0.0));
  buffer.Add(Elem(990, 1, 0.0));  // out of order
  EXPECT_EQ(buffer.SnapshotRows(1089).size(), 2u);
  EXPECT_EQ(buffer.SnapshotRows(1090).size(), 1u);  // 990 at the cutoff

  // Adding at 1200 evicts everything <= 1100, draining the buffer.
  buffer.Add(Elem(1200, 2, 0.0));
  EXPECT_EQ(buffer.size(), 1u);
  buffer.Add(Elem(1240, 3, 0.0));
  Relation::RowList rows = buffer.SnapshotRows(1300);  // cutoff 1200
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ((*rows[0])[1], Value::Int(3));
}

// ---------------------------------------------------------------- Table

TEST(TableSharing, ScanSharesRowsAndHonorsBoundary) {
  storage::TableManager tables;
  WindowSpec retention;
  retention.kind = WindowSpec::Kind::kTime;
  retention.duration_micros = 1000;
  auto table = tables.CreateTable("t", ElementSchema(), retention);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*table)->Insert(Elem(1000 + i * 100, i, i * 0.1)).ok());
  }

  Relation all = (*table)->Scan();
  Relation again = (*table)->Scan();
  ASSERT_EQ(all.NumRows(), 5u);
  EXPECT_EQ(all.shared_row(0).get(), again.shared_row(0).get());

  // Time-bounded scan: cutoff is exclusive, like the window buffer.
  Relation bounded = (*table)->Scan(2200);  // cutoff 1200
  ASSERT_EQ(bounded.NumRows(), 2u);
  EXPECT_EQ(bounded.row(0)[1], Value::Int(3));
  EXPECT_EQ(bounded.row(1)[1], Value::Int(4));
}

TEST(TableSharing, InsertBatchMatchesInsertLoop) {
  storage::TableManager tables;
  WindowSpec retention;
  retention.kind = WindowSpec::Kind::kCount;
  retention.count = 100;
  auto one = tables.CreateTable("one", ElementSchema(), retention);
  auto batch = tables.CreateTable("batch", ElementSchema(), retention);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(batch.ok());

  std::vector<StreamElement> elements;
  for (int i = 0; i < 10; ++i) {
    elements.push_back(Elem(i * kMicrosPerMilli, i, i * 0.25));
  }
  for (const StreamElement& e : elements) {
    ASSERT_TRUE((*one)->Insert(e).ok());
  }
  ASSERT_TRUE((*batch)->InsertBatch(elements).ok());

  Relation a = (*one)->Scan();
  Relation b = (*batch)->Scan();
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_EQ(a.row(i), b.row(i));
  }
  EXPECT_EQ((*one)->ApproximateBytes(), (*batch)->ApproximateBytes());
}

}  // namespace
}  // namespace gsn

// Tests for wrapper="system" (docs/TELEMETRY.md): virtual sensors
// whose device is the hosting container itself. The scrape is a
// cached snapshot read, so self-monitoring must neither deadlock the
// tick it runs inside nor amplify itself; its output is an ordinary
// stream, so windowed SQL, notifications, and wrapper="remote"
// federation all apply to the middleware's own health.

#include <gtest/gtest.h>

#include <string>

#include "gsn/container/container.h"
#include "gsn/container/federation.h"

namespace gsn::container {
namespace {

/// Self-monitor: scrapes the hosting container every 100ms and keeps
/// the freshest sample per trigger.
std::string MonitorDescriptor(const std::string& name,
                              const std::string& scope) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata>"
         "  <predicate key=\"type\" val=\"telemetry\"/>"
         "  <predicate key=\"scope\" val=\"" + scope + "\"/>"
         "</metadata>"
         "<output-structure>"
         "  <field name=\"sensors\" type=\"integer\"/>"
         "  <field name=\"queue_depth\" type=\"integer\"/>"
         "  <field name=\"shed_total\" type=\"integer\"/>"
         "  <field name=\"tuples_total\" type=\"integer\"/>"
         "  <field name=\"tick_p95_ms\" type=\"double\"/>"
         "  <field name=\"lock_wait_share\" type=\"double\"/>"
         "</output-structure>"
         "<input-stream name=\"telemetry\">"
         "  <stream-source alias=\"sys\" storage-size=\"10s\">"
         "    <address wrapper=\"system\">"
         "      <predicate key=\"interval\" val=\"100ms\"/>"
         "    </address>"
         "    <query>select sensors, queue_depth, shed_total, tuples_total,"
         " tick_p95_ms, lock_wait_share from wrapper"
         " order by timed desc limit 1</query>"
         "  </stream-source>"
         "  <query>select sensors, queue_depth, shed_total, tuples_total,"
         " tick_p95_ms, lock_wait_share from sys</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

/// A deliberately overloaded ingest sensor: the mote produces an
/// element per millisecond into a 4-slot admission queue, so every
/// 100ms tick sheds most of the batch.
constexpr char kOverloadedXml[] =
    "<virtual-sensor name=\"firehose\">"
    "<output-structure>"
    "  <field name=\"temperature\" type=\"integer\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"src\" storage-size=\"1m\" "
    "      queue-capacity=\"4\">"
    "    <address wrapper=\"mote\">"
    "      <predicate key=\"interval-ms\" val=\"1\"/>"
    "    </address>"
    "    <query>select avg(temperature) from wrapper</query>"
    "  </stream-source>"
    "  <query>select * from src</query>"
    "</input-stream>"
    "</virtual-sensor>";

/// Alerting sensor chained locally onto the monitor by its metadata
/// predicates (the examples/self_monitor_alert.xml shape).
constexpr char kAlertXml[] =
    "<virtual-sensor name=\"mon-alert\">"
    "<output-structure>"
    "  <field name=\"max_queue\" type=\"integer\"/>"
    "  <field name=\"sheds\" type=\"integer\"/>"
    "</output-structure>"
    "<input-stream name=\"alert\">"
    "  <stream-source alias=\"mon\" storage-size=\"10s\">"
    "    <address wrapper=\"local\">"
    "      <predicate key=\"type\" val=\"telemetry\"/>"
    "      <predicate key=\"scope\" val=\"container\"/>"
    "    </address>"
    "    <query>select max(queue_depth) as max_queue,"
    " max(shed_total) as sheds from wrapper</query>"
    "  </stream-source>"
    "  <query>select max_queue, sheds from mon</query>"
    "</input-stream>"
    "</virtual-sensor>";

class TelemetrySystemWrapperTest : public ::testing::Test {
 protected:
  TelemetrySystemWrapperTest() {
    clock_ = std::make_shared<VirtualClock>();
    Container::Options options;
    options.node_id = "self-node";
    options.clock = clock_;
    options.seed = 17;
    container_ = std::make_unique<Container>(std::move(options));
  }

  void Run(Timestamp duration, Timestamp step = 100 * kMicrosPerMilli) {
    for (Timestamp t = 0; t < duration; t += step) {
      clock_->Advance(step);
      ASSERT_TRUE(container_->Tick().ok());
    }
  }

  std::shared_ptr<VirtualClock> clock_;
  std::unique_ptr<Container> container_;
};

TEST_F(TelemetrySystemWrapperTest, AnswersWindowedSqlOverOwnMetrics) {
  ASSERT_TRUE(container_->Deploy(MonitorDescriptor("mon", "container")).ok());
  Run(2 * kMicrosPerSecond);

  // The monitor's history is an ordinary sensor table: windowed SQL
  // aggregates over the container's own runtime state.
  auto result = container_->Query(
      "select count(*), max(sensors), max(tuples_total), avg(queue_depth) "
      "from mon");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rows()[0][0].int_value(), 10);
  // The only deployed sensor is the monitor itself...
  EXPECT_EQ(result->rows()[0][1].int_value(), 1);
  // ...and it sees its own output counted in the tuple totals.
  EXPECT_GT(result->rows()[0][2].int_value(), 0);
}

TEST_F(TelemetrySystemWrapperTest, SelfChainedMonitorDoesNotAmplify) {
  // The monitor observing the container it runs in, a derived alert
  // sensor observing the monitor, and ad-hoc queries over both while
  // ticking: completing at all is the no-deadlock regression (the
  // scrape runs inside Tick and must never take container locks).
  ASSERT_TRUE(container_->Deploy(MonitorDescriptor("mon", "container")).ok());
  ASSERT_TRUE(container_->Deploy(kAlertXml).ok());

  constexpr int kTicks = 20;
  for (int i = 0; i < kTicks; ++i) {
    clock_->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(container_->Tick().ok());
    ASSERT_TRUE(container_->Query("select count(*) from mon").ok());
  }

  auto mon = container_->Query("select count(*) from mon");
  auto alert = container_->Query("select count(*), max(sheds) from \"mon-alert\"");
  ASSERT_TRUE(mon.ok());
  ASSERT_TRUE(alert.ok());
  const int64_t mon_count = mon->rows()[0][0].int_value();
  // One sample per elapsed interval: observing the observer must not
  // feed back into extra samples.
  EXPECT_GT(mon_count, 10);
  EXPECT_LE(mon_count, kTicks + 1);
  EXPECT_GT(alert->rows()[0][0].int_value(), 0);
  // No overload was synthesized, so the alert columns stay zero.
  EXPECT_EQ(alert->rows()[0][1].int_value(), 0);
}

TEST_F(TelemetrySystemWrapperTest, SyntheticOverloadFiresNotification) {
  ASSERT_TRUE(container_->Deploy(kOverloadedXml).ok());
  ASSERT_TRUE(container_->Deploy(MonitorDescriptor("mon", "container")).ok());

  int notified = 0;
  auto sub = container_->notification_manager().Subscribe(
      "mon", "shed_total > 0",
      std::make_shared<CallbackChannel>(
          [&](const Notification&) { ++notified; }));
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  Run(2 * kMicrosPerSecond);

  // The firehose overflows its 4-slot queue every tick; the monitor
  // samples the climbing shed counter and the subscription pages.
  EXPECT_GT(notified, 0);
  auto shed = container_->Query("select max(shed_total) from mon");
  ASSERT_TRUE(shed.ok());
  EXPECT_GT(shed->rows()[0][0].int_value(), 0);
}

TEST_F(TelemetrySystemWrapperTest, MetricSeriesDoNotLeakAcrossRedeploys) {
  auto cycle = [&] {
    auto deployed = container_->Deploy(MonitorDescriptor("mon", "container"));
    ASSERT_TRUE(deployed.ok()) << deployed.status().ToString();
    Run(kMicrosPerSecond);
    ASSERT_TRUE(container_->Undeploy("mon").ok());
  };

  cycle();
  const size_t series_after_first = container_->metrics()->NumSeries();
  for (int i = 0; i < 3; ++i) {
    cycle();
    // Undeploy retires the sensor's series; repeating the cycle must
    // not grow the registry.
    EXPECT_EQ(container_->metrics()->NumSeries(), series_after_first);
  }
}

TEST_F(TelemetrySystemWrapperTest, FederationShipsHealthUpstream) {
  Federation fed(29);
  auto edge = fed.AddNode("edge");
  auto ops = fed.AddNode("ops");
  ASSERT_TRUE(edge.ok());
  ASSERT_TRUE(ops.ok());

  // The edge node overloads itself and publishes its self-monitor with
  // discovery metadata, like any other virtual sensor.
  ASSERT_TRUE((*edge)->Deploy(kOverloadedXml).ok());
  ASSERT_TRUE((*edge)->Deploy(MonitorDescriptor("edge-mon", "edge")).ok());
  ASSERT_TRUE(fed.Step(10 * kMicrosPerMilli).ok());

  // The ops node mirrors it by predicates through wrapper="remote".
  constexpr char kMirrorXml[] =
      "<virtual-sensor name=\"health-mirror\">"
      "<output-structure>"
      "  <field name=\"queue_depth\" type=\"integer\"/>"
      "  <field name=\"shed_total\" type=\"integer\"/>"
      "</output-structure>"
      "<input-stream name=\"in\">"
      "  <stream-source alias=\"src\" storage-size=\"30s\">"
      "    <address wrapper=\"remote\">"
      "      <predicate key=\"type\" val=\"telemetry\"/>"
      "      <predicate key=\"scope\" val=\"edge\"/>"
      "    </address>"
      "    <query>select max(queue_depth) as queue_depth,"
      " max(shed_total) as shed_total from wrapper</query>"
      "  </stream-source>"
      "  <query>select queue_depth, shed_total from src</query>"
      "</input-stream>"
      "</virtual-sensor>";
  auto mirror = (*ops)->Deploy(kMirrorXml);
  ASSERT_TRUE(mirror.ok()) << mirror.status().ToString();

  // Overload alerting works across the federation: the ops node pages
  // on queue saturation happening on the edge node.
  int notified = 0;
  auto sub = (*ops)->notification_manager().Subscribe(
      "health-mirror", "shed_total > 0",
      std::make_shared<CallbackChannel>(
          [&](const Notification&) { ++notified; }));
  ASSERT_TRUE(sub.ok());

  ASSERT_TRUE(fed.RunFor(3 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  auto result =
      (*ops)->Query("select count(*), max(shed_total) from \"health-mirror\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rows()[0][0].int_value(), 5);
  EXPECT_GT(result->rows()[0][1].int_value(), 0);
  EXPECT_GT(notified, 0);
}

}  // namespace
}  // namespace gsn::container

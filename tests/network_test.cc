#include <gtest/gtest.h>

#include "gsn/network/directory.h"
#include "gsn/network/protocol.h"
#include "gsn/network/remote_stream_wrapper.h"
#include "gsn/network/simulator.h"

namespace gsn::network {
namespace {

/// Records delivered messages.
class RecordingNode : public NetworkNode {
 public:
  void OnMessage(const Message& message) override {
    messages.push_back(message);
  }
  std::vector<Message> messages;
};

// ---------------------------------------------------------------- Simulator

TEST(NetworkSimulatorTest, DeliversAfterLatency) {
  NetworkSimulator net;
  RecordingNode a, b;
  ASSERT_TRUE(net.RegisterNode("a", &a).ok());
  ASSERT_TRUE(net.RegisterNode("b", &b).ok());
  NetworkSimulator::LinkConfig link;
  link.base_latency_micros = 5 * kMicrosPerMilli;
  net.SetDefaultLink(link);

  ASSERT_TRUE(net.Send(0, "a", "b", "test", "hello").ok());
  EXPECT_EQ(net.DeliverUntil(4 * kMicrosPerMilli), 0);
  EXPECT_EQ(net.DeliverUntil(5 * kMicrosPerMilli), 1);
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].payload, "hello");
  EXPECT_EQ(b.messages[0].from, "a");
  EXPECT_EQ(b.messages[0].topic, "test");
}

TEST(NetworkSimulatorTest, UnknownDestinationIsError) {
  NetworkSimulator net;
  RecordingNode a;
  ASSERT_TRUE(net.RegisterNode("a", &a).ok());
  EXPECT_EQ(net.Send(0, "a", "ghost", "t", "x").code(),
            StatusCode::kNotFound);
}

TEST(NetworkSimulatorTest, DuplicateRegistrationRejected) {
  NetworkSimulator net;
  RecordingNode a;
  ASSERT_TRUE(net.RegisterNode("a", &a).ok());
  EXPECT_EQ(net.RegisterNode("a", &a).code(), StatusCode::kAlreadyExists);
}

TEST(NetworkSimulatorTest, DeterministicOrderingAtSameInstant) {
  NetworkSimulator net;
  RecordingNode a, b;
  ASSERT_TRUE(net.RegisterNode("a", &a).ok());
  ASSERT_TRUE(net.RegisterNode("b", &b).ok());
  NetworkSimulator::LinkConfig link;
  link.base_latency_micros = 1;
  net.SetDefaultLink(link);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(net.Send(0, "a", "b", "t", std::to_string(i)).ok());
  }
  net.DeliverUntil(10);
  ASSERT_EQ(b.messages.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.messages[static_cast<size_t>(i)].payload, std::to_string(i));
  }
}

TEST(NetworkSimulatorTest, LossDropsSilently) {
  NetworkSimulator net(42);
  RecordingNode a, b;
  ASSERT_TRUE(net.RegisterNode("a", &a).ok());
  ASSERT_TRUE(net.RegisterNode("b", &b).ok());
  NetworkSimulator::LinkConfig link;
  link.base_latency_micros = 1;
  link.loss_probability = 0.5;
  net.SetDefaultLink(link);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(net.Send(0, "a", "b", "t", "x").ok());
  }
  net.DeliverUntil(kMicrosPerSecond);
  const auto stats = net.stats();
  EXPECT_EQ(stats.sent, 1000);
  EXPECT_NEAR(static_cast<double>(stats.dropped), 500.0, 60.0);
  EXPECT_EQ(stats.delivered, stats.sent - stats.dropped);
  EXPECT_EQ(b.messages.size(), static_cast<size_t>(stats.delivered));
}

TEST(NetworkSimulatorTest, JitterStaysWithinBound) {
  NetworkSimulator net(7);
  RecordingNode a, b;
  ASSERT_TRUE(net.RegisterNode("a", &a).ok());
  ASSERT_TRUE(net.RegisterNode("b", &b).ok());
  NetworkSimulator::LinkConfig link;
  link.base_latency_micros = 100;
  link.jitter_micros = 50;
  net.SetDefaultLink(link);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(net.Send(0, "a", "b", "t", "x").ok());
  }
  net.DeliverUntil(kMicrosPerSecond);
  for (const Message& m : b.messages) {
    EXPECT_GE(m.deliver_at, 100);
    EXPECT_LE(m.deliver_at, 150);
  }
}

TEST(NetworkSimulatorTest, BroadcastReachesAllButSender) {
  NetworkSimulator net;
  RecordingNode a, b, c;
  ASSERT_TRUE(net.RegisterNode("a", &a).ok());
  ASSERT_TRUE(net.RegisterNode("b", &b).ok());
  ASSERT_TRUE(net.RegisterNode("c", &c).ok());
  ASSERT_TRUE(net.Broadcast(0, "a", "t", "x").ok());
  net.DeliverUntil(kMicrosPerSecond);
  EXPECT_EQ(a.messages.size(), 0u);
  EXPECT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(c.messages.size(), 1u);
}

TEST(NetworkSimulatorTest, PerLinkOverride) {
  NetworkSimulator net;
  RecordingNode a, b;
  ASSERT_TRUE(net.RegisterNode("a", &a).ok());
  ASSERT_TRUE(net.RegisterNode("b", &b).ok());
  NetworkSimulator::LinkConfig slow;
  slow.base_latency_micros = kMicrosPerSecond;
  net.SetLink("a", "b", slow);
  ASSERT_TRUE(net.Send(0, "a", "b", "t", "x").ok());
  EXPECT_EQ(net.DeliverUntil(kMicrosPerSecond - 1), 0);
  EXPECT_EQ(net.DeliverUntil(kMicrosPerSecond), 1);
}

TEST(NetworkSimulatorTest, DepartedNodeMessagesDropped) {
  NetworkSimulator net;
  RecordingNode a, b;
  ASSERT_TRUE(net.RegisterNode("a", &a).ok());
  ASSERT_TRUE(net.RegisterNode("b", &b).ok());
  ASSERT_TRUE(net.Send(0, "a", "b", "t", "x").ok());
  ASSERT_TRUE(net.UnregisterNode("b").ok());
  EXPECT_EQ(net.DeliverUntil(kMicrosPerSecond), 0);
  EXPECT_EQ(net.stats().dropped, 1);
}

// ---------------------------------------------------------------- Directory

DirectoryEntry MakeEntry(const std::string& sensor, const std::string& node,
                         std::map<std::string, std::string> predicates) {
  DirectoryEntry entry;
  entry.sensor_name = sensor;
  entry.node_id = node;
  entry.predicates = std::move(predicates);
  entry.output_schema.AddField("v", DataType::kInt);
  return entry;
}

TEST(DirectoryTest, PredicateCombinationMatching) {
  DirectoryService dir;
  dir.Upsert(MakeEntry("s1", "n1",
                       {{"type", "temperature"}, {"location", "bc143"}}));
  dir.Upsert(MakeEntry("s2", "n1", {{"type", "camera"}}));
  dir.Upsert(MakeEntry("s3", "n2", {{"type", "temperature"}}));

  // Paper §4: discovery by "any combination of their properties".
  EXPECT_EQ(dir.Discover({{"type", "temperature"}}).size(), 2u);
  EXPECT_EQ(
      dir.Discover({{"type", "temperature"}, {"location", "bc143"}}).size(),
      1u);
  EXPECT_EQ(dir.Discover({{"type", "rfid"}}).size(), 0u);
  EXPECT_EQ(dir.Discover({}).size(), 3u);
  // Implicit keys: sensor and node names.
  EXPECT_EQ(dir.Discover({{"name", "s2"}}).size(), 1u);
  EXPECT_EQ(dir.Discover({{"node", "n1"}}).size(), 2u);
  // Case-insensitive.
  EXPECT_EQ(dir.Discover({{"TYPE", "Temperature"}}).size(), 2u);
}

TEST(DirectoryTest, UpsertReplacesAndRemoveDeletes) {
  DirectoryService dir;
  dir.Upsert(MakeEntry("s1", "n1", {{"type", "a"}}));
  dir.Upsert(MakeEntry("s1", "n1", {{"type", "b"}}));
  EXPECT_EQ(dir.size(), 1u);
  EXPECT_EQ(dir.Discover({{"type", "a"}}).size(), 0u);
  EXPECT_EQ(dir.Discover({{"type", "b"}}).size(), 1u);
  dir.Remove("n1", "s1");
  EXPECT_EQ(dir.size(), 0u);
}

TEST(DirectoryTest, RemoveNodeDropsAllItsEntries) {
  DirectoryService dir;
  dir.Upsert(MakeEntry("s1", "n1", {}));
  dir.Upsert(MakeEntry("s2", "n1", {}));
  dir.Upsert(MakeEntry("s3", "n2", {}));
  dir.RemoveNode("n1");
  EXPECT_EQ(dir.size(), 1u);
}

TEST(DirectoryTest, EntryEncodeDecodeRoundTrip) {
  DirectoryEntry entry = MakeEntry(
      "avg-temp", "node-7", {{"type", "temperature"}, {"location", "bc143"}});
  entry.output_schema.AddField("extra", DataType::kBinary);
  Result<DirectoryEntry> decoded = DirectoryEntry::Decode(entry.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sensor_name, entry.sensor_name);
  EXPECT_EQ(decoded->node_id, entry.node_id);
  EXPECT_EQ(decoded->predicates, entry.predicates);
  EXPECT_EQ(decoded->output_schema, entry.output_schema);
}

// ----------------------------------------------------------------- Protocol

TEST(ProtocolTest, SubscribeRoundTrip) {
  SubscribeRequest request;
  request.subscription_id = "n1#42";
  request.sensor_name = "avg-temp";
  request.subscriber_node = "n1";
  auto decoded = SubscribeRequest::Decode(request.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->subscription_id, "n1#42");
  EXPECT_EQ(decoded->sensor_name, "avg-temp");
  EXPECT_EQ(decoded->subscriber_node, "n1");
}

TEST(ProtocolTest, StreamDeliveryRoundTrip) {
  StreamDelivery delivery;
  delivery.subscription_id = "n1#1";
  delivery.sensor_name = "s";
  delivery.signature = "ab12";
  delivery.element.timed = 777;
  delivery.element.values = {Value::Int(5), Value::String("x")};
  auto decoded = StreamDelivery::Decode(delivery.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sensor_name, "s");
  EXPECT_EQ(decoded->signature, "ab12");
  EXPECT_EQ(decoded->element.timed, 777);
  EXPECT_EQ(decoded->element.values[1], Value::String("x"));
}

TEST(ProtocolTest, CorruptPayloadRejected) {
  EXPECT_FALSE(SubscribeRequest::Decode("garbage").ok());
  EXPECT_FALSE(StreamDelivery::Decode("").ok());
  EXPECT_FALSE(DirRemove::Decode("\x01").ok());
}

// --------------------------------------------------------- RemoteWrapper

TEST(RemoteStreamWrapperTest, PushThenPollDrains) {
  Schema schema;
  schema.AddField("v", DataType::kInt);
  RemoteStreamWrapper wrapper(schema, "peer", "sensor");
  StreamElement e;
  e.timed = 1;
  e.values = {Value::Int(9)};
  wrapper.Push(e, 1);
  wrapper.Push(e, 2);
  auto polled = wrapper.Poll(100);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 2u);
  EXPECT_EQ(wrapper.received_count(), 2);
  auto again = wrapper.Poll(200);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

}  // namespace
}  // namespace gsn::network

// Tests for the HTTP web interface: the route layer (in-process) and
// the real socket server end to end.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "gsn/container/web_interface.h"

namespace gsn::container {
namespace {

using network::HttpFetch;
using network::HttpRequest;
using network::HttpResponse;
using network::UrlDecode;

constexpr char kSensorXml[] =
    "<virtual-sensor name=\"web-sensor\">"
    "<metadata><predicate key=\"type\" val=\"temperature\"/></metadata>"
    "<output-structure>"
    "  <field name=\"temperature\" type=\"integer\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"src\" storage-size=\"1m\">"
    "    <address wrapper=\"mote\">"
    "      <predicate key=\"interval-ms\" val=\"100\"/>"
    "    </address>"
    "    <query>select avg(temperature) from wrapper</query>"
    "  </stream-source>"
    "  <query>select * from src</query>"
    "</input-stream>"
    "</virtual-sensor>";

class WebInterfaceTest : public ::testing::Test {
 protected:
  WebInterfaceTest() {
    clock_ = std::make_shared<VirtualClock>();
    Container::Options options;
    options.node_id = "web-node";
    options.clock = clock_;
    container_ = std::make_unique<Container>(std::move(options));
    web_ = std::make_unique<WebInterface>(container_.get());
  }

  void DeployAndRun() {
    ASSERT_TRUE(container_->Deploy(kSensorXml).ok());
    for (int i = 0; i < 10; ++i) {
      clock_->Advance(100 * kMicrosPerMilli);
      ASSERT_TRUE(container_->Tick().ok());
    }
  }

  HttpResponse Get(const std::string& path,
                   std::map<std::string, std::string> query = {}) {
    HttpRequest request;
    request.method = "GET";
    request.path = path;
    request.query = std::move(query);
    return web_->Handle(request);
  }

  std::shared_ptr<VirtualClock> clock_;
  std::unique_ptr<Container> container_;
  std::unique_ptr<WebInterface> web_;
};

TEST_F(WebInterfaceTest, IndexListsSensors) {
  DeployAndRun();
  const HttpResponse response = Get("/");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("web-sensor"), std::string::npos);
  EXPECT_NE(response.content_type.find("text/html"), std::string::npos);
}

TEST_F(WebInterfaceTest, SensorsJson) {
  DeployAndRun();
  const HttpResponse response = Get("/api/v1/sensors");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"name\":\"web-sensor\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"produced\":9"), std::string::npos);
}

TEST_F(WebInterfaceTest, SensorStatusAndNotFound) {
  DeployAndRun();
  EXPECT_EQ(Get("/api/v1/sensors/web-sensor").status, 200);
  EXPECT_EQ(Get("/api/v1/sensors/ghost").status, 404);
  EXPECT_EQ(Get("/nonexistent").status, 404);
}

TEST_F(WebInterfaceTest, LegacyUnversionedPathsAreGone) {
  DeployAndRun();
  // Known resources under their retired unversioned names answer 410
  // with the shared error envelope pointing at the v1 home.
  for (const char* path : {"/sensors", "/metrics", "/traces", "/peers",
                           "/quarantine", "/segments", "/healthz"}) {
    const HttpResponse response = Get(path);
    EXPECT_EQ(response.status, 410) << path;
    EXPECT_NE(response.body.find("\"code\":\"gone\""), std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find(std::string("/api/v1") + path),
              std::string::npos)
        << response.body;
  }
  HttpRequest deploy;
  deploy.method = "POST";
  deploy.path = "/deploy";
  deploy.body = kSensorXml;
  EXPECT_EQ(web_->Handle(deploy).status, 410);
  // Unknown paths are a plain 404, not a misleading "gone".
  EXPECT_EQ(Get("/bogus").status, 404);
}

TEST_F(WebInterfaceTest, ListEndpointsShareEnvelopeAndPaging) {
  DeployAndRun();
  // Every list endpoint answers the uniform {"items":[...],"total":N}
  // envelope even when empty.
  for (const char* path : {"/api/v1/traces", "/api/v1/peers",
                           "/api/v1/quarantine", "/api/v1/segments",
                           "/api/v1/transport"}) {
    const HttpResponse response = Get(path);
    EXPECT_EQ(response.status, 200) << path;
    EXPECT_NE(response.body.find("\"items\":["), std::string::npos)
        << path << ": " << response.body;
    EXPECT_NE(response.body.find("\"total\":"), std::string::npos)
        << path << ": " << response.body;
  }
  // Paging parameters are validated...
  EXPECT_EQ(Get("/api/v1/peers", {{"limit", "nope"}}).status, 400);
  EXPECT_EQ(Get("/api/v1/quarantine", {{"offset", "-3"}}).status, 400);
  // ...and slice without changing `total`: produce spans, then page.
  const HttpResponse all = Get("/api/v1/traces");
  const size_t total_pos = all.body.find("\"total\":");
  ASSERT_NE(total_pos, std::string::npos);
  const HttpResponse page =
      Get("/api/v1/traces", {{"limit", "1"}, {"offset", "0"}});
  EXPECT_EQ(page.status, 200);
  EXPECT_NE(page.body.find(all.body.substr(total_pos, 9)),
            std::string::npos)
      << page.body;
}

TEST_F(WebInterfaceTest, TransportEndpointReportsPlanes) {
  DeployAndRun();
  // In-process (server not started): no connections, but the envelope
  // and the HTTP-plane counters are present.
  const HttpResponse response = Get("/api/v1/transport");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"peer_transport\":\"none\""),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"accepted_total\":"), std::string::npos);

  // Over a real socket the serving connection reports itself.
  ASSERT_TRUE(web_->Start(0).ok());
  auto live = HttpFetch(web_->port(), "GET", "/api/v1/transport");
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(live->status, 200);
  EXPECT_NE(live->body.find("\"kind\":\"http\""), std::string::npos)
      << live->body;
  EXPECT_NE(live->body.find("\"state\":\"open\""), std::string::npos)
      << live->body;
  web_->Stop();
}

TEST_F(WebInterfaceTest, QueryJsonAndCsv) {
  DeployAndRun();
  const HttpResponse json =
      Get("/api/v1/query", {{"sql", "select count(*) as n from \"web-sensor\""}});
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.body.find("\"n\":9"), std::string::npos) << json.body;

  const HttpResponse csv =
      Get("/api/v1/query", {{"sql", "select count(*) as n from \"web-sensor\""},
                     {"format", "csv"}});
  EXPECT_EQ(csv.status, 200);
  EXPECT_EQ(csv.content_type, "text/csv");
  EXPECT_NE(csv.body.find("n\n9"), std::string::npos) << csv.body;

  EXPECT_EQ(Get("/api/v1/query").status, 400);
  // Unknown column -> NotFound -> 404; unparseable SQL -> 400.
  EXPECT_EQ(Get("/api/v1/query", {{"sql", "select broken"}}).status, 404);
  EXPECT_EQ(Get("/api/v1/query", {{"sql", "not sql at all"}}).status, 400);
}

TEST_F(WebInterfaceTest, ExplainAndDiscoverAndTopology) {
  DeployAndRun();
  const HttpResponse plan =
      Get("/api/v1/explain", {{"sql", "select * from \"web-sensor\""}});
  EXPECT_EQ(plan.status, 200);
  EXPECT_NE(plan.body.find("Scan web-sensor"), std::string::npos)
      << plan.body;

  const HttpResponse discover = Get("/api/v1/discover", {{"type", "temperature"}});
  EXPECT_EQ(discover.status, 200);
  EXPECT_NE(discover.body.find("\"sensor\":\"web-sensor\""),
            std::string::npos);
  const HttpResponse none = Get("/api/v1/discover", {{"type", "sonar"}});
  EXPECT_EQ(none.body, "[]");

  const HttpResponse topo = Get("/api/v1/topology");
  EXPECT_NE(topo.body.find("digraph"), std::string::npos);
  EXPECT_NE(topo.body.find("web-sensor"), std::string::npos);
}

TEST_F(WebInterfaceTest, DeployUndeployViaPost) {
  HttpRequest deploy;
  deploy.method = "POST";
  deploy.path = "/api/v1/deploy";
  deploy.body = kSensorXml;
  const HttpResponse deployed = web_->Handle(deploy);
  EXPECT_EQ(deployed.status, 200) << deployed.body;
  EXPECT_NE(deployed.body.find("web-sensor"), std::string::npos);
  EXPECT_EQ(container_->ListSensors().size(), 1u);

  HttpRequest undeploy;
  undeploy.method = "POST";
  undeploy.path = "/api/v1/undeploy";
  undeploy.query = {{"name", "web-sensor"}};
  EXPECT_EQ(web_->Handle(undeploy).status, 200);
  EXPECT_TRUE(container_->ListSensors().empty());

  // Bad deploys map to HTTP errors.
  deploy.body = "<not-a-descriptor/>";
  EXPECT_EQ(web_->Handle(deploy).status, 400);
  deploy.body = "";
  EXPECT_EQ(web_->Handle(deploy).status, 400);
}

TEST_F(WebInterfaceTest, AccessControlMapsTo403) {
  AccessControl& ac = container_->access_control();
  ASSERT_TRUE(ac.AddUser("root", "root-key", true).ok());
  ASSERT_TRUE(ac.Enable().ok());
  HttpRequest deploy;
  deploy.method = "POST";
  deploy.path = "/api/v1/deploy";
  deploy.body = kSensorXml;
  EXPECT_EQ(web_->Handle(deploy).status, 403);
  deploy.headers["x-api-key"] = "root-key";
  EXPECT_EQ(web_->Handle(deploy).status, 200);
  // Key via query parameter works too.
  HttpRequest query;
  query.method = "GET";
  query.path = "/api/v1/query";
  query.query = {{"sql", "select 1"}, {"key", "root-key"}};
  EXPECT_EQ(web_->Handle(query).status, 200);
}

// ----------------------------------------------------- real socket server

TEST_F(WebInterfaceTest, ServesOverRealSockets) {
  DeployAndRun();
  ASSERT_TRUE(web_->Start(0).ok());
  ASSERT_GT(web_->port(), 0);

  auto index = HttpFetch(web_->port(), "GET", "/");
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->status, 200);
  EXPECT_NE(index->body.find("web-sensor"), std::string::npos);

  // URL-encoded SQL through a real request line.
  auto query = HttpFetch(
      web_->port(), "GET",
      "/api/v1/query?sql=select%20count(*)%20as%20n%20from%20%22web-sensor%22");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->status, 200);
  EXPECT_NE(query->body.find("\"n\":9"), std::string::npos) << query->body;

  // POST with a body.
  auto undeploy =
      HttpFetch(web_->port(), "POST", "/api/v1/undeploy?name=web-sensor");
  ASSERT_TRUE(undeploy.ok());
  EXPECT_EQ(undeploy->status, 200);
  EXPECT_TRUE(container_->ListSensors().empty());

  web_->Stop();
  EXPECT_FALSE(HttpFetch(web_->port(), "GET", "/").ok());
}

TEST_F(WebInterfaceTest, ConcurrentClients) {
  DeployAndRun();
  ASSERT_TRUE(web_->Start(0).ok());
  const uint16_t port = web_->port();
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([port, &ok_count] {
      for (int j = 0; j < 10; ++j) {
        auto r = network::HttpFetch(port, "GET", "/api/v1/sensors");
        if (r.ok() && r->status == 200) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), 80);
  web_->Stop();
}

// --------------------------------------- health, quarantine, drain routes

constexpr char kPoisonXml[] =
    "<virtual-sensor name=\"poison\">"
    "<output-structure>"
    "  <field name=\"seq\" type=\"integer\"/>"
    "  <field name=\"inv\" type=\"integer\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"src\" storage-size=\"1\">"
    "    <address wrapper=\"generator\">"
    "      <predicate key=\"interval-ms\" val=\"100\"/>"
    "      <predicate key=\"payload-bytes\" val=\"0\"/>"
    "    </address>"
    "    <query>select seq from wrapper order by seq desc limit 1</query>"
    "  </stream-source>"
    "  <query>select seq, 1 / (seq - 5) as inv from src</query>"
    "</input-stream>"
    "</virtual-sensor>";

TEST_F(WebInterfaceTest, HealthzAndReadyzProbes) {
  DeployAndRun();
  const HttpResponse healthz = Get("/api/v1/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\":\"ok\""), std::string::npos)
      << healthz.body;

  const HttpResponse readyz = Get("/api/v1/readyz");
  EXPECT_EQ(readyz.status, 200);
  EXPECT_NE(readyz.body.find("\"ready\":true"), std::string::npos)
      << readyz.body;
}

TEST_F(WebInterfaceTest, ReadyzReports503WhileDraining) {
  DeployAndRun();
  HttpRequest drain;
  drain.method = "POST";
  drain.path = "/api/v1/drain";
  EXPECT_EQ(web_->Handle(drain).status, 200);

  const HttpResponse readyz = Get("/api/v1/readyz");
  EXPECT_EQ(readyz.status, 503);
  EXPECT_NE(readyz.body.find("\"ready\":false"), std::string::npos);
  EXPECT_NE(readyz.body.find("draining"), std::string::npos) << readyz.body;
  // Liveness is unaffected: a draining container is healthy.
  EXPECT_EQ(Get("/api/v1/healthz").status, 200);
}

TEST_F(WebInterfaceTest, SensorsJsonExposesSupervisionState) {
  DeployAndRun();
  const HttpResponse response = Get("/api/v1/sensors");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"state\":\"running\""), std::string::npos)
      << response.body;
}

TEST_F(WebInterfaceTest, QuarantineInspectRequeueClear) {
  ASSERT_TRUE(container_->Deploy(kPoisonXml).ok());
  for (int i = 0; i < 9; ++i) {
    clock_->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(container_->Tick().ok());
  }
  ASSERT_EQ(container_->quarantine().size(), 1u);
  const uint64_t id = container_->quarantine().List()[0].id;

  const HttpResponse list = Get("/api/v1/quarantine");
  EXPECT_EQ(list.status, 200);
  EXPECT_NE(list.body.find("division by zero"), std::string::npos)
      << list.body;
  EXPECT_NE(list.body.find("\"sensor\":\"poison\""), std::string::npos);

  HttpRequest requeue;
  requeue.method = "POST";
  requeue.path = "/api/v1/quarantine/requeue";
  requeue.query = {{"id", std::to_string(id)}};
  EXPECT_EQ(web_->Handle(requeue).status, 200);
  EXPECT_EQ(container_->quarantine().size(), 0u);

  // Requeued ids are gone; bad ids are client errors.
  EXPECT_EQ(web_->Handle(requeue).status, 404);
  requeue.query = {{"id", "not-a-number"}};
  EXPECT_EQ(web_->Handle(requeue).status, 400);
  requeue.query.clear();
  EXPECT_EQ(web_->Handle(requeue).status, 400);

  HttpRequest clear;
  clear.method = "POST";
  clear.path = "/api/v1/quarantine/clear";
  EXPECT_EQ(web_->Handle(clear).status, 200);
}

// Regression canary for the serialize-outside-the-lock rule
// (docs/CONCURRENCY.md): a client that requests a fat response and then
// never reads it must not stall the container. Status/metrics handlers
// copy their snapshot out of the shard locks before building JSON, so
// even if the response write parks on the dead socket, every shard
// keeps ticking. If serialization ever moves back under a shard lock,
// the tick loop below wedges behind the stalled reader and the test
// times out instead of finishing in milliseconds.
TEST(WebInterfaceSlowReaderTest, StalledReaderDoesNotStallContainer) {
  auto clock = std::make_shared<VirtualClock>();
  Container::Options options;
  options.node_id = "slow-node";
  options.clock = clock;
  options.sharding.shards = 4;
  options.sharding.tick_workers = 4;
  Container container(std::move(options));
  // Enough sensors that /metrics and /api/v1/status are multi-kilobyte.
  for (int i = 0; i < 32; ++i) {
    std::string xml = kSensorXml;
    const std::string name = "slow-" + std::to_string(i);
    xml.replace(xml.find("web-sensor"), 10, name);
    ASSERT_TRUE(container.Deploy(xml).ok());
  }
  WebInterface web(&container);
  ASSERT_TRUE(web.Start(0).ok());

  // A raw client with a minimal receive buffer: send the request, then
  // never read the response.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 1;  // kernel clamps this to its minimum
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(web.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "GET /api/v1/metrics HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  // While that response is (possibly) parked, the container must stay
  // fully live: ticks on all shards, status snapshots, per-sensor
  // status. The bound is generous — the failure mode is a hang.
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    clock->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(container.Tick().ok());
  }
  const Container::ContainerStatus status = container.GetStatus();
  EXPECT_EQ(status.shards.size(), 4u);
  EXPECT_TRUE(container.GetSensorStatus("slow-0").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);

  ::close(fd);
  web.Stop();
}

TEST(UrlDecodeTest, Decoding) {
  EXPECT_EQ(UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(UrlDecode("%22quoted%22"), "\"quoted\"");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode("bad%zz"), "bad%zz");  // invalid escapes pass through
  EXPECT_EQ(UrlDecode("%3d"), "=");
}

}  // namespace
}  // namespace gsn::container

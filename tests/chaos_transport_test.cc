// Tests for the ChaosTransport decorator (docs/CHAOS.md): the
// deterministic per-link fault schedule, each fault semantic (drop,
// dup, reorder, delay, throttle, partition, reset) on both directions,
// the shared chaos command grammar, and the decorator over a real
// EpollTransport link.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gsn/network/chaos_transport.h"
#include "gsn/network/epoll_transport.h"
#include "gsn/network/simulator.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/util/clock.h"

namespace gsn::network {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

bool WaitUntil(const std::function<bool()>& predicate,
               milliseconds timeout = milliseconds(5000)) {
  const auto deadline = steady_clock::now() + timeout;
  while (steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return predicate();
}

/// Records what crosses the decorator: outbound sends, resets, and the
/// nodes the decorator registered (its inbound shims), so tests can
/// inject inbound deliveries the way a real inner transport would.
class FakeTransport : public Transport {
 public:
  struct Sent {
    std::string from, to, topic, payload;
  };

  Status RegisterNode(const std::string& node_id, NetworkNode* node) override {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_[node_id] = node;
    return Status::OK();
  }
  Status UnregisterNode(const std::string& node_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_.erase(node_id);
    return Status::OK();
  }
  Status Send(Timestamp, const std::string& from, const std::string& to,
              const std::string& topic, std::string payload) override {
    std::lock_guard<std::mutex> lock(mu_);
    sent_.push_back({from, to, topic, std::move(payload)});
    cv_.notify_all();
    return Status::OK();
  }
  Status Broadcast(Timestamp, const std::string&, const std::string&,
                   const std::string&) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++broadcasts_;
    return Status::OK();
  }
  int Pump(Timestamp) override { return 0; }
  std::string transport_name() const override { return "fake"; }
  Status ResetPeer(const std::string& peer) override {
    std::lock_guard<std::mutex> lock(mu_);
    resets_.push_back(peer);
    return Status::OK();
  }

  std::vector<Sent> SentMessages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sent_;
  }
  bool WaitForSent(size_t n, milliseconds timeout = milliseconds(5000)) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this, n] { return sent_.size() >= n; });
  }
  std::vector<std::string> Resets() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resets_;
  }
  int broadcasts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return broadcasts_;
  }
  /// Delivers into whatever the decorator registered under `node_id`
  /// (the shim), exactly as the inner transport's loop would.
  void Inject(const std::string& node_id, const Message& message) {
    NetworkNode* node = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = nodes_.find(node_id);
      ASSERT_NE(it, nodes_.end());
      node = it->second;
    }
    node->OnMessage(message);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, NetworkNode*> nodes_;
  std::vector<Sent> sent_;
  std::vector<std::string> resets_;
  int broadcasts_ = 0;
};

class RecordingNode : public NetworkNode {
 public:
  void OnMessage(const Message& message) override {
    std::lock_guard<std::mutex> lock(mu_);
    messages_.push_back(message);
    cv_.notify_all();
  }
  std::vector<Message> Messages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return messages_;
  }
  bool WaitForCount(size_t n, milliseconds timeout = milliseconds(5000)) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout,
                        [this, n] { return messages_.size() >= n; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Message> messages_;
};

Message Msg(const std::string& from, const std::string& to,
            const std::string& payload) {
  Message m;
  m.from = from;
  m.to = to;
  m.topic = "t";
  m.payload = payload;
  return m;
}

// --------------------------------------------------------- determinism

TEST(ChaosScheduleTest, SameSeedAndRulesGiveIdenticalDecisions) {
  FakeTransport inner_a;
  FakeTransport inner_b;
  ChaosTransport::Options options;
  options.seed = 42;
  ChaosTransport a(&inner_a, options);
  ChaosTransport b(&inner_b, options);

  ChaosTransport::Rule rule;
  rule.drop = 0.3;
  rule.dup = 0.2;
  rule.reorder = 0.1;
  rule.delay_micros = 5 * kMicrosPerMilli;
  rule.delay_jitter_micros = 5 * kMicrosPerMilli;
  a.SetRule("peer", ChaosTransport::Direction::kOut, rule);
  b.SetRule("peer", ChaosTransport::Direction::kOut, rule);

  bool any_fault = false;
  for (uint64_t i = 0; i < 256; ++i) {
    const ChaosTransport::Decision da =
        a.DecisionFor("peer", ChaosTransport::Direction::kOut, i);
    const ChaosTransport::Decision db =
        b.DecisionFor("peer", ChaosTransport::Direction::kOut, i);
    EXPECT_EQ(da.drop, db.drop) << "frame " << i;
    EXPECT_EQ(da.dup, db.dup) << "frame " << i;
    EXPECT_EQ(da.reorder, db.reorder) << "frame " << i;
    EXPECT_EQ(da.delay_micros, db.delay_micros) << "frame " << i;
    any_fault = any_fault || da.drop || da.dup || da.reorder;
  }
  EXPECT_TRUE(any_fault) << "0.3/0.2/0.1 rates over 256 frames hit nothing";
  EXPECT_EQ(a.ScheduleDigest(), b.ScheduleDigest());

  // A different seed is a different schedule.
  b.Reseed(43);
  EXPECT_NE(a.ScheduleDigest(), b.ScheduleDigest());
}

TEST(ChaosScheduleTest, DecisionsIgnoreFrameArrivalInterleaving) {
  // The decision for frame i is a pure function of (seed, link, i):
  // consulting frames out of order or repeatedly changes nothing.
  FakeTransport inner;
  ChaosTransport::Options options;
  options.seed = 7;
  ChaosTransport chaos(&inner, options);
  ChaosTransport::Rule rule;
  rule.drop = 0.5;
  chaos.SetRule("peer", ChaosTransport::Direction::kIn, rule);

  std::vector<bool> forward;
  for (uint64_t i = 0; i < 64; ++i) {
    forward.push_back(
        chaos.DecisionFor("peer", ChaosTransport::Direction::kIn, i).drop);
  }
  for (uint64_t i = 64; i-- > 0;) {
    EXPECT_EQ(
        chaos.DecisionFor("peer", ChaosTransport::Direction::kIn, i).drop,
        forward[i]);
  }
}

TEST(ChaosScheduleTest, ReseedRestartsTheScheduleAndKeepsRules) {
  FakeTransport inner;
  ChaosTransport::Options options;
  options.seed = 1;
  ChaosTransport chaos(&inner, options);
  ChaosTransport::Rule rule;
  rule.drop = 1.0;
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, rule);
  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "x").ok());
  ASSERT_EQ(chaos.Rules().size(), 1u);
  EXPECT_EQ(chaos.Rules()[0].frames, 1u);

  chaos.Reseed(99);
  EXPECT_EQ(chaos.seed(), 99u);
  ASSERT_EQ(chaos.Rules().size(), 1u);
  EXPECT_EQ(chaos.Rules()[0].frames, 0u);  // schedule restarted
  EXPECT_EQ(chaos.Rules()[0].rule.drop, 1.0);  // rules kept
}

// ------------------------------------------------------ fault semantics

TEST(ChaosTransportTest, DropConsumesTheFrameButReportsOk) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);
  ChaosTransport::Rule rule;
  rule.drop = 1.0;
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, rule);

  // Like real packet loss the sender cannot tell: Send reports OK.
  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "gone").ok());
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_TRUE(inner.SentMessages().empty());
  EXPECT_EQ(chaos.counters().dropped, 1);

  // Other peers are untouched.
  ASSERT_TRUE(chaos.Send(0, "me", "other", "t", "kept").ok());
  ASSERT_TRUE(inner.WaitForSent(1));
  EXPECT_EQ(inner.SentMessages()[0].to, "other");
}

TEST(ChaosTransportTest, PartitionBlocksBothDirectionsUntilHealed) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);
  RecordingNode node;
  ASSERT_TRUE(chaos.RegisterNode("me", &node).ok());
  ChaosTransport::Rule cut;
  cut.partitioned = true;
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, cut);
  chaos.SetRule("peer", ChaosTransport::Direction::kIn, cut);

  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "out").ok());
  inner.Inject("me", Msg("peer", "me", "in"));
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_TRUE(inner.SentMessages().empty());
  EXPECT_TRUE(node.Messages().empty());
  EXPECT_EQ(chaos.counters().partitioned, 2);

  chaos.ClearRules("peer");
  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "out2").ok());
  inner.Inject("me", Msg("peer", "me", "in2"));
  ASSERT_TRUE(inner.WaitForSent(1));
  ASSERT_TRUE(node.WaitForCount(1));
  EXPECT_EQ(node.Messages()[0].payload, "in2");
  ASSERT_TRUE(chaos.UnregisterNode("me").ok());
}

TEST(ChaosTransportTest, DuplicationDeliversTheFrameTwice) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);
  ChaosTransport::Rule rule;
  rule.dup = 1.0;
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, rule);
  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "twin").ok());
  ASSERT_TRUE(inner.WaitForSent(2));
  EXPECT_EQ(inner.SentMessages()[0].payload, "twin");
  EXPECT_EQ(inner.SentMessages()[1].payload, "twin");
  EXPECT_EQ(chaos.counters().duplicated, 1);
}

TEST(ChaosTransportTest, DelayHoldsTheFrameThenDelivers) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);
  ChaosTransport::Rule rule;
  rule.delay_micros = 30 * kMicrosPerMilli;
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, rule);
  const auto before = steady_clock::now();
  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "late").ok());
  ASSERT_TRUE(inner.WaitForSent(1));
  EXPECT_GE(steady_clock::now() - before, milliseconds(25));
  EXPECT_EQ(chaos.counters().delayed, 1);
}

TEST(ChaosTransportTest, ReorderLetsALaterFrameOvertake) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);
  ChaosTransport::Rule rule;
  rule.reorder = 1.0;
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, rule);
  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "first").ok());
  chaos.ClearRules("peer");  // second frame flows straight through
  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "second").ok());
  ASSERT_TRUE(inner.WaitForSent(2));
  EXPECT_EQ(inner.SentMessages()[0].payload, "second");
  EXPECT_EQ(inner.SentMessages()[1].payload, "first");
  EXPECT_EQ(chaos.counters().reordered, 1);
}

TEST(ChaosTransportTest, ResetDropsTheFrameAndResetsTheInnerLink) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);
  ChaosTransport::Rule rule;
  rule.reset = 1.0;
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, rule);
  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "cut").ok());
  ASSERT_EQ(inner.Resets().size(), 1u);
  EXPECT_EQ(inner.Resets()[0], "peer");
  EXPECT_TRUE(inner.SentMessages().empty());
  EXPECT_EQ(chaos.counters().resets, 1);
}

TEST(ChaosTransportTest, ThrottleSlowsButDeliversEverything) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);
  ChaosTransport::Rule rule;
  rule.throttle_bytes_per_sec = 4000;  // ~25ms per 100-byte frame
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, rule);
  const std::string payload(100, 'x');
  const auto before = steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", payload).ok());
  }
  ASSERT_TRUE(inner.WaitForSent(4));
  EXPECT_GE(steady_clock::now() - before, milliseconds(50));
  EXPECT_GE(chaos.counters().throttled, 1);
}

TEST(ChaosTransportTest, InboundRulesGateDeliveriesToTheNode) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);
  RecordingNode node;
  ASSERT_TRUE(chaos.RegisterNode("me", &node).ok());
  ChaosTransport::Rule rule;
  rule.drop = 1.0;
  chaos.SetRule("remote", ChaosTransport::Direction::kIn, rule);

  inner.Inject("me", Msg("remote", "me", "lost"));
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_TRUE(node.Messages().empty());
  EXPECT_EQ(chaos.counters().dropped, 1);

  // Outbound direction of the same peer is untouched.
  ASSERT_TRUE(chaos.Send(0, "me", "remote", "t", "ok").ok());
  ASSERT_TRUE(inner.WaitForSent(1));

  chaos.ClearRules();
  inner.Inject("me", Msg("remote", "me", "arrives"));
  ASSERT_TRUE(node.WaitForCount(1));
  ASSERT_TRUE(chaos.UnregisterNode("me").ok());
}

TEST(ChaosTransportTest, BroadcastsAndForeignPeersPassThrough) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);
  ChaosTransport::Rule rule;
  rule.drop = 1.0;
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, rule);
  ASSERT_TRUE(chaos.Broadcast(0, "me", "t", "news").ok());
  EXPECT_EQ(inner.broadcasts(), 1);
  EXPECT_EQ(chaos.counters().dropped, 0);
  EXPECT_EQ(chaos.transport_name(), "chaos+fake");
  EXPECT_EQ(chaos.AsChaos(), &chaos);
  EXPECT_EQ(chaos.AsSimulator(), nullptr);
}

TEST(ChaosTransportTest, InjectedFaultsRegisterInMetrics) {
  telemetry::MetricRegistry registry;
  FakeTransport inner;
  ChaosTransport::Options options;
  options.metrics = &registry;
  ChaosTransport chaos(&inner, options);
  ChaosTransport::Rule rule;
  rule.drop = 1.0;
  chaos.SetRule("peer", ChaosTransport::Direction::kOut, rule);
  ASSERT_TRUE(chaos.Send(0, "me", "peer", "t", "x").ok());
  const std::string exposition = registry.RenderPrometheus();
  EXPECT_NE(exposition.find("gsn_chaos_injected_total{fault=\"drop\"} 1"),
            std::string::npos)
      << exposition;
}

// ------------------------------------------------- shared chaos grammar

TEST(ChaosCommandTest, SimulatorKeepsItsHistoricalGrammar) {
  NetworkSimulator sim;
  Result<std::string> r = ExecuteChaosCommand(&sim, "partition a b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "partitioned a <-> b\n");
  r = ExecuteChaosCommand(&sim, "loss a b 0.25");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "loss a -> b = 0.25\n");
  r = ExecuteChaosCommand(&sim, "heal");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "cleared all partitions and downed nodes\n");
  r = ExecuteChaosCommand(&sim, "loss a b 7");
  EXPECT_FALSE(r.ok());
  r = ExecuteChaosCommand(&sim, "bogus");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("usage:"), std::string::npos);
}

TEST(ChaosCommandTest, DecoratorGrammarDrivesRules) {
  FakeTransport inner;
  ChaosTransport chaos(&inner);

  Result<std::string> r = ExecuteChaosCommand(&chaos, "loss peer-b 0.25 out");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "loss peer-b = 0.25\n");
  EXPECT_EQ(chaos.GetRule("peer-b", ChaosTransport::Direction::kOut).drop,
            0.25);
  EXPECT_EQ(chaos.GetRule("peer-b", ChaosTransport::Direction::kIn).drop, 0.0);

  // Default direction is both.
  ASSERT_TRUE(ExecuteChaosCommand(&chaos, "dup peer-b 0.5").ok());
  EXPECT_EQ(chaos.GetRule("peer-b", ChaosTransport::Direction::kIn).dup, 0.5);
  EXPECT_EQ(chaos.GetRule("peer-b", ChaosTransport::Direction::kOut).dup, 0.5);

  ASSERT_TRUE(ExecuteChaosCommand(&chaos, "delay peer-b 15 5 in").ok());
  EXPECT_EQ(chaos.GetRule("peer-b", ChaosTransport::Direction::kIn)
                .delay_micros,
            15 * kMicrosPerMilli);
  EXPECT_EQ(chaos.GetRule("peer-b", ChaosTransport::Direction::kIn)
                .delay_jitter_micros,
            5 * kMicrosPerMilli);

  ASSERT_TRUE(ExecuteChaosCommand(&chaos, "throttle peer-b 1024 out").ok());
  EXPECT_EQ(chaos.GetRule("peer-b", ChaosTransport::Direction::kOut)
                .throttle_bytes_per_sec,
            1024);

  ASSERT_TRUE(ExecuteChaosCommand(&chaos, "partition peer-c").ok());
  EXPECT_TRUE(
      chaos.GetRule("peer-c", ChaosTransport::Direction::kOut).partitioned);

  ASSERT_TRUE(ExecuteChaosCommand(&chaos, "reset peer-b 0.1").ok());
  EXPECT_EQ(chaos.GetRule("peer-b", ChaosTransport::Direction::kOut).reset,
            0.1);

  // Immediate reset (no probability) tears the inner link down now.
  ASSERT_TRUE(ExecuteChaosCommand(&chaos, "reset peer-b").ok());
  ASSERT_EQ(inner.Resets().size(), 1u);
  EXPECT_EQ(inner.Resets()[0], "peer-b");

  r = ExecuteChaosCommand(&chaos, "seed 77");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(chaos.seed(), 77u);

  r = ExecuteChaosCommand(&chaos, "status");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->find("seed 77"), std::string::npos) << *r;
  EXPECT_NE(r->find("peer-b"), std::string::npos) << *r;

  ASSERT_TRUE(ExecuteChaosCommand(&chaos, "heal peer-b").ok());
  EXPECT_TRUE(
      chaos.GetRule("peer-b", ChaosTransport::Direction::kOut).IsDefault());
  ASSERT_TRUE(ExecuteChaosCommand(&chaos, "heal").ok());
  EXPECT_TRUE(chaos.Rules().empty());

  r = ExecuteChaosCommand(&chaos, "loss peer-b 7");
  EXPECT_FALSE(r.ok());
  r = ExecuteChaosCommand(&chaos, "bogus");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("usage:"), std::string::npos);
}

TEST(ChaosCommandTest, UnsupportedTransportsExplainThemselves) {
  Result<std::string> r = ExecuteChaosCommand(nullptr, "status");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("standalone"), std::string::npos);

  FakeTransport plain;
  r = ExecuteChaosCommand(&plain, "status");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("'fake'"), std::string::npos);
}

TEST(ChaosCommandTest, WrappedSimulatorStillAnswersSimulatorGrammar) {
  NetworkSimulator sim;
  ChaosTransport chaos(&sim);
  EXPECT_EQ(chaos.AsSimulator(), &sim);
  Result<std::string> r = ExecuteChaosCommand(&chaos, "partition a b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "partitioned a <-> b\n");
}

// ----------------------------------------- decorator over real sockets

TEST(ChaosOverEpollTest, LossAndHealGateARealTcpLink) {
  EpollTransport inner_a;
  EpollTransport inner_b;
  ASSERT_TRUE(inner_a.Start().ok());
  ASSERT_TRUE(inner_b.Start().ok());
  ASSERT_TRUE(inner_a.ListenPeer(0).ok());
  inner_b.AddPeer("node-a", "127.0.0.1", inner_a.peer_port());

  // Only the sender is wrapped; the receiver runs a bare transport —
  // chaos at either end is enough to break a link.
  ChaosTransport chaos(&inner_b);
  RecordingNode node_a;
  RecordingNode node_b;
  ASSERT_TRUE(inner_a.RegisterNode("node-a", &node_a).ok());
  ASSERT_TRUE(chaos.RegisterNode("node-b", &node_b).ok());

  ChaosTransport::Rule rule;
  rule.drop = 1.0;
  chaos.SetRule("node-a", ChaosTransport::Direction::kOut, rule);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(chaos.Send(0, "node-b", "node-a", "t", "lost").ok());
  }
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_TRUE(node_a.Messages().empty());
  EXPECT_EQ(chaos.counters().dropped, 5);

  chaos.ClearRules();
  ASSERT_TRUE(chaos.Send(0, "node-b", "node-a", "t", "through").ok());
  ASSERT_TRUE(node_a.WaitForCount(1));
  EXPECT_EQ(node_a.Messages()[0].payload, "through");

  // Replies route back through the decorator's inbound shim.
  ASSERT_TRUE(inner_a.Send(0, "node-a", "node-b", "t", "reply").ok());
  ASSERT_TRUE(node_b.WaitForCount(1));
  EXPECT_EQ(node_b.Messages()[0].payload, "reply");

  // A forced reset through the decorator tears the TCP connection down.
  ASSERT_TRUE(chaos.ResetPeer("node-a").ok());
  EXPECT_TRUE(WaitUntil([&] { return inner_b.resets_total() >= 1; }));

  // The link comes back on the next send (lazy redial).
  EXPECT_TRUE(WaitUntil([&] {
    return chaos.Send(0, "node-b", "node-a", "t", "again").ok() &&
           node_a.Messages().size() >= 2;
  }));

  ASSERT_TRUE(chaos.UnregisterNode("node-b").ok());
  inner_a.Stop();
  inner_b.Stop();
}

}  // namespace
}  // namespace gsn::network

// Failure-injection tests: the stream-quality machinery of the input
// stream manager (paper §4: "disconnections, unexpected delays, missing
// values") and the integrity layer under a hostile network.

#include <gtest/gtest.h>

#include "gsn/container/federation.h"
#include "gsn/container/realtime_pump.h"
#include "gsn/network/protocol.h"
#include "gsn/network/remote_stream_wrapper.h"

namespace gsn::container {
namespace {

std::string ProducerXml(const std::string& name) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata><predicate key=\"type\" val=\"gen\"/></metadata>"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "  <field name=\"value\" type=\"double\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"generator\">"
         "      <predicate key=\"interval-ms\" val=\"100\"/>"
         "      <predicate key=\"payload-bytes\" val=\"0\"/>"
         "    </address>"
         "    <query>select seq, value from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

std::string ConsumerXml(const std::string& name) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "  <field name=\"value\" type=\"double\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"remote\">"
         "      <predicate key=\"type\" val=\"gen\"/>"
         "    </address>"
         "    <query>select * from wrapper</query>"
         "  </stream-source>"
         "  <query>select seq, value from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

TEST(FailureInjectionTest, LossyLinkDegradesButNeverCorrupts) {
  Federation fed(99);
  gsn::network::NetworkSimulator::LinkConfig lossy;
  lossy.base_latency_micros = 5 * kMicrosPerMilli;
  lossy.jitter_micros = 20 * kMicrosPerMilli;
  lossy.loss_probability = 0.3;  // a terrible link
  fed.network().SetDefaultLink(lossy);

  auto a = fed.AddNode("producer");
  auto b = fed.AddNode("consumer");
  ASSERT_TRUE((*a)->Deploy(ProducerXml("gen")).ok());
  // The initial publish may be lost on this link; anti-entropy
  // re-announcement (every 5s) must eventually converge the replica.
  for (int i = 0; i < 300 && (*b)->Discover({{"type", "gen"}}).empty();
       ++i) {
    ASSERT_TRUE(fed.Step(100 * kMicrosPerMilli).ok());
  }
  ASSERT_FALSE((*b)->Discover({{"type", "gen"}}).empty());
  auto consumer = (*b)->Deploy(ConsumerXml("mirror"));
  ASSERT_TRUE(consumer.ok()) << consumer.status().ToString();

  ASSERT_TRUE(fed.RunFor(20 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  // Producer emitted ~200 elements. The raw link dropped plenty, but
  // the resilient delivery protocol (sequence gaps -> NACK -> replay)
  // repaired almost all of them: the consumer's remote wrapper admits
  // elements in order, exactly once. Head-of-line repair makes the
  // arrivals bursty, so the count-1 window triggers fewer pipeline
  // runs than elements — assert admission at the wrapper, and
  // integrity on whatever reached the table.
  auto* sensor = (*b)->FindSensor("mirror");
  ASSERT_NE(sensor, nullptr);
  auto* source = sensor->FindSource("in", "src");
  ASSERT_NE(source, nullptr);
  const auto* remote = dynamic_cast<const gsn::network::RemoteStreamWrapper*>(
      &source->wrapper());
  ASSERT_NE(remote, nullptr);
  EXPECT_GT(remote->admitted_count(), 150);

  auto got = (*b)->Query("select count(*), count(distinct seq) from mirror");
  ASSERT_TRUE(got.ok());
  const int64_t received = got->rows()[0][0].int_value();
  EXPECT_GT(received, 0);
  EXPECT_EQ(received, got->rows()[0][1].int_value());  // no duplicates

  const auto stats = fed.network().stats();
  EXPECT_GT(stats.dropped, 0);
}

TEST(FailureInjectionTest, TamperedStreamElementsAreRejected) {
  Federation fed(7);
  auto a = fed.AddNode("producer");
  auto b = fed.AddNode("consumer");
  ASSERT_TRUE((*a)->Deploy(ProducerXml("gen")).ok());
  ASSERT_TRUE(fed.RunFor(100 * kMicrosPerMilli, 10 * kMicrosPerMilli).ok());
  ASSERT_TRUE((*b)->Deploy(ConsumerXml("mirror")).ok());
  ASSERT_TRUE(fed.RunFor(kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  auto before = (*b)->Query("select count(*) from mirror");
  ASSERT_TRUE(before.ok());
  const int64_t count_before = before->rows()[0][0].int_value();
  ASSERT_GT(count_before, 0);

  // Forge a stream delivery with a wrong signature: the integrity layer
  // must drop it. Subscription ids are "<node>#<n>"; the consumer's
  // first subscription is consumer#1.
  gsn::network::StreamDelivery forged;
  forged.subscription_id = "consumer#1";
  forged.sensor_name = "gen";
  forged.signature = std::string(64, 'f');
  forged.element.timed = fed.clock()->NowMicros();
  forged.element.values = {Value::Int(999999), Value::Double(0)};
  ASSERT_TRUE(fed.network()
                  .Send(fed.clock()->NowMicros(), "attacker-spoof",
                        "consumer", gsn::network::kTopicStream,
                        forged.Encode())
                  .ok());
  ASSERT_TRUE(fed.RunFor(kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  auto forged_rows =
      (*b)->Query("select count(*) from mirror where seq = 999999");
  ASSERT_TRUE(forged_rows.ok());
  EXPECT_EQ(forged_rows->rows()[0][0], Value::Int(0));
}

TEST(FailureInjectionTest, DisconnectBufferReplaysAfterOutage) {
  // Descriptor with a disconnect buffer of 8 elements.
  auto clock = std::make_shared<VirtualClock>();
  Container::Options options;
  options.node_id = "n";
  options.clock = clock;
  Container container(std::move(options));
  const std::string xml =
      "<virtual-sensor name=\"s\">"
      "<output-structure><field name=\"seq\" type=\"integer\"/>"
      "</output-structure>"
      "<input-stream name=\"in\">"
      "  <stream-source alias=\"src\" storage-size=\"100\""
      "                 disconnect-buffer=\"8\">"
      "    <address wrapper=\"generator\">"
      "      <predicate key=\"interval-ms\" val=\"100\"/>"
      "      <predicate key=\"payload-bytes\" val=\"0\"/>"
      "    </address>"
      "    <query>select seq from wrapper order by seq desc limit 1</query>"
      "  </stream-source>"
      "  <query>select * from src</query>"
      "</input-stream>"
      "</virtual-sensor>";
  auto sensor = container.Deploy(xml);
  ASSERT_TRUE(sensor.ok()) << sensor.status().ToString();

  auto run = [&](int ticks) {
    for (int i = 0; i < ticks; ++i) {
      clock->Advance(100 * kMicrosPerMilli);
      ASSERT_TRUE(container.Tick().ok());
    }
  };
  run(5);
  auto* source = (*sensor)->FindSource("in", "src");
  ASSERT_NE(source, nullptr);

  // Outage for 2 seconds (20 elements produced, buffer keeps last 8).
  source->SetConnected(false);
  run(20);
  const int64_t dropped_during = source->dropped_disconnected_count();
  EXPECT_EQ(dropped_during, 12);

  source->SetConnected(true);
  run(5);
  // All buffered elements were admitted after reconnect.
  EXPECT_EQ(source->admitted_count(), 4 + 8 + 5);
}

TEST(FailureInjectionTest, RealtimePumpDrivesLiveContainer) {
  // Live mode: wall clock + pump thread. Just verify elements flow and
  // shutdown is clean.
  Container::Options options;
  options.node_id = "live";
  options.clock = SystemClock::Shared();
  Container container(std::move(options));
  const std::string xml =
      "<virtual-sensor name=\"live-gen\">"
      "<output-structure><field name=\"seq\" type=\"integer\"/>"
      "</output-structure>"
      "<input-stream name=\"in\">"
      "  <stream-source alias=\"src\" storage-size=\"100\">"
      "    <address wrapper=\"generator\">"
      "      <predicate key=\"interval-ms\" val=\"5\"/>"
      "      <predicate key=\"payload-bytes\" val=\"0\"/>"
      "    </address>"
      "    <query>select seq from wrapper order by seq desc limit 1</query>"
      "  </stream-source>"
      "  <query>select * from src</query>"
      "</input-stream>"
      "</virtual-sensor>";
  ASSERT_TRUE(container.Deploy(xml).ok());

  RealtimePump pump(&container, 10 * kMicrosPerMilli);
  pump.Start();
  EXPECT_TRUE(pump.running());
  pump.Start();  // idempotent
  // Wait until data demonstrably flowed (bounded by a 2s deadline).
  for (int i = 0; i < 200; ++i) {
    auto count = container.Query("select count(*) from \"live-gen\"");
    if (count.ok() && count->rows()[0][0].int_value() >= 10) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  pump.Stop();
  pump.Stop();  // idempotent
  EXPECT_FALSE(pump.running());
  EXPECT_GT(pump.rounds(), 0);

  auto count = container.Query("select count(*) from \"live-gen\"");
  ASSERT_TRUE(count.ok());
  EXPECT_GE(count->rows()[0][0].int_value(), 10);
}

}  // namespace
}  // namespace gsn::container

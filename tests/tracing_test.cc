// Tests for distributed tracing: trace context propagation, head
// sampling, the bounded span store, concurrent record-while-scrape
// (the TSan target), and EXPLAIN ANALYZE instrumentation down in the
// SQL layer plus its capture in the slow-query log.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gsn/container/query_manager.h"
#include "gsn/sql/executor.h"
#include "gsn/sql/optimizer.h"
#include "gsn/sql/parser.h"
#include "gsn/telemetry/tracing.h"
#include "gsn/util/logging.h"

namespace gsn::telemetry {
namespace {

/// Clock that jumps forward a fixed step on every read, making span
/// durations exact.
class SteppingClock : public Clock {
 public:
  explicit SteppingClock(Timestamp step) : step_(step) {}
  Timestamp NowMicros() const override { return now_ += step_; }

 private:
  const Timestamp step_;
  mutable Timestamp now_ = 0;
};

Tracer::Options SampledOptions(double rate, const Clock* clock = nullptr) {
  Tracer::Options options;
  options.sample_rate = rate;
  options.clock = clock;
  return options;
}

// ------------------------------------------------------------ TraceContext

TEST(TraceContextTest, HexRoundTrip) {
  TraceContext ctx;
  ctx.trace_hi = 0x0123456789abcdefULL;
  ctx.trace_lo = 0xfedcba9876543210ULL;
  const std::string hex = ctx.TraceIdHex();
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  uint64_t hi = 0;
  uint64_t lo = 0;
  ASSERT_TRUE(ParseTraceIdHex(hex, &hi, &lo));
  EXPECT_EQ(hi, ctx.trace_hi);
  EXPECT_EQ(lo, ctx.trace_lo);
}

TEST(TraceContextTest, ParseRejectsMalformedIds) {
  uint64_t hi = 0;
  uint64_t lo = 0;
  EXPECT_FALSE(ParseTraceIdHex("", &hi, &lo));
  EXPECT_FALSE(ParseTraceIdHex("abc", &hi, &lo));
  EXPECT_FALSE(ParseTraceIdHex(std::string(32, 'g'), &hi, &lo));
  EXPECT_FALSE(ParseTraceIdHex(std::string(33, 'a'), &hi, &lo));
  EXPECT_TRUE(ParseTraceIdHex(std::string(32, 'A'), &hi, &lo));
}

// ------------------------------------------------------------------ Tracer

TEST(TracerTest, RateZeroRootsInvalidContexts) {
  Tracer tracer;  // default rate 0
  const TraceContext ctx = tracer.StartTrace();
  EXPECT_FALSE(ctx.valid());
  EXPECT_FALSE(tracer.ChildOf(ctx).valid());
}

TEST(TracerTest, RateOneSamplesEveryTrace) {
  Tracer tracer(SampledOptions(1.0));
  for (int i = 0; i < 100; ++i) {
    const TraceContext ctx = tracer.StartTrace();
    ASSERT_TRUE(ctx.valid());
    EXPECT_TRUE(ctx.sampled);
  }
}

TEST(TracerTest, ChildKeepsTraceIdWithFreshSpanId) {
  Tracer tracer(SampledOptions(1.0));
  const TraceContext parent = tracer.StartTrace();
  const TraceContext child = tracer.ChildOf(parent);
  EXPECT_EQ(child.trace_hi, parent.trace_hi);
  EXPECT_EQ(child.trace_lo, parent.trace_lo);
  EXPECT_EQ(child.sampled, parent.sampled);
  EXPECT_NE(child.span_id, parent.span_id);
}

TEST(TracerTest, FractionalRateSamplesSomeNotAll) {
  Tracer tracer(SampledOptions(0.5));
  int sampled = 0;
  constexpr int kTraces = 2000;
  for (int i = 0; i < kTraces; ++i) {
    const TraceContext ctx = tracer.StartTrace();
    // Unsampled traces still carry ids (always-sample-on-error needs
    // them).
    ASSERT_TRUE(ctx.valid());
    if (ctx.sampled) ++sampled;
  }
  EXPECT_GT(sampled, kTraces / 4);
  EXPECT_LT(sampled, 3 * kTraces / 4);
}

TEST(TracerTest, SamplingDecisionIsDeterministicInTraceId) {
  Tracer a(SampledOptions(0.3));
  Tracer b(SampledOptions(0.3));
  // Same seed, same sequence of ids, same coins.
  for (int i = 0; i < 50; ++i) {
    const TraceContext ca = a.StartTrace();
    const TraceContext cb = b.StartTrace();
    EXPECT_EQ(ca.trace_hi, cb.trace_hi);
    EXPECT_EQ(ca.trace_lo, cb.trace_lo);
    EXPECT_EQ(ca.sampled, cb.sampled);
  }
}

// -------------------------------------------------------------------- Span

TEST(SpanTest, RecordsNameParentAndDurationOnFinish) {
  SteppingClock clock(7);
  Tracer tracer(SampledOptions(1.0, &clock));
  TraceContext root_ctx;
  {
    Span root(&tracer, "wrapper.produce");
    root.set_sensor("temp");
    root.set_node("node-a");
    root_ctx = root.context();
    Span child(&tracer, "vsensor.pipeline", root.context());
    child.Finish();
  }
  const std::vector<SpanRecord> spans = tracer.store().Snapshot();
  ASSERT_EQ(spans.size(), 2u);  // child finished first
  EXPECT_EQ(spans[0].name, "vsensor.pipeline");
  EXPECT_EQ(spans[0].parent_span_id, root_ctx.span_id);
  EXPECT_EQ(spans[0].trace_hi, root_ctx.trace_hi);
  EXPECT_EQ(spans[0].trace_lo, root_ctx.trace_lo);
  EXPECT_EQ(spans[1].name, "wrapper.produce");
  EXPECT_EQ(spans[1].parent_span_id, 0u);
  EXPECT_EQ(spans[1].sensor, "temp");
  EXPECT_EQ(spans[1].node, "node-a");
  // Each span reads the stepping clock twice: open and finish.
  EXPECT_EQ(spans[0].duration_micros, 7);
  EXPECT_EQ(spans[1].duration_micros, 21);
}

TEST(SpanTest, InertWithoutTracerOrWithInvalidParent) {
  Span inert;
  EXPECT_FALSE(inert.active());
  Span no_tracer(nullptr, "x");
  EXPECT_FALSE(no_tracer.active());
  Tracer tracer(SampledOptions(1.0));
  Span orphan(&tracer, "child", TraceContext());
  EXPECT_FALSE(orphan.active());
  orphan.Finish();
  EXPECT_EQ(tracer.store().size(), 0u);
}

TEST(SpanTest, UnsampledSpanIsNotRecordedUnlessError) {
  Tracer tracer(SampledOptions(1.0));
  TraceContext unsampled = tracer.StartTrace();
  unsampled.sampled = false;
  {
    Span quiet(&tracer, "quiet", unsampled);
  }
  EXPECT_EQ(tracer.store().size(), 0u);
  {
    Span failed(&tracer, "failed", unsampled);
    failed.set_error();
  }
  const std::vector<SpanRecord> spans = tracer.store().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "failed");
  EXPECT_TRUE(spans[0].error);
}

TEST(SpanTest, BindsThreadContextWhileOpenAndRestoresIt) {
  Tracer tracer(SampledOptions(1.0));
  EXPECT_FALSE(ThreadTraceContext().valid());
  {
    Span outer(&tracer, "outer");
    EXPECT_EQ(ThreadTraceContext().span_id, outer.context().span_id);
    {
      Span inner(&tracer, "inner", outer.context());
      EXPECT_EQ(ThreadTraceContext().span_id, inner.context().span_id);
    }
    EXPECT_EQ(ThreadTraceContext().span_id, outer.context().span_id);
  }
  EXPECT_FALSE(ThreadTraceContext().valid());
}

// -------------------------------------------------------------- TraceStore

TEST(TraceStoreTest, RingEvictsOldestAndCountsDropped) {
  TraceStore store(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    SpanRecord record;
    record.trace_hi = 1;
    record.trace_lo = 1;
    record.span_id = i;
    store.Record(std::move(record));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.dropped(), 2u);
  const std::vector<SpanRecord> spans = store.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].span_id, 3u);
  EXPECT_EQ(spans[2].span_id, 5u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(TraceStoreTest, ForTraceFiltersById) {
  TraceStore store;
  for (uint64_t t = 1; t <= 3; ++t) {
    SpanRecord record;
    record.trace_hi = t;
    record.trace_lo = t * 10;
    record.span_id = t;
    store.Record(std::move(record));
  }
  const std::vector<SpanRecord> one = store.ForTrace(2, 20);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].span_id, 2u);
}

// ------------------------------------------------------------ JSON export

TEST(RenderTracesJsonTest, RendersSpansAndFilters) {
  Tracer tracer(SampledOptions(1.0));
  TraceContext first_ctx;
  {
    Span first(&tracer, "alpha");
    first.set_sensor("s\"1");  // must be JSON-escaped
    first_ctx = first.context();
  }
  {
    Span second(&tracer, "beta");
  }
  const std::string all = RenderTracesJson(tracer.store());
  EXPECT_NE(all.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(all.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(all.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(all.find("\"sensor\":\"s\\\"1\""), std::string::npos);
  EXPECT_NE(all.find("\"trace\":\"" + first_ctx.TraceIdHex() + "\""),
            std::string::npos);

  const std::string one =
      RenderTracesJson(tracer.store(), first_ctx.TraceIdHex());
  EXPECT_NE(one.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_EQ(one.find("\"name\":\"beta\""), std::string::npos);

  // The uniform list envelope: `total` counts matches before paging.
  EXPECT_NE(all.find("\"items\":["), std::string::npos);
  EXPECT_NE(all.find("\"total\":2"), std::string::npos);
  const std::string paged = RenderTracesJson(tracer.store(), "", 1, 1);
  EXPECT_EQ(paged.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(paged.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(paged.find("\"total\":2"), std::string::npos);
  // Paging past the end yields an empty page, same total.
  EXPECT_NE(RenderTracesJson(tracer.store(), "", 5, 10)
                .find("\"items\":[],\"total\":2"),
            std::string::npos);
}

// ------------------------------------------------------------- Concurrency

// Spans opened/finished from many threads while other threads scrape
// the store — the shape /traces sees in production. Run under TSan by
// the sanitize CI job.
TEST(TracingConcurrencyTest, RecordWhileScrapeIsSafe) {
  Tracer tracer(SampledOptions(1.0));
  constexpr int kWriters = 6;
  constexpr int kSpansPerWriter = 500;
  std::atomic<bool> stop{false};

  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s) {
    scrapers.emplace_back([&tracer, &stop] {
      size_t total = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        total += tracer.store().Snapshot().size();
        total += RenderTracesJson(tracer.store()).size();
      }
      EXPECT_GT(total, 0u);
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&tracer, w] {
      for (int i = 0; i < kSpansPerWriter; ++i) {
        Span root(&tracer, "writer.root");
        root.set_node("node-" + std::to_string(w));
        Span child(&tracer, "writer.child", root.context());
        if (i % 7 == 0) child.set_error();
        // The thread-local binding must track this thread's own spans.
        ASSERT_EQ(ThreadTraceContext().trace_lo, child.context().trace_lo);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : scrapers) t.join();

  const size_t expected = size_t{kWriters} * kSpansPerWriter * 2;
  EXPECT_EQ(tracer.store().size() + tracer.store().dropped(), expected);
}

}  // namespace
}  // namespace gsn::telemetry

namespace gsn::sql {
namespace {

MapResolver MakeJoinedTables() {
  MapResolver resolver;
  Schema readings;
  readings.AddField("sensor_id", DataType::kInt);
  readings.AddField("temperature", DataType::kInt);
  Relation r(readings);
  for (int64_t i = 0; i < 40; ++i) {
    (void)r.AddRow({Value::Int(i % 4), Value::Int(20 + i % 10)});
  }
  resolver.Put("readings", std::move(r));

  Schema sensors;
  sensors.AddField("id", DataType::kInt);
  sensors.AddField("room", DataType::kString);
  Relation s(sensors);
  for (int64_t i = 0; i < 4; ++i) {
    (void)s.AddRow({Value::Int(i), Value::String("room-" + std::to_string(i))});
  }
  resolver.Put("sensors", std::move(s));
  return resolver;
}

constexpr char kJoinSql[] =
    "select s.room, avg(r.temperature) from readings r join sensors s "
    "on r.sensor_id = s.id where r.temperature > 21 group by s.room";

TEST(ExplainAnalyzeTest, AnnotatesJoinPlanWithRowsAndTimings) {
  MapResolver resolver = MakeJoinedTables();
  auto stmt = ParseSelect(kJoinSql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE(Optimize(stmt->get()).ok());

  Executor exec(&resolver);
  AnalyzeCollector analyze;
  exec.set_analyze(&analyze);
  auto result = exec.Execute(**stmt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(analyze.empty());

  const std::string plan = ExplainAnalyzeString(**stmt, analyze);
  // Scans report actual cardinalities with timings.
  EXPECT_NE(plan.find("rows=40"), std::string::npos) << plan;
  EXPECT_NE(plan.find("rows=4"), std::string::npos) << plan;
  EXPECT_NE(plan.find("time="), std::string::npos) << plan;
  // The join line names the algorithm actually picked at runtime.
  const bool names_algorithm =
      plan.find("HashJoin") != std::string::npos ||
      plan.find("NestedLoopJoin") != std::string::npos;
  EXPECT_TRUE(names_algorithm) << plan;
  // The filter and aggregation report their output cardinalities.
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;
  EXPECT_NE(plan.find("groups="), std::string::npos) << plan;
  // Static EXPLAIN of the same statement carries no runtime numbers.
  EXPECT_EQ(ExplainString(**stmt).find("rows="), std::string::npos);
}

TEST(ExplainAnalyzeTest, UnexecutedOperatorsSaySo) {
  MapResolver resolver = MakeJoinedTables();
  auto stmt = ParseSelect("select * from readings");
  ASSERT_TRUE(stmt.ok());
  AnalyzeCollector analyze;  // nothing recorded
  const std::string plan = ExplainAnalyzeString(**stmt, analyze);
  EXPECT_NE(plan.find("(never executed)"), std::string::npos) << plan;
}

}  // namespace
}  // namespace gsn::sql

namespace gsn::container {
namespace {

class QmSteppingClock : public Clock {
 public:
  explicit QmSteppingClock(Timestamp step) : step_(step) {}
  Timestamp NowMicros() const override { return now_ += step_; }

 private:
  const Timestamp step_;
  mutable Timestamp now_ = 0;
};

constexpr char kQmJoinSql[] =
    "select s.room, count(*) from readings r join sensors s "
    "on r.sensor_id = s.id group by s.room";

TEST(QueryManagerTracingTest, ExplainAnalyzeReportsOperatorStats) {
  sql::MapResolver resolver = sql::MakeJoinedTables();
  QueryManager qm(&resolver);
  auto plan = qm.ExplainAnalyze(kQmJoinSql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("rows=40"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("time="), std::string::npos) << *plan;
}

TEST(QueryManagerTracingTest, SlowLogCapturesSourceAndAnalyzedPlan) {
  sql::MapResolver resolver = sql::MakeJoinedTables();
  QueryManager qm(&resolver);
  QmSteppingClock stepping(1000);  // every span measures 1000 us
  qm.set_span_clock(&stepping);
  qm.set_slow_query_micros(500);  // everything is slow

  ASSERT_TRUE(qm.Execute(kQmJoinSql, "web").ok());
  const std::vector<QueryManager::SlowQueryEntry> entries = qm.slow_log();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].source, "web");
  EXPECT_EQ(entries[0].sql_text, kQmJoinSql);
  EXPECT_GE(entries[0].elapsed_micros, 500);
  // The retained plan is the EXPLAIN ANALYZE of the slow run itself.
  EXPECT_NE(entries[0].plan.find("rows=40"), std::string::npos)
      << entries[0].plan;
}

TEST(QueryManagerTracingTest, ExecutionRootsSpanWithSourceAttribution) {
  sql::MapResolver resolver = sql::MakeJoinedTables();
  QueryManager qm(&resolver);
  telemetry::Tracer tracer;
  tracer.set_sample_rate(1.0);
  qm.set_tracer(&tracer);
  ASSERT_TRUE(qm.Execute("select count(*) from readings", "mgmt").ok());
  const std::vector<telemetry::SpanRecord> spans = tracer.store().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "query.execute");
  EXPECT_EQ(spans[0].sensor, "mgmt");
}

}  // namespace
}  // namespace gsn::container

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gsn/container/container.h"
#include "gsn/container/management_interface.h"

namespace gsn::container {
namespace {

/// A deployable descriptor: one simulated mote, averaged temperature
/// over a 10-minute window, re-evaluated per arrival.
std::string MoteDescriptor(const std::string& name,
                           const std::string& location = "bc143",
                           bool permanent = false) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata>"
         "  <predicate key=\"type\" val=\"temperature\"/>"
         "  <predicate key=\"location\" val=\"" + location + "\"/>"
         "</metadata>"
         "<life-cycle pool-size=\"2\"/>"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"integer\"/>"
         "</output-structure>"
         "<storage permanent-storage=\"" +
         std::string(permanent ? "true" : "false") +
         "\" size=\"10m\"/>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"10m\">"
         "    <address wrapper=\"mote\">"
         "      <predicate key=\"interval-ms\" val=\"100\"/>"
         "    </address>"
         "    <query>select avg(temperature) from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

class ContainerTest : public ::testing::Test {
 protected:
  ContainerTest() {
    clock_ = std::make_shared<VirtualClock>();
    Container::Options options;
    options.node_id = "test-node";
    options.clock = clock_;
    options.seed = 17;
    container_ = std::make_unique<Container>(std::move(options));
  }

  /// Advances virtual time in `step` increments, ticking the container.
  void Run(Timestamp duration, Timestamp step = 100 * kMicrosPerMilli) {
    for (Timestamp t = 0; t < duration; t += step) {
      clock_->Advance(step);
      ASSERT_TRUE(container_->Tick().ok());
    }
  }

  std::shared_ptr<VirtualClock> clock_;
  std::unique_ptr<Container> container_;
};

// ---------------------------------------------------------------- Deploy

TEST_F(ContainerTest, DeployTickQuery) {
  auto sensor = container_->Deploy(MoteDescriptor("room-a"));
  ASSERT_TRUE(sensor.ok()) << sensor.status().ToString();
  EXPECT_EQ(container_->ListSensors(),
            std::vector<std::string>{"room-a"});

  Run(2 * kMicrosPerSecond);

  // Each mote arrival re-triggers the pipeline: the first tick anchors
  // the sampling schedule, so 2s of 100ms ticks yield 19 outputs.
  auto status = container_->GetSensorStatus("room-a");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->stats.produced, 19);
  EXPECT_EQ(status->stored_rows, 19u);

  // The output history is SQL-queryable as a table named after the
  // sensor.
  auto result = container_->Query(
      "select count(*), avg(temperature) from \"room-a\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows()[0][0], Value::Int(19));
  const double avg = result->rows()[0][1].double_value();
  EXPECT_GT(avg, 0);
  EXPECT_LT(avg, 60);
}

TEST_F(ContainerTest, DuplicateDeployRejected) {
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("x")).ok());
  EXPECT_EQ(container_->Deploy(MoteDescriptor("x")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ContainerTest, UnknownWrapperFailsDeployAndLeavesNoTable) {
  std::string bad = MoteDescriptor("bad");
  const size_t pos = bad.find("wrapper=\"mote\"");
  bad.replace(pos, 14, "wrapper=\"warp-drive\"");
  EXPECT_FALSE(container_->Deploy(bad).ok());
  EXPECT_TRUE(container_->ListSensors().empty());
  // The output table must have been rolled back.
  EXPECT_FALSE(container_->Query("select * from bad").ok());
}

TEST_F(ContainerTest, UndeployRemovesSensorAndTable) {
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("x")).ok());
  Run(kMicrosPerSecond);
  ASSERT_TRUE(container_->Undeploy("x").ok());
  EXPECT_TRUE(container_->ListSensors().empty());
  EXPECT_FALSE(container_->Query("select * from x").ok());
  EXPECT_EQ(container_->Undeploy("x").code(), StatusCode::kNotFound);
}

TEST_F(ContainerTest, RedeployAfterUndeployWorks) {
  // The demo's on-the-fly reconfiguration: remove and re-add while the
  // container keeps running.
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("x")).ok());
  Run(kMicrosPerSecond);
  ASSERT_TRUE(container_->Undeploy("x").ok());
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("x", "lab")).ok());
  Run(kMicrosPerSecond);
  auto status = container_->GetSensorStatus("x");
  ASSERT_TRUE(status.ok());
  EXPECT_GT(status->stats.produced, 0);
}

TEST_F(ContainerTest, LifetimeBoundExpiresSensor) {
  std::string xml = MoteDescriptor("ephemeral");
  const size_t pos = xml.find("pool-size=\"2\"");
  xml.insert(pos + 13, " lifetime=\"1s\"");
  ASSERT_TRUE(container_->Deploy(xml).ok());
  Run(900 * kMicrosPerMilli);
  EXPECT_EQ(container_->ListSensors().size(), 1u);
  Run(kMicrosPerSecond);
  EXPECT_TRUE(container_->ListSensors().empty());
}

TEST_F(ContainerTest, DirectoryPublication) {
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("a", "bc143")).ok());
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("b", "lab")).ok());
  EXPECT_EQ(container_->Discover({{"type", "temperature"}}).size(), 2u);
  auto hits = container_->Discover({{"location", "lab"}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].sensor_name, "b");
  ASSERT_TRUE(container_->Undeploy("b").ok());
  EXPECT_EQ(container_->Discover({{"location", "lab"}}).size(), 0u);
}

// ------------------------------------------------------------ Notification

TEST_F(ContainerTest, ConditionalNotification) {
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("room")).ok());
  int all_count = 0;
  int cold_count = 0;
  auto all = container_->notification_manager().Subscribe(
      "room", "", std::make_shared<CallbackChannel>(
                      [&](const Notification&) { ++all_count; }));
  ASSERT_TRUE(all.ok());
  // Mote temp-base is ~22C and drifts slowly: this fires never.
  auto cold = container_->notification_manager().Subscribe(
      "room", "temperature < -100",
      std::make_shared<CallbackChannel>(
          [&](const Notification&) { ++cold_count; }));
  ASSERT_TRUE(cold.ok());

  Run(2 * kMicrosPerSecond);
  EXPECT_EQ(all_count, 19);
  EXPECT_EQ(cold_count, 0);

  ASSERT_TRUE(container_->notification_manager().Unsubscribe(*all).ok());
  Run(kMicrosPerSecond);
  EXPECT_EQ(all_count, 19);  // unchanged after unsubscribe
}

TEST_F(ContainerTest, ContinuousQueryRunsOnNewElements) {
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("room")).ok());
  int runs = 0;
  size_t last_rows = 0;
  auto id = container_->query_manager().RegisterContinuous(
      "select count(*) as n from room",
      [&](const std::string&, const Relation& result) {
        ++runs;
        last_rows = static_cast<size_t>(result.rows()[0][0].int_value());
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Run(kMicrosPerSecond);
  EXPECT_EQ(runs, 9);
  EXPECT_EQ(last_rows, 9u);
}

TEST_F(ContainerTest, FileChannelWritesNdjson) {
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("room")).ok());
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gsn_filechannel_" + std::to_string(::getpid()) + ".ndjson"))
          .string();
  std::filesystem::remove(path);
  auto channel = std::make_shared<FileChannel>(path);
  ASSERT_TRUE(channel->ok());
  ASSERT_TRUE(container_->notification_manager()
                  .Subscribe("room", "", channel)
                  .ok());
  Run(kMicrosPerSecond);

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"sensor\":\"room\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"temperature\":"), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 9);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- Persistence

TEST(ContainerPersistenceTest, OutputSurvivesRestart) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("gsn_container_test_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);

  auto clock = std::make_shared<VirtualClock>();
  {
    Container::Options options;
    options.node_id = "n";
    options.clock = clock;
    options.storage_dir = dir;
    Container container(std::move(options));
    ASSERT_TRUE(
        container.Deploy(MoteDescriptor("persist", "bc143", true)).ok());
    for (int i = 0; i < 10; ++i) {
      clock->Advance(100 * kMicrosPerMilli);
      ASSERT_TRUE(container.Tick().ok());
    }
    auto result = container.Query("select count(*) from persist");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows()[0][0], Value::Int(9));
  }
  // "Restart": a new container over the same storage directory recovers
  // the stream history at deploy time.
  {
    Container::Options options;
    options.node_id = "n";
    options.clock = clock;
    options.storage_dir = dir;
    Container container(std::move(options));
    ASSERT_TRUE(
        container.Deploy(MoteDescriptor("persist", "bc143", true)).ok());
    auto result = container.Query("select count(*) from persist");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->rows()[0][0], Value::Int(9));
  }
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ AccessControl

TEST_F(ContainerTest, AccessControlGatesDeployAndQuery) {
  AccessControl& ac = container_->access_control();
  ASSERT_TRUE(ac.AddUser("root", "root-key", /*admin=*/true).ok());
  ASSERT_TRUE(ac.AddUser("alice", "alice-key").ok());
  ASSERT_TRUE(ac.Enable().ok());

  // Alice can neither deploy nor read.
  EXPECT_EQ(container_->Deploy(MoteDescriptor("s"), "alice-key")
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  // Root can.
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("s"), "root-key").ok());
  EXPECT_EQ(container_->Query("select * from s", "alice-key").status().code(),
            StatusCode::kPermissionDenied);
  // Grant read and retry.
  ASSERT_TRUE(ac.GrantRead("alice", "s").ok());
  EXPECT_TRUE(container_->Query("select * from s", "alice-key").ok());
  // Unknown key.
  EXPECT_EQ(container_->Query("select * from s", "bogus").status().code(),
            StatusCode::kPermissionDenied);
  // Disabled: everything open again.
  ac.Disable();
  EXPECT_TRUE(container_->Query("select * from s").ok());
}

TEST(AccessControlTest, EnableRequiresAdmin) {
  AccessControl ac;
  EXPECT_FALSE(ac.Enable().ok());
  ASSERT_TRUE(ac.AddUser("u", "k").ok());
  EXPECT_FALSE(ac.Enable().ok());
  ASSERT_TRUE(ac.AddUser("a", "ak", true).ok());
  EXPECT_TRUE(ac.Enable().ok());
}

// ---------------------------------------------------------------- Integrity

TEST(IntegrityTest, SignAndVerify) {
  IntegrityService service("secret");
  StreamElement e;
  e.timed = 42;
  e.values = {Value::Int(7), Value::String("x")};
  const std::string sig = service.Sign("sensor-a", e);
  EXPECT_EQ(sig.size(), 64u);  // hex sha256
  EXPECT_TRUE(service.Verify("sensor-a", e, sig));
  // Different sensor, tampered value, truncated sig: all fail.
  EXPECT_FALSE(service.Verify("sensor-b", e, sig));
  StreamElement tampered = e;
  tampered.values[0] = Value::Int(8);
  EXPECT_FALSE(service.Verify("sensor-a", tampered, sig));
  EXPECT_FALSE(service.Verify("sensor-a", e, sig.substr(1)));
  // Different key.
  IntegrityService other("other-key");
  EXPECT_FALSE(other.Verify("sensor-a", e, sig));
}

// -------------------------------------------------------------- QueryManager

TEST_F(ContainerTest, QueryCacheHitsAndAblation) {
  ASSERT_TRUE(container_->Deploy(MoteDescriptor("s")).ok());
  Run(kMicrosPerSecond);
  QueryManager& qm = container_->query_manager();
  ASSERT_TRUE(qm.Execute("select count(*) from s").ok());
  ASSERT_TRUE(qm.Execute("select count(*) from s").ok());
  auto stats = qm.stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);

  qm.set_cache_enabled(false);
  ASSERT_TRUE(qm.Execute("select count(*) from s").ok());
  ASSERT_TRUE(qm.Execute("select count(*) from s").ok());
  stats = qm.stats();
  EXPECT_EQ(stats.cache_hits, 1);  // unchanged
  EXPECT_EQ(stats.executed, 4);
}

// ------------------------------------------------------ ManagementInterface

TEST_F(ContainerTest, ManagementCommands) {
  ManagementInterface mgmt(container_.get());
  EXPECT_NE(mgmt.Execute("help").find("deploy"), std::string::npos);
  EXPECT_NE(mgmt.Execute("list").find("no virtual sensors"),
            std::string::npos);

  const std::string deploy_out =
      mgmt.Execute("deploy " + MoteDescriptor("mgmt-sensor"));
  EXPECT_NE(deploy_out.find("deployed 'mgmt-sensor'"), std::string::npos)
      << deploy_out;
  EXPECT_NE(mgmt.Execute("list").find("mgmt-sensor"), std::string::npos);
  EXPECT_NE(mgmt.Execute("wrappers").find("mote"), std::string::npos);
  EXPECT_NE(mgmt.Execute("discover type=temperature").find("mgmt-sensor"),
            std::string::npos);
  EXPECT_NE(mgmt.Execute("describe mgmt-sensor").find("virtual-sensor"),
            std::string::npos);

  Run(kMicrosPerSecond);
  const std::string status = mgmt.Execute("status mgmt-sensor");
  EXPECT_NE(status.find("elements produced:  9"), std::string::npos)
      << status;
  const std::string query_out =
      mgmt.Execute("query select count(*) from \"mgmt-sensor\"");
  EXPECT_NE(query_out.find("9"), std::string::npos) << query_out;

  // Exporters and plan/plot routes through the same facade.
  const std::string json_out =
      mgmt.Execute("query-json select count(*) as n from \"mgmt-sensor\"");
  EXPECT_NE(json_out.find("{\"n\":9}"), std::string::npos) << json_out;
  const std::string csv_out =
      mgmt.Execute("query-csv select count(*) as n from \"mgmt-sensor\"");
  EXPECT_NE(csv_out.find("n\n9"), std::string::npos) << csv_out;
  const std::string plot_out = mgmt.Execute(
      "plot temperature select timed, temperature from \"mgmt-sensor\"");
  EXPECT_NE(plot_out.find('*'), std::string::npos) << plot_out;
  const std::string explain_out =
      mgmt.Execute("explain select * from \"mgmt-sensor\" where 1 = 1");
  EXPECT_NE(explain_out.find("Scan mgmt-sensor"), std::string::npos);
  // The optimizer dropped WHERE 1=1.
  EXPECT_EQ(explain_out.find("Filter"), std::string::npos) << explain_out;
  const std::string topo_out = mgmt.Execute("topology");
  EXPECT_NE(topo_out.find("digraph"), std::string::npos);

  EXPECT_NE(mgmt.Execute("undeploy mgmt-sensor").find("undeployed"),
            std::string::npos);
  EXPECT_NE(mgmt.Execute("status mgmt-sensor").find("ERROR"),
            std::string::npos);
  EXPECT_NE(mgmt.Execute("bogus").find("ERROR"), std::string::npos);
  EXPECT_NE(mgmt.Execute("discover ill-formed").find("ERROR"),
            std::string::npos);
}

}  // namespace
}  // namespace gsn::container

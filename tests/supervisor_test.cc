// Supervised sensor lifecycle and overload protection: poison tuples
// land in quarantine while the sensor restarts under the retry policy,
// exhausted budgets surface as FAILED, admission queues shed per
// policy, and drain shutdown + health probes report all of it
// (docs/DURABILITY.md).

#include <gtest/gtest.h>

#include "gsn/container/container.h"
#include "gsn/vsensor/stream_source.h"
#include "gsn/wrappers/generator_wrapper.h"

namespace gsn::container {
namespace {

using vsensor::ShedPolicy;
using vsensor::StreamSource;
using vsensor::StreamSourceSpec;
using wrappers::WrapperConfig;

/// A sensor over the generator wrapper (seq 0,1,2,... every 100ms of
/// virtual time). `stream_query` is the pipeline step that sees the
/// source relation as `src`; `source_attrs` lands on the
/// <stream-source> element (queue-capacity / shed-policy overrides).
std::string GenSensor(const std::string& name, const std::string& out_fields,
                      const std::string& stream_query,
                      const std::string& source_attrs = "",
                      int interval_ms = 100) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>" + out_fields + "</output-structure>"
         "<storage permanent-storage=\"true\" size=\"10m\"/>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\" " + source_attrs +
         ">"
         "    <address wrapper=\"generator\">"
         "      <predicate key=\"interval-ms\" val=\"" +
         std::to_string(interval_ms) + "\"/>"
         "      <predicate key=\"payload-bytes\" val=\"0\"/>"
         "    </address>"
         "    <query>select seq from wrapper order by seq desc limit 1"
         "    </query>"
         "  </stream-source>"
         "  <query>" + stream_query + "</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

/// Fails exactly once: `1 / (seq - 5)` divides by zero when the window
/// holds seq 5, and only then.
std::string PoisonAtFive(const std::string& name) {
  return GenSensor(name,
                   "<field name=\"seq\" type=\"integer\"/>"
                   "<field name=\"inv\" type=\"integer\"/>",
                   "select seq, 1 / (seq - 5) as inv from src");
}

/// Fails on every trigger: `1 / (seq * 0)`.
std::string PoisonAlways(const std::string& name) {
  return GenSensor(name,
                   "<field name=\"seq\" type=\"integer\"/>"
                   "<field name=\"inv\" type=\"integer\"/>",
                   "select seq, 1 / (seq * 0) as inv from src");
}

std::string Healthy(const std::string& name) {
  return GenSensor(name, "<field name=\"seq\" type=\"integer\"/>",
                   "select * from src");
}

class SupervisorTest : public ::testing::Test {
 protected:
  Container::Options MakeOptions() {
    Container::Options options;
    options.node_id = "sup";
    options.clock = clock_;
    options.seed = 17;
    // Deterministic supervision timing: undithered 100ms backoff per
    // restart, no checkpoints.
    options.supervision.retry.initial_backoff_micros = 100 * kMicrosPerMilli;
    options.supervision.retry.multiplier = 1.0;
    options.supervision.retry.jitter = 0.0;
    options.supervision.checkpoint_interval = 0;
    return options;
  }

  void MakeContainer(Container::Options options) {
    container_ = std::make_unique<Container>(std::move(options));
  }

  void RunTicks(int ticks, Timestamp step = 100 * kMicrosPerMilli) {
    for (int i = 0; i < ticks; ++i) {
      clock_->Advance(step);
      ASSERT_TRUE(container_->Tick().ok());
    }
  }

  int64_t CountRows(const std::string& table) {
    auto result = container_->Query("select count(*) from \"" + table + "\"");
    if (!result.ok()) return -1;
    return result->rows()[0][0].int_value();
  }

  Container::SensorStatus StatusOf(const std::string& name) {
    auto status = container_->GetSensorStatus(name);
    EXPECT_TRUE(status.ok());
    return status.ok() ? *status : Container::SensorStatus{};
  }

  std::shared_ptr<VirtualClock> clock_ = std::make_shared<VirtualClock>();
  std::unique_ptr<Container> container_;
};

// --------------------------------------------------- Poison & restart

TEST_F(SupervisorTest, PoisonTupleQuarantinedWhileNeighborsKeepStreaming) {
  MakeContainer(MakeOptions());
  ASSERT_TRUE(container_->Deploy(PoisonAtFive("poison")).ok());
  ASSERT_TRUE(container_->Deploy(Healthy("bystander")).ok());

  // seq 5 reaches the window on the 7th tick; the backoff costs one
  // more. 12 ticks cover failure + restart + recovery comfortably.
  RunTicks(12);

  // The poison tuple is dead-lettered, not retried forever.
  const auto entries = container_->quarantine().List();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].sensor, "poison");
  EXPECT_EQ(entries[0].stream, "in");
  EXPECT_EQ(entries[0].source_alias, "src");
  EXPECT_NE(entries[0].error.find("division by zero"), std::string::npos);
  EXPECT_EQ(entries[0].element.values[0].int_value(), 5);

  // The sensor took exactly one supervised restart and recovered.
  const auto status = StatusOf("poison");
  EXPECT_EQ(status.state, Container::SensorState::kRunning);
  EXPECT_EQ(status.restart_attempts, 1);
  EXPECT_EQ(container_->metrics()
                ->GetCounter("gsn_sensor_restarts_total",
                             {{"sensor", "poison"}}, "")
                ->Value(),
            1);
  // Post-recovery triggers produce again (seq > 5 divides fine).
  auto latest = container_->Query("select max(seq) from poison");
  ASSERT_TRUE(latest.ok());
  EXPECT_GT(latest->rows()[0][0].int_value(), 5);

  // The neighbor never missed a beat: one row per producing tick.
  EXPECT_EQ(CountRows("bystander"), 11);
}

TEST_F(SupervisorTest, PausedSensorKeepsPumpingSourcesIntoQueues) {
  Container::Options options = MakeOptions();
  // 250ms backoff: the failure at t=700ms pauses ticks 800 and 900.
  options.supervision.retry.initial_backoff_micros = 250 * kMicrosPerMilli;
  MakeContainer(std::move(options));
  ASSERT_TRUE(container_->Deploy(PoisonAtFive("poison")).ok());

  RunTicks(7);  // t=700ms: seq 5 triggers the failure
  ASSERT_EQ(StatusOf("poison").state, Container::SensorState::kRestarting);

  RunTicks(2);  // paused: sources pump, pipeline does not run
  const auto paused = StatusOf("poison");
  EXPECT_EQ(paused.state, Container::SensorState::kRestarting);
  EXPECT_GE(paused.queue_depth, 2u);  // seq 6 and 7 waiting, not lost

  RunTicks(1);  // t=1000ms >= resume_at=950ms: restart + drain
  const auto resumed = StatusOf("poison");
  EXPECT_EQ(resumed.state, Container::SensorState::kRunning);
  EXPECT_EQ(resumed.queue_depth, 0u);
  auto latest = container_->Query("select max(seq) from poison");
  ASSERT_TRUE(latest.ok());
  EXPECT_GE(latest->rows()[0][0].int_value(), 7);
}

TEST_F(SupervisorTest, ExhaustedRestartBudgetMarksSensorFailed) {
  Container::Options options = MakeOptions();
  options.supervision.retry.max_attempts = 3;
  MakeContainer(std::move(options));
  ASSERT_TRUE(container_->Deploy(PoisonAlways("doomed")).ok());
  ASSERT_TRUE(container_->Deploy(Healthy("bystander")).ok());

  RunTicks(10);

  const auto status = StatusOf("doomed");
  EXPECT_EQ(status.state, Container::SensorState::kFailed);
  EXPECT_EQ(status.restart_attempts, 3);
  EXPECT_EQ(container_->metrics()
                ->GetGauge("gsn_sensor_state", {{"sensor", "doomed"}}, "")
                ->Value(),
            2);

  // FAILED surfaces in readiness, with the sensor named.
  const auto health = container_->GetHealth();
  EXPECT_TRUE(health.live);
  EXPECT_FALSE(health.ready);
  ASSERT_FALSE(health.reasons.empty());
  EXPECT_NE(health.reasons[0].find("doomed"), std::string::npos);

  // A FAILED sensor stops being scheduled: no new quarantine entries,
  // no new failures — and the neighbor still produces every tick.
  const size_t quarantined = container_->quarantine().size();
  const int64_t neighbor_rows = CountRows("bystander");
  RunTicks(4);
  EXPECT_EQ(container_->quarantine().size(), quarantined);
  EXPECT_EQ(StatusOf("doomed").restart_attempts, 3);
  EXPECT_EQ(CountRows("bystander"), neighbor_rows + 4);
}

TEST_F(SupervisorTest, HealthyRunRestoresRestartBudget) {
  Container::Options options = MakeOptions();
  // Two lifetime failures would exhaust this budget — unless the
  // healthy stretch between them (well past the default
  // healthy_ticks_to_reset of 10) hands the budget back.
  options.supervision.retry.max_attempts = 2;
  MakeContainer(std::move(options));
  // Fails when the window holds seq 5 and again at seq 25, ~2s of
  // healthy streaming apart.
  ASSERT_TRUE(container_
                  ->Deploy(GenSensor(
                      "flaky",
                      "<field name=\"seq\" type=\"integer\"/>"
                      "<field name=\"inv\" type=\"integer\"/>",
                      "select seq, 1 / ((seq - 5) * (seq - 25)) as inv "
                      "from src"))
                  .ok());

  // Failure #1 at tick 7, restart at tick 8, then 10 healthy ticks
  // restore the budget by tick 17.
  RunTicks(20);
  const auto rested = StatusOf("flaky");
  EXPECT_EQ(rested.state, Container::SensorState::kRunning);
  EXPECT_EQ(rested.restart_attempts, 0);  // budget restored
  EXPECT_EQ(container_->metrics()
                ->GetCounter("gsn_sensor_restarts_total",
                             {{"sensor", "flaky"}}, "")
                ->Value(),
            1);  // ...but the restart itself stays counted

  // Failure #2 (tick 27) spends attempt 1 of a FRESH budget: without
  // the reset, two lifetime failures against max_attempts=2 would have
  // permanently FAILED the sensor (and pinned readiness at 503).
  RunTicks(12);
  const auto after_second = StatusOf("flaky");
  EXPECT_EQ(after_second.state, Container::SensorState::kRunning);
  EXPECT_EQ(after_second.restart_attempts, 1);
  EXPECT_TRUE(container_->GetHealth().ready);
  EXPECT_EQ(container_->quarantine().size(), 2u);  // seq 5 and seq 25
}

TEST_F(SupervisorTest, BudgetResetDisabledKeepsLifetimeAttempts) {
  Container::Options options = MakeOptions();
  options.supervision.retry.max_attempts = 2;
  options.supervision.healthy_ticks_to_reset = 0;
  MakeContainer(std::move(options));
  ASSERT_TRUE(container_
                  ->Deploy(GenSensor(
                      "strict",
                      "<field name=\"seq\" type=\"integer\"/>"
                      "<field name=\"inv\" type=\"integer\"/>",
                      "select seq, 1 / ((seq - 5) * (seq - 25)) as inv "
                      "from src"))
                  .ok());
  RunTicks(32);  // both failures, long healthy stretch between
  const auto status = StatusOf("strict");
  EXPECT_EQ(status.state, Container::SensorState::kFailed);
  EXPECT_EQ(status.restart_attempts, 2);
}

// --------------------------------------------------------- Quarantine

TEST_F(SupervisorTest, RequeueReinjectsIntoOriginatingSource) {
  MakeContainer(MakeOptions());
  ASSERT_TRUE(container_->Deploy(PoisonAtFive("poison")).ok());
  RunTicks(9);
  auto entries = container_->quarantine().List();
  ASSERT_EQ(entries.size(), 1u);

  ASSERT_TRUE(container_->RequeueQuarantined(entries[0].id).ok());
  EXPECT_EQ(container_->quarantine().size(), 0u);
  // The requeued element is admitted ahead of new data on the next
  // poll (at-least-once); the window has moved past seq 5 by then, so
  // the pipeline no longer chokes.
  RunTicks(2);
  EXPECT_EQ(container_->quarantine().size(), 0u);
  EXPECT_EQ(StatusOf("poison").state, Container::SensorState::kRunning);
}

TEST_F(SupervisorTest, RequeueUnknownIdIsNotFound) {
  MakeContainer(MakeOptions());
  EXPECT_EQ(container_->RequeueQuarantined(12345).code(),
            StatusCode::kNotFound);
}

TEST_F(SupervisorTest, RequeueWithoutTargetSensorKeepsEntry) {
  MakeContainer(MakeOptions());
  ASSERT_TRUE(container_->Deploy(PoisonAtFive("poison")).ok());
  RunTicks(9);
  auto entries = container_->quarantine().List();
  ASSERT_EQ(entries.size(), 1u);

  // The originating sensor is gone: requeue must fail WITHOUT dropping
  // the tuple the operator asked to keep.
  ASSERT_TRUE(container_->Undeploy("poison").ok());
  EXPECT_FALSE(container_->RequeueQuarantined(entries[0].id).ok());
  EXPECT_EQ(container_->quarantine().size(), 1u);
}

TEST_F(SupervisorTest, QuarantineEvictsOldestAtCapacity) {
  Container::Options options = MakeOptions();
  options.supervision.quarantine_capacity = 2;
  options.supervision.retry.max_attempts = 100;
  MakeContainer(std::move(options));
  ASSERT_TRUE(container_->Deploy(PoisonAlways("doomed")).ok());
  RunTicks(12);  // several failures: each quarantines one element

  const auto entries = container_->quarantine().List();
  ASSERT_EQ(entries.size(), 2u);  // bounded
  EXPECT_GT(container_->metrics()
                ->GetCounter("gsn_quarantine_tuples_total", {}, "")
                ->Value(),
            2);  // ...but the counter saw every admission
}

// ------------------------------------------------ Admission & shedding

std::unique_ptr<wrappers::Wrapper> MakeGenerator(int interval_ms) {
  WrapperConfig config;
  config.params = {{"interval-ms", std::to_string(interval_ms)},
                   {"payload-bytes", "0"}};
  config.seed = 5;
  auto wrapper = wrappers::GeneratorWrapper::Make(config);
  EXPECT_TRUE(wrapper.ok());
  return *std::move(wrapper);
}

StreamSourceSpec BoundedSpec() {
  StreamSourceSpec spec;
  spec.alias = "src";
  spec.window.kind = WindowSpec::Kind::kCount;
  spec.window.count = 100;
  spec.address.wrapper = "generator";
  return spec;
}

std::vector<int64_t> Seqs(const std::vector<StreamElement>& elements) {
  std::vector<int64_t> seqs;
  for (const StreamElement& e : elements) {
    seqs.push_back(e.values[0].int_value());
  }
  return seqs;
}

TEST(AdmissionQueueTest, DropOldestKeepsNewestElements) {
  StreamSource source(BoundedSpec(), MakeGenerator(100), 1);
  source.ConfigureAdmission("s", 4, ShedPolicy::kDropOldest);
  ASSERT_TRUE(source.Poll(0).ok());
  auto admitted = source.Poll(kMicrosPerSecond);  // wrapper yields seq 0..9
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(Seqs(*admitted), (std::vector<int64_t>{6, 7, 8, 9}));
  EXPECT_EQ(source.shed_count(), 6);
  EXPECT_EQ(source.queue_depth(), 0u);  // drained by the poll
}

TEST(AdmissionQueueTest, DropNewestKeepsOldestElements) {
  StreamSource source(BoundedSpec(), MakeGenerator(100), 1);
  source.ConfigureAdmission("s", 4, ShedPolicy::kDropNewest);
  ASSERT_TRUE(source.Poll(0).ok());
  auto admitted = source.Poll(kMicrosPerSecond);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(Seqs(*admitted), (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(source.shed_count(), 6);
}

TEST(AdmissionQueueTest, BlockBackpressure) {
  StreamSource source(BoundedSpec(), MakeGenerator(100), 1);
  source.ConfigureAdmission("s", 4, ShedPolicy::kBlock);
  ASSERT_TRUE(source.Pump(0).ok());
  ASSERT_TRUE(source.Pump(kMicrosPerSecond).ok());
  EXPECT_EQ(source.queue_depth(), 4u);
  EXPECT_EQ(source.shed_count(), 6);  // mid-batch overflow shed

  // Queue still full: the wrapper is NOT polled (that is what
  // "blocking the producer" means in a pull design) — one deferral is
  // counted, nothing new enqueued.
  ASSERT_TRUE(source.Pump(2 * kMicrosPerSecond).ok());
  EXPECT_EQ(source.queue_depth(), 4u);
  EXPECT_EQ(source.shed_count(), 7);

  // The oldest admitted elements survive, in order: backpressure never
  // reorders or drops what it accepted.
  auto admitted = source.Poll(3 * kMicrosPerSecond);
  ASSERT_TRUE(admitted.ok());
  std::vector<int64_t> seqs = Seqs(*admitted);
  ASSERT_GE(seqs.size(), 4u);
  EXPECT_EQ((std::vector<int64_t>{seqs[0], seqs[1], seqs[2], seqs[3]}),
            (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(AdmissionQueueTest, SetAdmittingFalseDrainsWithoutPumping) {
  StreamSource source(BoundedSpec(), MakeGenerator(100), 1);
  source.ConfigureAdmission("s", 4, ShedPolicy::kDropOldest);
  ASSERT_TRUE(source.Pump(0).ok());
  ASSERT_TRUE(source.Pump(kMicrosPerSecond).ok());
  EXPECT_EQ(source.queue_depth(), 4u);

  source.SetAdmitting(false);
  auto admitted = source.Poll(2 * kMicrosPerSecond);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->size(), 4u);     // backlog flushed...
  EXPECT_EQ(source.queue_depth(), 0u);
  const int64_t shed_before = source.shed_count();
  ASSERT_TRUE(source.Poll(3 * kMicrosPerSecond).ok());
  EXPECT_EQ(source.shed_count(), shed_before);  // ...no new load taken
}

TEST_F(SupervisorTest, DescriptorOverridesQueueCapacityAndShedPolicy) {
  MakeContainer(MakeOptions());
  // 10ms generator against 100ms ticks: 10 elements per poll into a
  // 4-slot queue.
  ASSERT_TRUE(container_
                  ->Deploy(GenSensor(
                      "newest", "<field name=\"seq\" type=\"integer\"/>",
                      "select * from src",
                      "queue-capacity=\"4\" shed-policy=\"drop-newest\"", 10))
                  .ok());
  ASSERT_TRUE(container_
                  ->Deploy(GenSensor(
                      "oldest", "<field name=\"seq\" type=\"integer\"/>",
                      "select * from src",
                      "queue-capacity=\"4\" shed-policy=\"drop-oldest\"", 10))
                  .ok());
  RunTicks(2);  // tick 1 anchors; tick 2 over-fills both queues

  EXPECT_EQ(StatusOf("newest").shed, 6);
  EXPECT_EQ(StatusOf("oldest").shed, 6);
  EXPECT_EQ(container_->metrics()
                ->GetCounter("gsn_admission_shed_total",
                             {{"policy", "drop-newest"}}, "")
                ->Value(),
            6);

  // Which 4 survived differs by policy: the storage-size=1 source
  // window ends up on the newest surviving seq.
  auto newest = container_->Query("select max(seq) from newest");
  auto oldest = container_->Query("select max(seq) from oldest");
  ASSERT_TRUE(newest.ok());
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ(newest->rows()[0][0].int_value(), 3);  // kept the head
  EXPECT_EQ(oldest->rows()[0][0].int_value(), 9);  // kept the tail
}

// ------------------------------------------------------ Drain & health

TEST_F(SupervisorTest, HealthyContainerIsReady) {
  MakeContainer(MakeOptions());
  ASSERT_TRUE(container_->Deploy(Healthy("ok")).ok());
  RunTicks(3);
  const auto health = container_->GetHealth();
  EXPECT_TRUE(health.live);
  EXPECT_TRUE(health.ready);
  EXPECT_TRUE(health.reasons.empty());
}

TEST_F(SupervisorTest, ShutdownDrainsQueuesAndStopsAdmission) {
  MakeContainer(MakeOptions());
  ASSERT_TRUE(container_->Deploy(Healthy("drained")).ok());
  RunTicks(5);
  const int64_t rows = CountRows("drained");

  ASSERT_TRUE(container_->Shutdown().ok());
  EXPECT_TRUE(container_->draining());
  EXPECT_EQ(StatusOf("drained").queue_depth, 0u);  // backlog flushed

  const auto health = container_->GetHealth();
  EXPECT_TRUE(health.live);
  EXPECT_FALSE(health.ready);
  ASSERT_FALSE(health.reasons.empty());
  EXPECT_NE(health.reasons[0].find("draining"), std::string::npos);

  // Draining container admits no new wrapper load.
  RunTicks(3);
  EXPECT_EQ(CountRows("drained"), rows);
  EXPECT_EQ(container_->ListSensors(), std::vector<std::string>{"drained"});
}

}  // namespace
}  // namespace gsn::container

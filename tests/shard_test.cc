// Cross-shard interaction tests for the sharded container core
// (docs/CONCURRENCY.md): local-wrapper chaining across shards, a
// descriptor-watcher rewrite racing ticks, requeue-vs-undeploy,
// concurrent Tick() drivers against a single-threaded reference, a
// blocked shard that must not stall the status surface or other
// shards, and recovery of a data dir under a *different* shard count.
//
// All tests pin options.sharding.shards explicitly: the default sizes
// to hardware concurrency, which is 1 on small CI hosts, and these
// tests exist precisely to exercise the multi-shard paths.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gsn/container/container.h"
#include "gsn/container/descriptor_watcher.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/wrappers/wrapper.h"

namespace fs = std::filesystem;

namespace gsn::container {
namespace {

// ------------------------------------------------------------ fixtures

/// Deterministic producer over the generator wrapper (seq 0,1,2,...
/// every `interval_ms` of virtual time), permanent storage.
std::string GenDescriptor(const std::string& name, int interval_ms = 100) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata><predicate key=\"type\" val=\"gen\"/></metadata>"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "</output-structure>"
         "<storage permanent-storage=\"true\" size=\"10m\"/>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"generator\">"
         "      <predicate key=\"interval-ms\" val=\"" +
         std::to_string(interval_ms) + "\"/>"
         "      <predicate key=\"payload-bytes\" val=\"0\"/>"
         "    </address>"
         "    <query>select seq from wrapper order by seq desc limit 1"
         "    </query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

/// Fails exactly once: `1 / (seq - 5)` divides by zero when the window
/// holds seq 5 — lands one tuple in quarantine, then recovers.
std::string PoisonAtFive(const std::string& name) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "  <field name=\"inv\" type=\"integer\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"generator\">"
         "      <predicate key=\"interval-ms\" val=\"100\"/>"
         "      <predicate key=\"payload-bytes\" val=\"0\"/>"
         "    </address>"
         "    <query>select seq from wrapper order by seq desc limit 1"
         "    </query>"
         "  </stream-source>"
         "  <query>select seq, 1 / (seq - 5) as inv from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

std::string ProducerXml(const std::string& name) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata><predicate key=\"type\" val=\"temperature\"/></metadata>"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"integer\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"mote\">"
         "      <predicate key=\"interval-ms\" val=\"100\"/>"
         "    </address>"
         "    <query>select temperature from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

std::string DerivedXml(const std::string& name) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"double\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"raw\" storage-size=\"2s\">"
         "    <address wrapper=\"local\">"
         "      <predicate key=\"type\" val=\"temperature\"/>"
         "    </address>"
         "    <query>select avg(temperature) from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from raw</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("gsn_shard_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Container::Options ShardedOptions(int shards,
                                  std::shared_ptr<Clock> clock,
                                  uint64_t seed = 31) {
  Container::Options options;
  options.node_id = "shard-node";
  options.clock = std::move(clock);
  options.seed = seed;
  options.sharding.shards = shards;
  options.sharding.tick_workers = shards;
  options.supervision.checkpoint_interval = 0;
  // Deterministic supervision timing for the quarantine test.
  options.supervision.retry.initial_backoff_micros = 100 * kMicrosPerMilli;
  options.supervision.retry.multiplier = 1.0;
  options.supervision.retry.jitter = 0.0;
  return options;
}

int64_t CountRows(Container* container, const std::string& table) {
  auto result = container->Query("select count(*) from \"" + table + "\"");
  if (!result.ok()) return -1;
  return result->rows()[0][0].int_value();
}

/// Picks a name from `prefix`0..99 whose shard differs from `avoid`
/// (or any name when avoid < 0). The FNV hash is stable, so the probe
/// is deterministic per shard count.
std::string NameOnOtherShard(const Container& container,
                             const std::string& prefix, int avoid) {
  for (int i = 0; i < 100; ++i) {
    const std::string name = prefix + std::to_string(i);
    if (container.ShardIndexFor(name) != avoid) return name;
  }
  ADD_FAILURE() << "no candidate name off shard " << avoid;
  return prefix + "0";
}

// A wrapper whose Poll blocks on a gate once armed — simulates a stuck
// device pipeline pinning one shard's tick worker.
struct BlockGate {
  std::mutex mu;
  std::condition_variable cv;
  bool armed = false;    // block only after the test arms the gate
  bool blocked = false;  // a Poll is parked inside the gate
  bool release = false;
};

class BlockingWrapper : public wrappers::Wrapper {
 public:
  explicit BlockingWrapper(BlockGate* gate) : gate_(gate) {
    schema_.AddField("seq", DataType::kInt);
  }
  const Schema& output_schema() const override { return schema_; }
  Result<std::vector<StreamElement>> Poll(Timestamp) override {
    std::unique_lock<std::mutex> lock(gate_->mu);
    if (gate_->armed && !gate_->release) {
      gate_->blocked = true;
      gate_->cv.notify_all();
      gate_->cv.wait(lock, [&] { return gate_->release; });
      gate_->blocked = false;
    }
    return std::vector<StreamElement>{};
  }
  std::string type_name() const override { return "blocking"; }

 private:
  BlockGate* gate_;
  Schema schema_;
};

std::string BlockingDescriptor(const std::string& name) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"blocking\"/>"
         "    <query>select seq from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

// -------------------------------------------------------------- tests

// Local-wrapper chaining must work when producer and consumer live on
// different shards: the chaining fan-out runs under chain_mu_, never a
// shard lock, so the shard boundary must be invisible to the stream.
TEST(ShardTest, LocalChainingAcrossShards) {
  auto clock = std::make_shared<VirtualClock>();
  Container container(ShardedOptions(4, clock));
  ASSERT_EQ(container.num_shards(), 4);

  const std::string producer = NameOnOtherShard(container, "producer", -1);
  const std::string consumer = NameOnOtherShard(
      container, "consumer", container.ShardIndexFor(producer));
  ASSERT_NE(container.ShardIndexFor(producer),
            container.ShardIndexFor(consumer));

  ASSERT_TRUE(container.Deploy(ProducerXml(producer)).ok());
  auto derived = container.Deploy(DerivedXml(consumer));
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();

  for (int i = 0; i < 30; ++i) {
    clock->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(container.Tick().ok());
  }

  const int64_t raw = CountRows(&container, producer);
  const int64_t smooth = CountRows(&container, consumer);
  EXPECT_GT(raw, 20);
  EXPECT_GE(smooth, raw / 2);
  EXPECT_LE(smooth, raw);
}

// A descriptor rewrite (redeploy = undeploy + deploy of the same key)
// racing a tick loop on all shards: the watcher thread and the tick
// thread interleave freely; nothing may crash, and the rewritten
// sensor must end up live and queryable.
TEST(ShardTest, WatcherRewriteRacesTicks) {
  TempDir dir("watch");
  auto clock = std::make_shared<VirtualClock>();
  Container container(ShardedOptions(4, clock));
  DescriptorWatcher watcher(&container, dir.path());

  auto write_descriptor = [&](int interval_ms) {
    std::ofstream out(dir.path() + "/gen.xml", std::ios::trunc);
    out << GenDescriptor("watched", interval_ms);
  };
  write_descriptor(100);
  // Keep the other shards busy too.
  for (int i = 0; i < 3; ++i) {
    std::ofstream out(dir.path() + "/other" + std::to_string(i) + ".xml");
    out << GenDescriptor("other" + std::to_string(i));
  }
  auto scanned = watcher.Scan();
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  ASSERT_EQ(container.ListSensors().size(), 4u);

  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      clock->Advance(50 * kMicrosPerMilli);
      ASSERT_TRUE(container.Tick().ok());
    }
  });

  // Rewrite the watched descriptor several times while ticks run; each
  // new interval changes the fingerprint, forcing a redeploy.
  for (int round = 0; round < 5; ++round) {
    write_descriptor(50 + round);
    auto rescan = watcher.Scan();
    ASSERT_TRUE(rescan.ok()) << rescan.status().ToString();
  }
  stop.store(true, std::memory_order_release);
  ticker.join();

  EXPECT_GE(watcher.stats().redeployed, 1);
  EXPECT_NE(container.FindSensor("watched"), nullptr);
  // A freshly redeployed sensor needs two polls: the first anchors the
  // periodic wrapper's schedule, the second emits.
  for (int i = 0; i < 3; ++i) {
    clock->Advance(kMicrosPerSecond);
    ASSERT_TRUE(container.Tick().ok());
  }
  EXPECT_GT(CountRows(&container, "watched"), 0);
}

// RequeueQuarantined() racing Undeploy() of the same sensor from
// another thread: every call must return OK or NotFound (the requeue
// takes the sensor's shard lock, so it observes either the live
// deployment or the erased map entry, never a half-dead sensor).
TEST(ShardTest, RequeueRacesUndeployAcrossShards) {
  auto clock = std::make_shared<VirtualClock>();
  Container container(ShardedOptions(4, clock));
  ASSERT_TRUE(container.Deploy(PoisonAtFive("poison")).ok());
  ASSERT_TRUE(container.Deploy(GenDescriptor("healthy-a")).ok());
  ASSERT_TRUE(container.Deploy(GenDescriptor("healthy-b")).ok());

  // Run until the poison tuple (seq 5) is quarantined.
  for (int i = 0; i < 20 && container.quarantine().size() == 0; ++i) {
    clock->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(container.Tick().ok());
  }
  const auto entries = container.quarantine().List();
  ASSERT_FALSE(entries.empty());

  std::thread requeuer([&] {
    for (const auto& entry : entries) {
      const Status status = container.RequeueQuarantined(entry.id);
      EXPECT_TRUE(status.ok() || status.code() == StatusCode::kNotFound)
          << status.ToString();
    }
  });
  const Status undeployed = container.Undeploy("poison");
  requeuer.join();
  EXPECT_TRUE(undeployed.ok()) << undeployed.ToString();
  EXPECT_NE(container.FindSensor("healthy-a"), nullptr);

  // The surviving shards keep ticking.
  clock->Advance(kMicrosPerSecond);
  ASSERT_TRUE(container.Tick().ok());
  EXPECT_GT(CountRows(&container, "healthy-a"), 0);
}

// Several threads calling Tick() concurrently on the same container
// must produce exactly what one driver produces: the per-deployment
// busy flag makes overlapping drains skip, not double-run.
TEST(ShardTest, ConcurrentTickDriversMatchSingleDriver) {
  constexpr int kSensors = 16;
  constexpr int kRounds = 30;
  const Timestamp step = 100 * kMicrosPerMilli;

  auto run = [&](int drivers) {
    auto clock = std::make_shared<VirtualClock>();
    telemetry::MetricRegistry registry;
    Container::Options options = ShardedOptions(2, clock, /*seed=*/42);
    options.metrics = &registry;
    Container container(std::move(options));
    for (int i = 0; i < kSensors; ++i) {
      EXPECT_TRUE(
          container.Deploy(GenDescriptor("g" + std::to_string(i))).ok());
    }
    for (int round = 0; round < kRounds; ++round) {
      clock->Advance(step);
      std::vector<std::thread> threads;
      threads.reserve(drivers);
      for (int d = 0; d < drivers; ++d) {
        threads.emplace_back([&] { EXPECT_TRUE(container.Tick().ok()); });
      }
      for (auto& thread : threads) thread.join();
    }
    return static_cast<int64_t>(
        registry.SumCounters("gsn_sensor_tuples_total"));
  };

  const int64_t single = run(1);
  const int64_t raced = run(4);
  EXPECT_GT(single, 0);
  EXPECT_EQ(raced, single);
}

// A wrapper stuck in Poll pins its shard's worker, but must not block
// the status surface, queries, or ticks on other shards — the drain
// runs outside the shard lock. Undeploy of the stuck sensor must wait
// on the busy barrier and complete once the pipeline unblocks.
TEST(ShardTest, BlockedShardLeavesStatusAndOtherShardsLive) {
  auto clock = std::make_shared<VirtualClock>();
  Container container(ShardedOptions(4, clock));
  BlockGate gate;
  container.wrapper_registry().Register(
      "blocking", [&gate](const wrappers::WrapperConfig&)
                      -> Result<std::unique_ptr<wrappers::Wrapper>> {
        return std::unique_ptr<wrappers::Wrapper>(
            std::make_unique<BlockingWrapper>(&gate));
      });

  const std::string blocker = NameOnOtherShard(container, "blocker", -1);
  const std::string healthy = NameOnOtherShard(
      container, "healthy", container.ShardIndexFor(blocker));
  ASSERT_TRUE(container.Deploy(BlockingDescriptor(blocker)).ok());
  ASSERT_TRUE(container.Deploy(GenDescriptor(healthy)).ok());

  {
    std::lock_guard<std::mutex> lock(gate.mu);
    gate.armed = true;
  }
  clock->Advance(100 * kMicrosPerMilli);
  std::thread ticker([&] { EXPECT_TRUE(container.Tick().ok()); });

  // Wait until the blocker's Poll is parked inside the gate (its
  // deployment is marked busy; the shard lock is NOT held).
  {
    std::unique_lock<std::mutex> lock(gate.mu);
    gate.cv.wait(lock, [&] { return gate.blocked; });
  }

  // Status, per-sensor status and queries all stay responsive.
  const Container::ContainerStatus status = container.GetStatus();
  EXPECT_EQ(status.shards.size(), 4u);
  EXPECT_TRUE(container.GetSensorStatus(healthy).ok());
  EXPECT_GE(CountRows(&container, healthy), 0);

  // Undeploy of the stuck sensor parks on the busy barrier; it may
  // only finish after the gate releases.
  std::atomic<bool> undeploy_done{false};
  std::thread undeployer([&] {
    EXPECT_TRUE(container.Undeploy(blocker).ok());
    undeploy_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(undeploy_done.load(std::memory_order_acquire));

  {
    std::lock_guard<std::mutex> lock(gate.mu);
    gate.release = true;
  }
  gate.cv.notify_all();
  ticker.join();
  undeployer.join();
  EXPECT_TRUE(undeploy_done.load(std::memory_order_acquire));
  EXPECT_EQ(container.FindSensor(blocker), nullptr);

  // The container is fully functional afterwards.
  clock->Advance(kMicrosPerSecond);
  ASSERT_TRUE(container.Tick().ok());
  EXPECT_GT(CountRows(&container, healthy), 0);
}

// The shard count is a runtime tuning knob, not part of the durable
// state: a data dir written under shards=4 must recover exactly-once
// under shards=2 and shards=1 (the FNV placement just re-buckets).
TEST(ShardTest, RecoveryAcrossDifferentShardCounts) {
  TempDir dir("recover");
  auto clock = std::make_shared<VirtualClock>();
  const std::vector<std::string> names = {"r0", "r1", "r2", "r3", "r4", "r5"};
  int64_t rows_before = 0;
  {
    Container::Options options = ShardedOptions(4, clock);
    options.data_dir = dir.path();
    Container container(std::move(options));
    for (const auto& name : names) {
      ASSERT_TRUE(container.Deploy(GenDescriptor(name)).ok());
    }
    for (int i = 0; i < 20; ++i) {
      clock->Advance(100 * kMicrosPerMilli);
      ASSERT_TRUE(container.Tick().ok());
    }
    rows_before = CountRows(&container, "r0");
    ASSERT_GT(rows_before, 0);
    // Simulated crash: no Shutdown(); the WAL has every row.
  }
  {
    Container::Options options = ShardedOptions(2, clock);
    options.data_dir = dir.path();
    Container container(std::move(options));
    EXPECT_EQ(container.recovery_failures(), 0u);
    EXPECT_EQ(container.ListSensors().size(), names.size());
    // Exactly the pre-crash history, exactly once, despite re-bucketing.
    EXPECT_EQ(CountRows(&container, "r0"), rows_before);
    auto distinct =
        container.Query("select count(*), count(distinct seq) from r0");
    ASSERT_TRUE(distinct.ok());
    EXPECT_EQ(distinct->rows()[0][0], distinct->rows()[0][1]);
    for (int i = 0; i < 10; ++i) {
      clock->Advance(100 * kMicrosPerMilli);
      ASSERT_TRUE(container.Tick().ok());
    }
    rows_before = CountRows(&container, "r0");
    ASSERT_TRUE(container.Shutdown().ok());
  }
  {
    Container::Options options = ShardedOptions(1, clock);
    options.data_dir = dir.path();
    Container container(std::move(options));
    EXPECT_EQ(container.recovery_failures(), 0u);
    EXPECT_EQ(container.ListSensors().size(), names.size());
    EXPECT_EQ(CountRows(&container, "r0"), rows_before);
    // Recovered sensors keep producing on the single shard.
    for (int i = 0; i < 5; ++i) {
      clock->Advance(100 * kMicrosPerMilli);
      ASSERT_TRUE(container.Tick().ok());
    }
    EXPECT_GT(CountRows(&container, "r0"), rows_before);
    ASSERT_TRUE(container.Shutdown().ok());
  }
}

}  // namespace
}  // namespace gsn::container

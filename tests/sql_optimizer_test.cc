#include <gtest/gtest.h>

#include "gsn/sql/executor.h"
#include "gsn/sql/optimizer.h"
#include "gsn/sql/parser.h"

namespace gsn::sql {
namespace {

/// Parses, folds, and renders an expression.
std::string Fold(const std::string& expr_sql) {
  auto expr = ParseExpression(expr_sql);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  auto changed = FoldConstants(expr->get());
  EXPECT_TRUE(changed.ok());
  return (*expr)->ToString();
}

TEST(OptimizerTest, ArithmeticFolds) {
  EXPECT_EQ(Fold("1 + 2 * 3"), "7");
  EXPECT_EQ(Fold("10 / 4"), "2");        // integer division preserved
  EXPECT_EQ(Fold("10.0 / 4"), "2.5");
  EXPECT_EQ(Fold("-(3 + 4)"), "-7");
  EXPECT_EQ(Fold("'a' || 'b'"), "'ab'");
}

TEST(OptimizerTest, ComparisonAndLogicFold) {
  EXPECT_EQ(Fold("1 < 2"), "true");
  EXPECT_EQ(Fold("not true"), "false");
  EXPECT_EQ(Fold("true and false"), "false");
  EXPECT_EQ(Fold("null and false"), "false");  // Kleene
  EXPECT_EQ(Fold("null or true"), "true");
  EXPECT_EQ(Fold("5 between 1 and 10"), "true");
  EXPECT_EQ(Fold("3 in (1, 2, 3)"), "true");
  EXPECT_EQ(Fold("4 not in (1, 2, 3)"), "true");
  EXPECT_EQ(Fold("null is null"), "true");
  EXPECT_EQ(Fold("case when 1 < 2 then 'y' else 'n' end"), "'y'");
  EXPECT_EQ(Fold("cast('42' as integer)"), "42");
}

TEST(OptimizerTest, ColumnsBlockFolding) {
  EXPECT_EQ(Fold("temp + 1"), "(temp + 1)");
  // But literal subtrees inside still fold.
  EXPECT_EQ(Fold("temp + (1 + 2)"), "(temp + 3)");
}

TEST(OptimizerTest, BooleanIdentities) {
  EXPECT_EQ(Fold("temp > 3 and true"), "(temp > 3)");
  EXPECT_EQ(Fold("temp > 3 and false"), "false");
  EXPECT_EQ(Fold("temp > 3 or false"), "(temp > 3)");
  EXPECT_EQ(Fold("temp > 3 or true"), "true");
  // Nested: (a AND TRUE) AND TRUE -> a.
  EXPECT_EQ(Fold("(temp > 3 and true) and true"), "(temp > 3)");
}

TEST(OptimizerTest, RuntimeErrorsAreNotFolded) {
  // 1/0 must raise at execution, not vanish or crash the optimizer.
  EXPECT_EQ(Fold("1 / 0"), "(1 / 0)");
  EXPECT_EQ(Fold("1 % 0"), "(1 % 0)");
  // Type error preserved too.
  EXPECT_EQ(Fold("1 < 'abc'"), "(1 < 'abc')");
}

TEST(OptimizerTest, WhereTrueIsDropped) {
  auto stmt = ParseSelect("select a from t where 1 = 1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(Optimize(stmt->get()).ok());
  EXPECT_EQ((*stmt)->where, nullptr);
}

TEST(OptimizerTest, WhereFalseIsKeptForSemantics) {
  auto stmt = ParseSelect("select a from t where 1 = 2");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(Optimize(stmt->get()).ok());
  ASSERT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->where->ToString(), "false");
}

TEST(OptimizerTest, OptimizesSubqueriesAndJoins) {
  auto stmt = ParseSelect(
      "select * from (select 1 + 1 as two from t where true) d "
      "join u on d.two = 1 + 1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(Optimize(stmt->get()).ok());
  const std::string rendered = (*stmt)->ToString();
  EXPECT_NE(rendered.find("SELECT 2 AS two"), std::string::npos) << rendered;
  // Inner WHERE true dropped; join condition folded on its rhs.
  EXPECT_EQ(rendered.find("WHERE"), std::string::npos);
  EXPECT_NE(rendered.find("d.two = 2"), std::string::npos);
}

TEST(OptimizerTest, OptimizedQueryResultsUnchanged) {
  MapResolver resolver;
  Schema schema;
  schema.AddField("v", DataType::kInt);
  Relation rel(schema);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(rel.AddRow({Value::Int(i)}).ok());
  resolver.Put("t", std::move(rel));
  Executor exec(&resolver);

  const char* queries[] = {
      "select v from t where v > 2 + 3",
      "select v + 1 * 2 from t where true and v < 8 order by 1 desc",
      "select count(*) from t where v between 0 + 1 and 10 - 2",
  };
  for (const char* q : queries) {
    auto plain = ParseSelect(q);
    ASSERT_TRUE(plain.ok());
    auto optimized = ParseSelect(q);
    ASSERT_TRUE(optimized.ok());
    ASSERT_TRUE(Optimize(optimized->get()).ok());
    auto r1 = exec.Execute(**plain);
    auto r2 = exec.Execute(**optimized);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    ASSERT_EQ(r1->NumRows(), r2->NumRows()) << q;
    for (size_t i = 0; i < r1->NumRows(); ++i) {
      EXPECT_EQ(r1->rows()[i], r2->rows()[i]) << q;
    }
  }
}

// ----------------------------------------------------------------- EXPLAIN

TEST(ExplainTest, ShowsPipelineStructure) {
  auto stmt = ParseSelect(
      "select r.type, count(*) from readings r join nodes n on "
      "r.node = n.node where r.temp > 10 group by r.type "
      "having count(*) > 1 order by r.type limit 5");
  ASSERT_TRUE(stmt.ok());
  const std::string plan = ExplainString(**stmt);
  EXPECT_NE(plan.find("Select:"), std::string::npos) << plan;
  EXPECT_NE(plan.find("NestedLoopJoin Inner on (r.node = n.node)"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("Scan readings AS r"), std::string::npos);
  EXPECT_NE(plan.find("Filter: (r.temp > 10)"), std::string::npos);
  EXPECT_NE(plan.find("Aggregate: group by r.type"), std::string::npos);
  EXPECT_NE(plan.find("Having:"), std::string::npos);
  EXPECT_NE(plan.find("OrderBy: r.type"), std::string::npos);
  EXPECT_NE(plan.find("Limit: 5"), std::string::npos);
}

TEST(ExplainTest, DerivedTablesAndSetOps) {
  auto stmt = ParseSelect(
      "select * from (select 1 as x) d union all select 2");
  ASSERT_TRUE(stmt.ok());
  const std::string plan = ExplainString(**stmt);
  EXPECT_NE(plan.find("Derived AS d:"), std::string::npos) << plan;
  EXPECT_NE(plan.find("UnionAll:"), std::string::npos) << plan;
}

}  // namespace
}  // namespace gsn::sql

// Unit tests for the federation-resilience primitives: retry policy,
// circuit breaker, replay buffer, the sequenced receive state machine
// in RemoteStreamWrapper, simulator fault injection, and the typed
// WrapperConfig accessors they are configured through.

#include <gtest/gtest.h>

#include "gsn/network/circuit_breaker.h"
#include "gsn/network/remote_stream_wrapper.h"
#include "gsn/network/replay_buffer.h"
#include "gsn/network/retry_policy.h"
#include "gsn/network/simulator.h"
#include "gsn/util/rng.h"
#include "gsn/wrappers/wrapper.h"

namespace gsn::network {
namespace {

// ------------------------------------------------------------ RetryPolicy

wrappers::WrapperConfig Config(wrappers::ParamMap params) {
  wrappers::WrapperConfig config;
  config.params = std::move(params);
  return config;
}

TEST(RetryPolicyTest, GrowsExponentiallyAndSaturates) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 100;
  policy.max_backoff_micros = 1000;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.BackoffForAttempt(1, nullptr), 100);
  EXPECT_EQ(policy.BackoffForAttempt(2, nullptr), 200);
  EXPECT_EQ(policy.BackoffForAttempt(3, nullptr), 400);
  EXPECT_EQ(policy.BackoffForAttempt(4, nullptr), 800);
  EXPECT_EQ(policy.BackoffForAttempt(5, nullptr), 1000);  // capped
  EXPECT_EQ(policy.BackoffForAttempt(50, nullptr), 1000);
}

TEST(RetryPolicyTest, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.jitter = 0.2;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Timestamp backoff = policy.BackoffForAttempt(1, &rng);
    EXPECT_GE(backoff, 800);
    EXPECT_LE(backoff, 1200);
  }
}

TEST(RetryPolicyTest, ExhaustedAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_FALSE(policy.Exhausted(2));
  EXPECT_TRUE(policy.Exhausted(3));
  EXPECT_TRUE(policy.Exhausted(4));
}

TEST(RetryPolicyTest, FromConfigOverridesDefaults) {
  auto policy = RetryPolicy::FromConfig(
      Config({{"retry-max-attempts", "5"},
              {"retry-initial-backoff", "250ms"},
              {"retry-max-backoff", "10s"},
              {"retry-multiplier", "3"},
              {"retry-jitter", "0"}}),
      RetryPolicy{});
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_EQ(policy->max_attempts, 5);
  EXPECT_EQ(policy->initial_backoff_micros, 250 * kMicrosPerMilli);
  EXPECT_EQ(policy->max_backoff_micros, 10 * kMicrosPerSecond);
  EXPECT_EQ(policy->multiplier, 3.0);
  EXPECT_EQ(policy->jitter, 0.0);
}

TEST(RetryPolicyTest, FromConfigKeepsDefaultsWhenAbsent) {
  RetryPolicy defaults;
  defaults.max_attempts = 42;
  auto policy = RetryPolicy::FromConfig(Config({}), defaults);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->max_attempts, 42);
}

TEST(RetryPolicyTest, FromConfigErrorsNameTheKey) {
  auto bad = RetryPolicy::FromConfig(
      Config({{"retry-max-attempts", "zero"}}), RetryPolicy{});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("retry-max-attempts"),
            std::string::npos)
      << bad.status().ToString();

  EXPECT_FALSE(RetryPolicy::FromConfig(Config({{"retry-max-attempts", "0"}}),
                                       RetryPolicy{})
                   .ok());
  EXPECT_FALSE(RetryPolicy::FromConfig(Config({{"retry-jitter", "1.5"}}),
                                       RetryPolicy{})
                   .ok());
  EXPECT_FALSE(RetryPolicy::FromConfig(Config({{"retry-multiplier", "0.5"}}),
                                       RetryPolicy{})
                   .ok());
  // max < initial is inconsistent.
  EXPECT_FALSE(RetryPolicy::FromConfig(
                   Config({{"retry-initial-backoff", "10s"},
                           {"retry-max-backoff", "1s"}}),
                   RetryPolicy{})
                   .ok());
}

// --------------------------------------------------------- CircuitBreaker

TEST(CircuitBreakerTest, OpensAfterThresholdFailures) {
  CircuitBreaker::Config config;
  config.failure_threshold = 3;
  config.open_duration_micros = 1000;
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.StateAt(0), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(breaker.RecordFailure(10));
  EXPECT_FALSE(breaker.RecordFailure(20));
  EXPECT_TRUE(breaker.AllowSend(20));
  EXPECT_TRUE(breaker.RecordFailure(30));  // third failure: open edge
  EXPECT_EQ(breaker.StateAt(30), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowSend(30));
  EXPECT_EQ(breaker.opened_total(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsFailureStreak) {
  CircuitBreaker::Config config;
  config.failure_threshold = 3;
  CircuitBreaker breaker(config);
  breaker.RecordFailure(1);
  breaker.RecordFailure(2);
  EXPECT_FALSE(breaker.RecordSuccess());  // already closed: no edge
  breaker.RecordFailure(3);
  breaker.RecordFailure(4);
  EXPECT_EQ(breaker.StateAt(4), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenIsDerivedFromElapsedTime) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.open_duration_micros = 1000;
  CircuitBreaker breaker(config);
  ASSERT_TRUE(breaker.RecordFailure(100));
  EXPECT_EQ(breaker.StateAt(500), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowSend(500));
  EXPECT_EQ(breaker.StateAt(1100), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowSend(1100));  // probe round may flow
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRearms) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.open_duration_micros = 1000;
  CircuitBreaker breaker(config);
  ASSERT_TRUE(breaker.RecordFailure(0));
  ASSERT_EQ(breaker.StateAt(1000), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.RecordFailure(1000));  // probe failed: re-open edge
  EXPECT_EQ(breaker.StateAt(1500), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.StateAt(2000), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.opened_total(), 2);
}

TEST(CircuitBreakerTest, SuccessClosesFromOpenAndHalfOpen) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.open_duration_micros = 1000;
  CircuitBreaker breaker(config);
  ASSERT_TRUE(breaker.RecordFailure(0));
  EXPECT_TRUE(breaker.RecordSuccess());  // recovery edge
  EXPECT_EQ(breaker.StateAt(0), CircuitBreaker::State::kClosed);

  ASSERT_TRUE(breaker.RecordFailure(10));
  ASSERT_EQ(breaker.StateAt(2000), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.RecordSuccess());
  EXPECT_EQ(breaker.StateAt(2000), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

// ----------------------------------------------------------- ReplayBuffer

TEST(ReplayBufferTest, StoresAndServesBySequence) {
  ReplayBuffer buffer(1024);
  buffer.Put(1, "one");
  buffer.Put(2, "two");
  ASSERT_NE(buffer.Get(1), nullptr);
  EXPECT_EQ(*buffer.Get(1), "one");
  EXPECT_EQ(*buffer.Get(2), "two");
  EXPECT_EQ(buffer.Get(3), nullptr);
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.bytes(), 6u);
  EXPECT_EQ(buffer.oldest_seq(), 1u);
  EXPECT_EQ(buffer.newest_seq(), 2u);
}

TEST(ReplayBufferTest, EvictsOldestWhenOverBudget) {
  ReplayBuffer buffer(10);
  buffer.Put(1, "aaaa");  // 4 bytes
  buffer.Put(2, "bbbb");  // 8 bytes total
  buffer.Put(3, "cccc");  // 12 -> evict seq 1
  EXPECT_EQ(buffer.Get(1), nullptr);
  EXPECT_NE(buffer.Get(2), nullptr);
  EXPECT_NE(buffer.Get(3), nullptr);
  EXPECT_EQ(buffer.evicted_total(), 1);
  EXPECT_LE(buffer.bytes(), 10u);
}

TEST(ReplayBufferTest, NeverEvictsTheOnlyEntry) {
  ReplayBuffer buffer(4);
  buffer.Put(7, std::string(100, 'x'));  // far over budget, kept anyway
  ASSERT_NE(buffer.Get(7), nullptr);
  EXPECT_EQ(buffer.size(), 1u);
}

// ----------------------------------------------- RemoteStreamWrapper dedup

StreamElement Element(int64_t seq) {
  StreamElement e;
  e.timed = seq * 100;
  e.values = {Value::Int(seq)};
  return e;
}

Schema SeqSchema() {
  Schema schema;
  schema.AddField("seq", DataType::kInt);
  return schema;
}

TEST(RemoteStreamWrapperTest, AdmitsInOrder) {
  RemoteStreamWrapper wrapper(SeqSchema(), "peer", "sensor");
  EXPECT_EQ(wrapper.Push(Element(1), 1).admitted, 1);
  EXPECT_EQ(wrapper.Push(Element(2), 2).admitted, 1);
  auto polled = wrapper.Poll(kMicrosPerSecond);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 2u);
  EXPECT_EQ(wrapper.admitted_count(), 2);
  EXPECT_EQ(wrapper.expected_sequence(), 3u);
}

TEST(RemoteStreamWrapperTest, ParksOutOfOrderAndDrainsWhenGapFills) {
  RemoteStreamWrapper wrapper(SeqSchema(), "peer", "sensor");
  const auto parked = wrapper.Push(Element(3), 3);
  EXPECT_EQ(parked.admitted, 0);
  EXPECT_TRUE(parked.gap_opened);
  EXPECT_EQ(wrapper.Push(Element(2), 2).admitted, 0);  // still behind 1
  const auto filled = wrapper.Push(Element(1), 1);
  EXPECT_EQ(filled.admitted, 3);  // 1 plus both parked successors
  EXPECT_EQ(wrapper.expected_sequence(), 4u);
  EXPECT_EQ(wrapper.admitted_count(), 3);
}

TEST(RemoteStreamWrapperTest, DropsDuplicates) {
  RemoteStreamWrapper wrapper(SeqSchema(), "peer", "sensor");
  wrapper.Push(Element(1), 1);
  EXPECT_TRUE(wrapper.Push(Element(1), 1).duplicate);
  wrapper.Push(Element(3), 3);  // parked
  EXPECT_TRUE(wrapper.Push(Element(3), 3).duplicate);  // parked dup
  EXPECT_EQ(wrapper.duplicate_count(), 2);
  EXPECT_EQ(wrapper.admitted_count(), 1);
}

TEST(RemoteStreamWrapperTest, LegacyUnsequencedDeliveriesAdmitDirectly) {
  RemoteStreamWrapper wrapper(SeqSchema(), "peer", "sensor");
  EXPECT_EQ(wrapper.Push(Element(1), 0).admitted, 1);
  EXPECT_EQ(wrapper.Push(Element(2), 0).admitted, 1);
  EXPECT_EQ(wrapper.expected_sequence(), 1u);  // sequencing untouched
}

TEST(RemoteStreamWrapperTest, MissingRangesFromGapsAndTip) {
  RemoteStreamWrapper wrapper(SeqSchema(), "peer", "sensor");
  wrapper.Push(Element(1), 1);
  wrapper.Push(Element(4), 4);
  wrapper.Push(Element(7), 7);
  auto missing = wrapper.MissingRanges();
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], (SeqRange{2, 3}));
  EXPECT_EQ(missing[1], (SeqRange{5, 6}));

  // A tip announces that sequences up to 10 exist: the tail becomes a
  // gap too.
  wrapper.ObserveTip(10);
  missing = wrapper.MissingRanges();
  ASSERT_EQ(missing.size(), 3u);
  EXPECT_EQ(missing[2], (SeqRange{8, 10}));
  EXPECT_EQ(wrapper.max_seen_sequence(), 10u);

  // A stale tip never lowers the high-water mark.
  wrapper.ObserveTip(5);
  EXPECT_EQ(wrapper.max_seen_sequence(), 10u);
}

TEST(RemoteStreamWrapperTest, MissingRangesRespectsCap) {
  RemoteStreamWrapper wrapper(SeqSchema(), "peer", "sensor");
  for (uint64_t seq = 2; seq <= 20; seq += 2) {
    wrapper.Push(Element(static_cast<int64_t>(seq)), seq);
  }
  EXPECT_EQ(wrapper.MissingRanges(3).size(), 3u);
}

TEST(RemoteStreamWrapperTest, AbandonAdmitsParkedAndCountsAbsent) {
  RemoteStreamWrapper wrapper(SeqSchema(), "peer", "sensor");
  wrapper.Push(Element(1), 1);
  wrapper.Push(Element(3), 3);  // 2 missing
  wrapper.Push(Element(6), 6);  // 4, 5 missing
  // Give up through 5: seq 2, 4, 5 are lost; parked 3 is admitted, and
  // 6 drains behind it.
  EXPECT_EQ(wrapper.AbandonMissingThrough(5), 3);
  EXPECT_EQ(wrapper.abandoned_count(), 3);
  EXPECT_EQ(wrapper.expected_sequence(), 7u);
  auto polled = wrapper.Poll(kMicrosPerSecond);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 3u);  // 1, 3, 6
}

TEST(RemoteStreamWrapperTest, RebindResetsSequencingKeepsQueue) {
  RemoteStreamWrapper wrapper(SeqSchema(), "peer-a", "sensor");
  wrapper.Push(Element(1), 1);
  wrapper.Push(Element(2), 2);
  wrapper.Push(Element(5), 5);  // parked; lost on rebind
  wrapper.Rebind("peer-b", "sensor-b");
  EXPECT_EQ(wrapper.peer_node(), "peer-b");
  EXPECT_EQ(wrapper.remote_sensor(), "sensor-b");
  EXPECT_EQ(wrapper.expected_sequence(), 1u);
  EXPECT_EQ(wrapper.max_seen_sequence(), 0u);
  // The new producer's sequence space starts from 1 again.
  EXPECT_EQ(wrapper.Push(Element(100), 1).admitted, 1);
  auto polled = wrapper.Poll(kMicrosPerSecond);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 3u);  // 1, 2 from before plus the new 1
}

// ------------------------------------------------- simulator fault injection

class RecordingNode : public NetworkNode {
 public:
  void OnMessage(const Message& message) override {
    messages.push_back(message);
  }
  std::vector<Message> messages;
};

TEST(SimulatorFaultTest, PartitionDropsBothDirections) {
  NetworkSimulator sim(1);
  RecordingNode a;
  RecordingNode b;
  ASSERT_TRUE(sim.RegisterNode("a", &a).ok());
  ASSERT_TRUE(sim.RegisterNode("b", &b).ok());

  sim.SetPartitioned("a", "b", true);
  ASSERT_TRUE(sim.Send(0, "a", "b", "t", "x").ok());
  ASSERT_TRUE(sim.Send(0, "b", "a", "t", "y").ok());
  sim.DeliverUntil(kMicrosPerSecond);
  EXPECT_TRUE(a.messages.empty());
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(sim.stats().dropped, 2);

  sim.SetPartitioned("a", "b", false);
  ASSERT_TRUE(sim.Send(kMicrosPerSecond, "a", "b", "t", "x").ok());
  sim.DeliverUntil(2 * kMicrosPerSecond);
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(SimulatorFaultTest, DownNodeNeitherSendsNorReceives) {
  NetworkSimulator sim(1);
  RecordingNode a;
  RecordingNode b;
  ASSERT_TRUE(sim.RegisterNode("a", &a).ok());
  ASSERT_TRUE(sim.RegisterNode("b", &b).ok());

  sim.SetNodeDown("b", true);
  EXPECT_TRUE(sim.IsNodeDown("b"));
  ASSERT_TRUE(sim.Send(0, "a", "b", "t", "to-down").ok());
  ASSERT_TRUE(sim.Send(0, "b", "a", "t", "from-down").ok());
  sim.DeliverUntil(kMicrosPerSecond);
  EXPECT_TRUE(a.messages.empty());
  EXPECT_TRUE(b.messages.empty());

  // Restart: registration survived, traffic flows again.
  sim.SetNodeDown("b", false);
  ASSERT_TRUE(sim.Send(kMicrosPerSecond, "a", "b", "t", "hello").ok());
  sim.DeliverUntil(2 * kMicrosPerSecond);
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].payload, "hello");
}

TEST(SimulatorFaultTest, FaultsActAtDeliveryTimeToo) {
  // A message already in flight when the partition lands is lost, like
  // a cable pull.
  NetworkSimulator sim(1);
  RecordingNode a;
  RecordingNode b;
  ASSERT_TRUE(sim.RegisterNode("a", &a).ok());
  ASSERT_TRUE(sim.RegisterNode("b", &b).ok());
  NetworkSimulator::LinkConfig slow;
  slow.base_latency_micros = 10 * kMicrosPerMilli;
  sim.SetDefaultLink(slow);

  ASSERT_TRUE(sim.Send(0, "a", "b", "t", "in-flight").ok());
  sim.ScheduleAt(5 * kMicrosPerMilli,
                 [&sim] { sim.SetPartitioned("a", "b", true); });
  sim.DeliverUntil(kMicrosPerSecond);
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(sim.stats().dropped, 1);
}

TEST(SimulatorFaultTest, ScheduledActionsInterleaveDeterministically) {
  NetworkSimulator sim(1);
  RecordingNode b;
  RecordingNode a;
  ASSERT_TRUE(sim.RegisterNode("a", &a).ok());
  ASSERT_TRUE(sim.RegisterNode("b", &b).ok());
  NetworkSimulator::LinkConfig link;
  link.base_latency_micros = 10;
  sim.SetDefaultLink(link);

  // The heal at 500us runs before the scripted send at 600us (actions
  // fire in time order inside DeliverUntil): the first message dies in
  // the partition, the second gets through.
  sim.SetPartitioned("a", "b", true);
  ASSERT_TRUE(sim.Send(100, "a", "b", "t", "first").ok());
  sim.ScheduleAt(500, [&sim] { sim.SetPartitioned("a", "b", false); });
  sim.ScheduleAt(600, [&sim] {
    ASSERT_TRUE(sim.Send(600, "a", "b", "t", "second").ok());
  });
  sim.DeliverUntil(kMicrosPerSecond);
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].payload, "second");
}

TEST(SimulatorFaultTest, SetLossIsDirectional) {
  NetworkSimulator sim(3);
  RecordingNode a;
  RecordingNode b;
  ASSERT_TRUE(sim.RegisterNode("a", &a).ok());
  ASSERT_TRUE(sim.RegisterNode("b", &b).ok());
  sim.SetLoss("a", "b", 1.0);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sim.Send(i, "a", "b", "t", "gone").ok());
    ASSERT_TRUE(sim.Send(i, "b", "a", "t", "fine").ok());
  }
  sim.DeliverUntil(kMicrosPerSecond);
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(a.messages.size(), 10u);

  sim.SetLoss("a", "b", 0.0);
  ASSERT_TRUE(sim.Send(kMicrosPerSecond, "a", "b", "t", "back").ok());
  sim.DeliverUntil(2 * kMicrosPerSecond);
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(SimulatorFaultTest, ClearFaultsLiftsPartitionsAndDownNodes) {
  NetworkSimulator sim(1);
  RecordingNode a;
  RecordingNode b;
  ASSERT_TRUE(sim.RegisterNode("a", &a).ok());
  ASSERT_TRUE(sim.RegisterNode("b", &b).ok());
  sim.SetPartitioned("a", "b", true);
  sim.SetNodeDown("a", true);
  sim.ClearFaults();
  EXPECT_FALSE(sim.IsNodeDown("a"));
  ASSERT_TRUE(sim.Send(0, "a", "b", "t", "x").ok());
  sim.DeliverUntil(kMicrosPerSecond);
  EXPECT_EQ(b.messages.size(), 1u);
}

}  // namespace
}  // namespace gsn::network

// ------------------------------------------------- WrapperConfig accessors

namespace gsn::wrappers {
namespace {

TEST(WrapperConfigTest, GetBoolParsesAndFallsBack) {
  WrapperConfig config;
  config.params = {{"loop", "yes"}, {"bad", "maybe"}};
  auto loop = config.GetBool("loop", false);
  ASSERT_TRUE(loop.ok());
  EXPECT_TRUE(*loop);
  auto absent = config.GetBool("absent", true);
  ASSERT_TRUE(absent.ok());
  EXPECT_TRUE(*absent);
  auto bad = config.GetBool("bad", false);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("'bad'"), std::string::npos)
      << bad.status().ToString();
}

TEST(WrapperConfigTest, GetDurationParsesUnitsAndNamesKeyOnError) {
  WrapperConfig config;
  config.params = {{"interval", "250ms"},
                   {"timeout", "2"},  // bare integer = seconds
                   {"broken", "fast"}};
  auto interval = config.GetDuration("interval", 0);
  ASSERT_TRUE(interval.ok());
  EXPECT_EQ(*interval, 250 * kMicrosPerMilli);
  auto timeout = config.GetDuration("timeout", 0);
  ASSERT_TRUE(timeout.ok());
  EXPECT_EQ(*timeout, 2 * kMicrosPerSecond);
  auto fallback = config.GetDuration("absent", 123);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*fallback, 123);
  auto broken = config.GetDuration("broken", 0);
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kParseError);
  EXPECT_NE(broken.status().ToString().find("'broken'"), std::string::npos);
}

}  // namespace
}  // namespace gsn::wrappers

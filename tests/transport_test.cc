// Tests for the real-socket EpollTransport: the framed peer plane
// (including NAT-style reply routing), the HTTP/1.1 keep-alive plane,
// backpressure, idle timeouts, and two full containers federating over
// actual TCP sockets (docs/TRANSPORT.md).

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gsn/container/container.h"
#include "gsn/network/epoll_transport.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/util/clock.h"

namespace gsn::network {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Collects delivered messages; WaitFor blocks until a predicate holds
/// (real-time transports deliver from their own thread).
class RecordingNode : public NetworkNode {
 public:
  void OnMessage(const Message& message) override {
    std::lock_guard<std::mutex> lock(mu_);
    messages_.push_back(message);
    cv_.notify_all();
  }

  std::vector<Message> Messages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return messages_;
  }

  bool WaitForCount(size_t n, milliseconds timeout = milliseconds(5000)) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout,
                        [this, n] { return messages_.size() >= n; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Message> messages_;
};

/// Blocking loopback client for raw HTTP-plane conformance tests.
class RawClient {
 public:
  explicit RawClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool SendAll(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads until `marker` occurs `count` times, EOF, or timeout.
  std::string ReadUntil(const std::string& marker, int count,
                        milliseconds timeout = milliseconds(5000)) {
    std::string data;
    const auto deadline = steady_clock::now() + timeout;
    char buf[4096];
    while (steady_clock::now() < deadline) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        data.append(buf, static_cast<size_t>(n));
        int seen = 0;
        for (size_t pos = data.find(marker); pos != std::string::npos;
             pos = data.find(marker, pos + 1)) {
          ++seen;
        }
        if (seen >= count) return data;
      } else if (n == 0) {
        return data;  // EOF
      } else {
        std::this_thread::sleep_for(milliseconds(2));
      }
    }
    return data;
  }

  /// True when the server closed the connection (read returns 0/reset).
  bool WaitForClose(milliseconds timeout = milliseconds(5000)) {
    const auto deadline = steady_clock::now() + timeout;
    char buf[4096];
    while (steady_clock::now() < deadline) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n == 0) return true;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
      std::this_thread::sleep_for(milliseconds(2));
    }
    return false;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

bool WaitUntil(const std::function<bool()>& predicate,
               milliseconds timeout = milliseconds(5000)) {
  const auto deadline = steady_clock::now() + timeout;
  while (steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return predicate();
}

// ------------------------------------------------------------- peer plane

TEST(EpollTransportPeerTest, DeliversFramesBetweenProcessesLikeTransports) {
  EpollTransport a;
  EpollTransport b;
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.ListenPeer(0).ok());
  ASSERT_GT(a.peer_port(), 0);

  RecordingNode node_a;
  RecordingNode node_b;
  ASSERT_TRUE(a.RegisterNode("node-a", &node_a).ok());
  ASSERT_TRUE(b.RegisterNode("node-b", &node_b).ok());
  b.AddPeer("node-a", "127.0.0.1", a.peer_port());

  ASSERT_TRUE(b.Send(0, "node-b", "node-a", "greet", "hello").ok());
  ASSERT_TRUE(node_a.WaitForCount(1));
  EXPECT_EQ(node_a.Messages()[0].from, "node-b");
  EXPECT_EQ(node_a.Messages()[0].topic, "greet");
  EXPECT_EQ(node_a.Messages()[0].payload, "hello");

  // Reply routing: `b` never listens — `a` can only answer over the
  // live inbound connection (the NAT-gateway topology).
  ASSERT_TRUE(a.Send(0, "node-a", "node-b", "reply", "hi back").ok());
  ASSERT_TRUE(node_b.WaitForCount(1));
  EXPECT_EQ(node_b.Messages()[0].from, "node-a");
  EXPECT_EQ(node_b.Messages()[0].payload, "hi back");

  // Broadcast from b reaches a's local node (dial table route).
  ASSERT_TRUE(b.Broadcast(0, "node-b", "gossip", "to-everyone").ok());
  ASSERT_TRUE(node_a.WaitForCount(2));
  EXPECT_EQ(node_a.Messages()[1].topic, "gossip");
  EXPECT_EQ(node_a.Messages()[1].to, "node-a");  // addressed per recipient

  // Connection stats surface both ends.
  EXPECT_TRUE(WaitUntil([&] { return !a.Connections().empty(); }));
  const std::vector<ConnectionStats> stats = a.Connections();
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats[0].kind, "peer-in");
  EXPECT_EQ(stats[0].state, "open");
  EXPECT_EQ(stats[0].peer, "node-b");
  EXPECT_GT(stats[0].frames_in, 0);

  a.Stop();
  b.Stop();
}

TEST(EpollTransportPeerTest, LocalNodesDeliverWithoutSockets) {
  EpollTransport t;
  ASSERT_TRUE(t.Start().ok());
  RecordingNode one;
  RecordingNode two;
  ASSERT_TRUE(t.RegisterNode("one", &one).ok());
  ASSERT_TRUE(t.RegisterNode("two", &two).ok());
  EXPECT_FALSE(t.RegisterNode("one", &one).ok());  // duplicate

  ASSERT_TRUE(t.Send(0, "one", "two", "ping", "x").ok());
  ASSERT_TRUE(two.WaitForCount(1));
  ASSERT_TRUE(t.Broadcast(0, "one", "news", "y").ok());
  ASSERT_TRUE(two.WaitForCount(2));
  EXPECT_TRUE(one.Messages().empty());  // no self-delivery

  EXPECT_FALSE(t.Send(0, "one", "ghost", "ping", "x").ok());  // no route
  t.Stop();
}

TEST(EpollTransportPeerTest, SendBeforeStartAndUnknownPeerFail) {
  EpollTransport t;
  EXPECT_FALSE(t.ListenPeer(0).ok());  // not started
  ASSERT_TRUE(t.Start().ok());
  EXPECT_FALSE(t.Send(0, "a", "nowhere", "x", "y").ok());
  t.Stop();
  EXPECT_FALSE(t.running());
  t.Stop();  // idempotent
}

// ------------------------------------------------------------- HTTP plane

EpollTransport::HttpHandler EchoHandler() {
  return [](const HttpRequest& request) {
    return HttpResponse::Text("echo:" + request.path);
  };
}

TEST(EpollTransportHttpTest, KeepAliveServesPipelinedRequests) {
  EpollTransport t;
  ASSERT_TRUE(t.Start().ok());
  ASSERT_TRUE(t.ListenHttp(0, EchoHandler()).ok());
  ASSERT_GT(t.http_port(), 0);

  RawClient client(t.http_port());
  ASSERT_TRUE(client.connected());
  // Two pipelined HTTP/1.1 requests on one connection.
  ASSERT_TRUE(client.SendAll(
      "GET /first HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /second HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string both = client.ReadUntil("echo:/", 2);
  EXPECT_NE(both.find("echo:/first"), std::string::npos) << both;
  EXPECT_NE(both.find("echo:/second"), std::string::npos) << both;
  EXPECT_NE(both.find("Connection: keep-alive"), std::string::npos);

  // The connection stayed open and counted both requests.
  EXPECT_TRUE(WaitUntil([&] {
    const auto stats = t.Connections();
    return !stats.empty() && stats[0].requests_served == 2;
  }));
  EXPECT_EQ(t.http_requests_total(), 2);

  // A third request on the same connection still works.
  ASSERT_TRUE(
      client.SendAll("GET /third HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_NE(client.ReadUntil("echo:/third", 1).find("echo:/third"),
            std::string::npos);
  t.Stop();
}

TEST(EpollTransportHttpTest, Http10ClosesAfterResponse) {
  EpollTransport t;
  ASSERT_TRUE(t.Start().ok());
  ASSERT_TRUE(t.ListenHttp(0, EchoHandler()).ok());

  RawClient client(t.http_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendAll("GET /only HTTP/1.0\r\nHost: x\r\n\r\n"));
  const std::string response = client.ReadUntil("echo:/only", 1);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(client.WaitForClose());
  t.Stop();
}

TEST(EpollTransportHttpTest, MalformedAndOversizedRequestsAreRejected) {
  EpollTransport t;
  ASSERT_TRUE(t.Start().ok());
  ASSERT_TRUE(t.ListenHttp(0, EchoHandler()).ok());

  // An unterminated head larger than the 64 KiB cap closes the socket.
  RawClient big(t.http_port());
  ASSERT_TRUE(big.connected());
  ASSERT_TRUE(big.SendAll("GET / HTTP/1.1\r\nX: " +
                          std::string(70 * 1024, 'a')));
  EXPECT_TRUE(big.WaitForClose());

  // A bad Content-Length closes too (after a 400).
  RawClient bad(t.http_port());
  ASSERT_TRUE(bad.connected());
  ASSERT_TRUE(bad.SendAll(
      "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: pony\r\n\r\n"));
  EXPECT_TRUE(bad.WaitForClose());
  t.Stop();
}

TEST(EpollTransportHttpTest, SlowReaderIsDisconnectedByBackpressure) {
  EpollTransport::Options options;
  options.max_write_queue_bytes = 8 * 1024;
  EpollTransport t(std::move(options));
  ASSERT_TRUE(t.Start().ok());
  // Each response carries a 64 KiB body.
  ASSERT_TRUE(t.ListenHttp(0, [](const HttpRequest&) {
                 return HttpResponse::Text(std::string(64 * 1024, 'z'));
               }).ok());

  RawClient client(t.http_port());
  ASSERT_TRUE(client.connected());
  // Pipeline many requests and never read: kernel buffers fill, the
  // write queue hits its bound, and the transport cuts the connection.
  std::string burst;
  for (int i = 0; i < 64; ++i) {
    burst += "GET /fat HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  ASSERT_TRUE(client.SendAll(burst));
  EXPECT_TRUE(WaitUntil([&] { return t.overflows_total() >= 1; }));
  EXPECT_TRUE(client.WaitForClose());
  t.Stop();
}

TEST(EpollTransportHttpTest, IdleConnectionsAreSweptByTimeout) {
  EpollTransport::Options options;
  options.idle_timeout_micros = 50 * kMicrosPerMilli;
  EpollTransport t(std::move(options));
  ASSERT_TRUE(t.Start().ok());
  ASSERT_TRUE(t.ListenHttp(0, EchoHandler()).ok());

  RawClient idler(t.http_port());
  ASSERT_TRUE(idler.connected());
  EXPECT_TRUE(WaitUntil([&] { return t.connection_count() == 1; }));
  // Send nothing: the sweep must reap the connection.
  EXPECT_TRUE(WaitUntil([&] { return t.timeouts_total() >= 1; }));
  EXPECT_TRUE(idler.WaitForClose());
  EXPECT_TRUE(WaitUntil([&] { return t.connection_count() == 0; }));
  t.Stop();
}

TEST(EpollTransportHttpTest, MetricsRegisterWhenInjected) {
  telemetry::MetricRegistry registry;
  EpollTransport::Options options;
  options.metrics = &registry;
  options.metrics_role = "test";
  EpollTransport t(std::move(options));
  ASSERT_TRUE(t.Start().ok());
  ASSERT_TRUE(t.ListenHttp(0, EchoHandler()).ok());
  RawClient client(t.http_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendAll("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  (void)client.ReadUntil("echo:/", 1);

  const std::string exposition = registry.RenderPrometheus();
  EXPECT_NE(exposition.find("gsn_transport_accepted_total{role=\"test\"} 1"),
            std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find("gsn_transport_connections{role=\"test\"}"),
            std::string::npos);
  t.Stop();
}

// ---------------------------------------- containers over real sockets

// Generator producer: emits a dense `seq` so the consumer can assert
// exactly-once admission with count(distinct seq).
constexpr char kProducerXml[] =
    "<virtual-sensor name=\"seq-producer\">"
    "<metadata><predicate key=\"type\" val=\"seqstream\"/></metadata>"
    "<output-structure>"
    "  <field name=\"seq\" type=\"integer\"/>"
    "  <field name=\"value\" type=\"double\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"src\" storage-size=\"1\">"
    "    <address wrapper=\"generator\">"
    "      <predicate key=\"interval-ms\" val=\"100\"/>"
    "      <predicate key=\"payload-bytes\" val=\"0\"/>"
    "    </address>"
    "    <query>select seq, value from wrapper</query>"
    "  </stream-source>"
    "  <query>select * from src</query>"
    "</input-stream>"
    "</virtual-sensor>";

constexpr char kConsumerXml[] =
    "<virtual-sensor name=\"mirror\">"
    "<output-structure>"
    "  <field name=\"seq\" type=\"integer\"/>"
    "  <field name=\"value\" type=\"double\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"src\" storage-size=\"1\">"
    "    <address wrapper=\"remote\">"
    "      <predicate key=\"type\" val=\"seqstream\"/>"
    "    </address>"
    "    <query>select * from wrapper</query>"
    "  </stream-source>"
    "  <query>select * from src</query>"
    "</input-stream>"
    "</virtual-sensor>";

// Two containers, two transports, one TCP connection between them: the
// full federation protocol (directory gossip, subscribe/ack, stream
// with dense sequence numbers) over real sockets instead of the
// simulator. Virtual clocks still pace the protocol timers; socket
// delivery is immediate.
TEST(EpollFederationTest, ContainersFederateOverRealSockets) {
  EpollTransport net_a;
  EpollTransport net_b;
  ASSERT_TRUE(net_a.Start().ok());
  ASSERT_TRUE(net_b.Start().ok());
  ASSERT_TRUE(net_a.ListenPeer(0).ok());
  ASSERT_TRUE(net_b.ListenPeer(0).ok());
  net_a.AddPeer("node-b", "127.0.0.1", net_b.peer_port());
  net_b.AddPeer("node-a", "127.0.0.1", net_a.peer_port());

  auto clock_a = std::make_shared<VirtualClock>();
  auto clock_b = std::make_shared<VirtualClock>();
  container::Container::Options options_a;
  options_a.node_id = "node-a";
  options_a.clock = clock_a;
  options_a.network = &net_a;
  container::Container a(std::move(options_a));
  container::Container::Options options_b;
  options_b.node_id = "node-b";
  options_b.clock = clock_b;
  options_b.network = &net_b;
  container::Container b(std::move(options_b));

  ASSERT_TRUE(a.Deploy(kProducerXml).ok());

  // The deploy broadcast crossed a real socket: node-b discovers the
  // sensor by predicates alone.
  ASSERT_TRUE(WaitUntil([&] {
    return !b.Discover({{"type", "seqstream"}}).empty();
  }));
  ASSERT_TRUE(b.Deploy(kConsumerXml).ok());

  // Drive both containers; tuples must flow a -> b across TCP.
  int64_t mirrored = 0;
  for (int i = 0; i < 200 && mirrored < 5; ++i) {
    clock_a->Advance(100 * kMicrosPerMilli);
    clock_b->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(a.Tick().ok());
    ASSERT_TRUE(b.Tick().ok());
    std::this_thread::sleep_for(milliseconds(2));
    auto result = b.Query("select count(*) from mirror");
    if (result.ok()) mirrored = result->rows()[0][0].int_value();
  }
  EXPECT_GE(mirrored, 5) << "tuples did not flow across real sockets";

  // Exactly-once admission: the generator's dense seq survives the
  // socket hop with no duplicates.
  auto distinct =
      b.Query("select count(*), count(distinct seq) from mirror");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->rows()[0][0].int_value(),
            distinct->rows()[0][1].int_value());

  // The transport surfaces the peer link.
  EXPECT_EQ(net_a.transport_name(), "epoll");
  EXPECT_TRUE(WaitUntil([&] { return net_a.frames_delivered_total() > 0; }));

  ASSERT_TRUE(a.Shutdown().ok());
  ASSERT_TRUE(b.Shutdown().ok());
  net_a.Stop();
  net_b.Stop();
}

}  // namespace
}  // namespace gsn::network

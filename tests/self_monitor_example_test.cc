// Smoke test for the committed examples/self_monitor*.xml descriptor
// pair: both must deploy as-is and produce rows, so the documented ops
// recipe (README) cannot rot silently.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "gsn/container/container.h"

namespace gsn::container {
namespace {

std::string ReadExample(const std::string& filename) {
  std::ifstream in(std::string(GSN_EXAMPLES_DIR) + "/" + filename);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(TelemetrySelfMonitorExampleTest, CommittedDescriptorPairDeploysAndRuns) {
  const std::string monitor_xml = ReadExample("self_monitor.xml");
  const std::string alert_xml = ReadExample("self_monitor_alert.xml");
  ASSERT_FALSE(monitor_xml.empty());
  ASSERT_FALSE(alert_xml.empty());

  auto clock = std::make_shared<VirtualClock>();
  Container::Options options;
  options.node_id = "example-node";
  options.clock = clock;
  Container container(std::move(options));

  auto monitor = container.Deploy(monitor_xml);
  ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();
  EXPECT_EQ((*monitor)->name(), "self-monitor");
  auto alert = container.Deploy(alert_xml);
  ASSERT_TRUE(alert.ok()) << alert.status().ToString();
  EXPECT_EQ((*alert)->name(), "self-monitor-alert");

  // The example samples once per second; give it a few periods.
  for (int i = 0; i < 50; ++i) {
    clock->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(container.Tick().ok());
  }

  auto monitored = container.Query("select count(*) from \"self-monitor\"");
  ASSERT_TRUE(monitored.ok()) << monitored.status().ToString();
  EXPECT_GT(monitored->rows()[0][0].int_value(), 2);

  auto alerted = container.Query(
      "select count(*), max(max_queue) from \"self-monitor-alert\"");
  ASSERT_TRUE(alerted.ok()) << alerted.status().ToString();
  EXPECT_GT(alerted->rows()[0][0].int_value(), 0);
  // An idle container has no queue saturation to page about.
  EXPECT_EQ(alerted->rows()[0][1].int_value(), 0);
}

}  // namespace
}  // namespace gsn::container

// Tests for hot deployment from a descriptor directory — drop/overwrite/
// delete .xml files and the container reconciles (the original GSN's
// virtual-sensors/ directory workflow, §6).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "gsn/container/descriptor_watcher.h"

namespace gsn::container {
namespace {

namespace fs = std::filesystem;

std::string SensorXml(const std::string& name, int interval_ms) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"integer\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1m\">"
         "    <address wrapper=\"mote\">"
         "      <predicate key=\"interval-ms\" val=\"" +
         std::to_string(interval_ms) + "\"/>"
         "    </address>"
         "    <query>select avg(temperature) from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

class DescriptorWatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gsn_watch_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    clock_ = std::make_shared<VirtualClock>();
    Container::Options options;
    options.node_id = "watch-node";
    options.clock = clock_;
    container_ = std::make_unique<Container>(std::move(options));
    watcher_ = std::make_unique<DescriptorWatcher>(container_.get(),
                                                   dir_.string());
  }
  void TearDown() override { fs::remove_all(dir_); }

  void WriteDescriptor(const std::string& filename,
                       const std::string& contents) {
    std::ofstream(dir_ / filename) << contents;
  }

  /// Bump mtime granularity between writes so fingerprints change.
  static void TouchDelay() {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }

  fs::path dir_;
  std::shared_ptr<VirtualClock> clock_;
  std::unique_ptr<Container> container_;
  std::unique_ptr<DescriptorWatcher> watcher_;
};

TEST_F(DescriptorWatcherTest, DeploysDroppedFiles) {
  WriteDescriptor("a.xml", SensorXml("sensor-a", 100));
  WriteDescriptor("b.xml", SensorXml("sensor-b", 200));
  WriteDescriptor("notes.txt", "not a descriptor");  // ignored

  auto actions = watcher_->Scan();
  ASSERT_TRUE(actions.ok()) << actions.status().ToString();
  EXPECT_EQ(*actions, 2);
  EXPECT_EQ(container_->ListSensors().size(), 2u);
  EXPECT_NE(container_->FindSensor("sensor-a"), nullptr);
  EXPECT_EQ(watcher_->stats().deployed, 2);

  // Idempotent: nothing changed, nothing happens.
  actions = watcher_->Scan();
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ(*actions, 0);
}

TEST_F(DescriptorWatcherTest, RemovingFileUndeploys) {
  WriteDescriptor("a.xml", SensorXml("sensor-a", 100));
  ASSERT_TRUE(watcher_->Scan().ok());
  ASSERT_EQ(container_->ListSensors().size(), 1u);

  fs::remove(dir_ / "a.xml");
  auto actions = watcher_->Scan();
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ(*actions, 1);
  EXPECT_TRUE(container_->ListSensors().empty());
  EXPECT_EQ(watcher_->stats().undeployed, 1);
}

TEST_F(DescriptorWatcherTest, OverwritingFileRedeploys) {
  WriteDescriptor("a.xml", SensorXml("sensor-a", 100));
  ASSERT_TRUE(watcher_->Scan().ok());

  // Reconfigure: new name and rate in the same file.
  TouchDelay();
  WriteDescriptor("a.xml", SensorXml("sensor-a2", 50));
  auto actions = watcher_->Scan();
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ(*actions, 1);
  EXPECT_EQ(container_->ListSensors(),
            std::vector<std::string>{"sensor-a2"});
  EXPECT_EQ(watcher_->stats().redeployed, 1);
}

TEST_F(DescriptorWatcherTest, BrokenDescriptorReportedOnceAndRecoverable) {
  WriteDescriptor("bad.xml", "<virtual-sensor name='x'>broken");
  auto actions = watcher_->Scan();
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ(*actions, 0);
  EXPECT_EQ(watcher_->stats().failed, 1);
  EXPECT_TRUE(container_->ListSensors().empty());

  // Unchanged broken file is not retried.
  ASSERT_TRUE(watcher_->Scan().ok());
  EXPECT_EQ(watcher_->stats().failed, 1);

  // Fixing the file deploys it.
  TouchDelay();
  WriteDescriptor("bad.xml", SensorXml("fixed", 100));
  ASSERT_TRUE(watcher_->Scan().ok());
  EXPECT_EQ(container_->ListSensors(), std::vector<std::string>{"fixed"});
}

TEST_F(DescriptorWatcherTest, InvalidRewriteKeepsOldSensorRunning) {
  WriteDescriptor("a.xml", SensorXml("stable", 100));
  ASSERT_TRUE(watcher_->Scan().ok());
  ASSERT_EQ(container_->ListSensors(), std::vector<std::string>{"stable"});
  const int64_t rejects_before =
      telemetry::MetricRegistry::Default()
          ->GetCounter("gsn_watcher_rejects_total", {}, "")
          ->Value();

  // Break the deployed descriptor in place: the rewrite is validated
  // BEFORE the old sensor is touched, so the reload is rejected and
  // the running deployment survives.
  TouchDelay();
  WriteDescriptor("a.xml", "<virtual-sensor name='stable'>broken");
  auto actions = watcher_->Scan();
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ(*actions, 0);
  EXPECT_EQ(watcher_->stats().rejected, 1);
  EXPECT_EQ(watcher_->stats().undeployed, 0);
  EXPECT_EQ(container_->ListSensors(), std::vector<std::string>{"stable"});
  EXPECT_EQ(telemetry::MetricRegistry::Default()
                ->GetCounter("gsn_watcher_rejects_total", {}, "")
                ->Value(),
            rejects_before + 1);

  // The surviving sensor still processes data.
  for (int i = 0; i < 5; ++i) {
    clock_->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(container_->Tick().ok());
  }
  auto count = container_->Query("select count(*) from stable");
  ASSERT_TRUE(count.ok());
  EXPECT_GT(count->rows()[0][0].int_value(), 0);

  // The broken version is reported once, not retried every scan.
  ASSERT_TRUE(watcher_->Scan().ok());
  EXPECT_EQ(watcher_->stats().rejected, 1);

  // Fixing the file resumes the normal redeploy path.
  TouchDelay();
  WriteDescriptor("a.xml", SensorXml("stable2", 50));
  ASSERT_TRUE(watcher_->Scan().ok());
  EXPECT_EQ(container_->ListSensors(), std::vector<std::string>{"stable2"});
  EXPECT_EQ(watcher_->stats().redeployed, 1);
}

TEST_F(DescriptorWatcherTest, RuntimeDeployFailureRollsBackOldDescriptor) {
  WriteDescriptor("a.xml", SensorXml("stable", 100));
  ASSERT_TRUE(watcher_->Scan().ok());
  ASSERT_EQ(container_->ListSensors(), std::vector<std::string>{"stable"});

  // A rewrite that parses and validates but cannot deploy (unknown
  // wrapper type is only discovered at wiring time). The old sensor is
  // already down by then — the watcher restores it from the previous
  // descriptor.
  std::string xml = SensorXml("stable", 100);
  const size_t pos = xml.find("wrapper=\"mote\"");
  ASSERT_NE(pos, std::string::npos);
  xml.replace(pos, 14, "wrapper=\"no-such-wrapper\"");
  TouchDelay();
  WriteDescriptor("a.xml", xml);

  ASSERT_TRUE(watcher_->Scan().ok());
  EXPECT_EQ(watcher_->stats().failed, 1);
  EXPECT_EQ(watcher_->stats().rolled_back, 1);
  EXPECT_EQ(container_->ListSensors(), std::vector<std::string>{"stable"});
  EXPECT_NE(container_->FindSensor("stable"), nullptr);
}

TEST_F(DescriptorWatcherTest, AdoptsSensorsRecoveredBeforeFirstScan) {
  // Crash recovery replays the manifest in the Container constructor,
  // before the watcher ever scans — its descriptor file then describes
  // an already-running sensor.
  ASSERT_TRUE(container_->Deploy(SensorXml("recovered", 100)).ok());
  WriteDescriptor("a.xml", SensorXml("recovered", 100));

  auto actions = watcher_->Scan();
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ(watcher_->stats().adopted, 1);
  EXPECT_EQ(watcher_->stats().failed, 0);
  EXPECT_EQ(container_->ListSensors(), std::vector<std::string>{"recovered"});

  // Adoption keeps the file workflows alive: overwrite redeploys...
  TouchDelay();
  WriteDescriptor("a.xml", SensorXml("recovered2", 50));
  ASSERT_TRUE(watcher_->Scan().ok());
  EXPECT_EQ(container_->ListSensors(), std::vector<std::string>{"recovered2"});
  EXPECT_EQ(watcher_->stats().redeployed, 1);

  // ...and deleting the file undeploys.
  fs::remove(dir_ / "a.xml");
  ASSERT_TRUE(watcher_->Scan().ok());
  EXPECT_TRUE(container_->ListSensors().empty());
}

TEST_F(DescriptorWatcherTest, MissingDirectoryIsError) {
  DescriptorWatcher watcher(container_.get(), (dir_ / "nope").string());
  EXPECT_EQ(watcher.Scan().status().code(), StatusCode::kIoError);
}

TEST_F(DescriptorWatcherTest, DeployedSensorsActuallyRun) {
  WriteDescriptor("a.xml", SensorXml("running", 100));
  ASSERT_TRUE(watcher_->Scan().ok());
  for (int i = 0; i < 10; ++i) {
    clock_->Advance(100 * kMicrosPerMilli);
    ASSERT_TRUE(container_->Tick().ok());
  }
  auto count = container_->Query("select count(*) from running");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows()[0][0], Value::Int(9));
}

}  // namespace
}  // namespace gsn::container

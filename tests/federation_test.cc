#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "gsn/container/federation.h"
#include "gsn/container/management_interface.h"
#include "gsn/telemetry/tracing.h"
#include "gsn/wrappers/rfid_wrapper.h"

namespace gsn::container {
namespace {

/// Producer: averaged mote temperature published with discovery
/// metadata, as in the paper's Fig 1.
std::string ProducerDescriptor(const std::string& name,
                               const std::string& location) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata>"
         "  <predicate key=\"type\" val=\"temperature\"/>"
         "  <predicate key=\"location\" val=\"" + location + "\"/>"
         "</metadata>"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"integer\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1m\">"
         "    <address wrapper=\"mote\">"
         "      <predicate key=\"interval-ms\" val=\"100\"/>"
         "    </address>"
         "    <query>select avg(temperature) from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

/// Consumer on another node: the paper's Fig 1 remote wrapper, resolved
/// by logical addressing (type + location predicates).
std::string ConsumerDescriptor(const std::string& name,
                               const std::string& location) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"integer\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src1\" storage-size=\"30s\">"
         "    <address wrapper=\"remote\">"
         "      <predicate key=\"type\" val=\"temperature\"/>"
         "      <predicate key=\"location\" val=\"" + location + "\"/>"
         "    </address>"
         "    <query>select avg(temperature) from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src1</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

TEST(FederationTest, RemoteWrapperStreamsAcrossNodes) {
  Federation fed(21);
  auto producer_node = fed.AddNode("node-a");
  auto consumer_node = fed.AddNode("node-b");
  ASSERT_TRUE(producer_node.ok());
  ASSERT_TRUE(consumer_node.ok());

  ASSERT_TRUE(
      (*producer_node)->Deploy(ProducerDescriptor("bc143-temp", "bc143")).ok());
  // Let the directory publication propagate.
  ASSERT_TRUE(fed.Step(10 * kMicrosPerMilli).ok());

  // node-b discovers node-a's sensor purely by predicates.
  auto hits = (*consumer_node)
                  ->Discover({{"type", "temperature"}, {"location", "bc143"}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node_id, "node-a");

  auto consumer =
      (*consumer_node)->Deploy(ConsumerDescriptor("mirror", "bc143"));
  ASSERT_TRUE(consumer.ok()) << consumer.status().ToString();

  ASSERT_TRUE(fed.RunFor(3 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  // The consumer's table must contain mirrored averaged temperatures.
  auto result =
      (*consumer_node)->Query("select count(*), avg(temperature) from mirror");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rows()[0][0].int_value(), 10);
  const double avg = result->rows()[0][1].double_value();
  EXPECT_GT(avg, 0);
  EXPECT_LT(avg, 60);
}

TEST(FederationTest, RemoteDeployFailsWithoutMatchingProducer) {
  Federation fed;
  auto node = fed.AddNode("solo");
  ASSERT_TRUE(node.ok());
  auto consumer = (*node)->Deploy(ConsumerDescriptor("mirror", "nowhere"));
  EXPECT_EQ(consumer.status().code(), StatusCode::kUnavailable);
}

TEST(FederationTest, UndeployProducerStopsStreamConsumerKeepsRunning) {
  Federation fed(5);
  auto a = fed.AddNode("a");
  auto b = fed.AddNode("b");
  ASSERT_TRUE((*a)->Deploy(ProducerDescriptor("p", "here")).ok());
  ASSERT_TRUE(fed.Step(10 * kMicrosPerMilli).ok());
  ASSERT_TRUE((*b)->Deploy(ConsumerDescriptor("c", "here")).ok());
  ASSERT_TRUE(fed.RunFor(kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  auto before = (*b)->Query("select count(*) from c");
  ASSERT_TRUE(before.ok());
  const int64_t count_before = before->rows()[0][0].int_value();
  EXPECT_GT(count_before, 0);

  ASSERT_TRUE((*a)->Undeploy("p").ok());
  ASSERT_TRUE(fed.RunFor(kMicrosPerSecond, 100 * kMicrosPerMilli).ok());
  auto after = (*b)->Query("select count(*) from c");
  ASSERT_TRUE(after.ok());
  // At most one in-flight element may still land; then the stream is
  // quiescent.
  const int64_t count_after = after->rows()[0][0].int_value();
  EXPECT_LE(count_after - count_before, 1);
  ASSERT_TRUE(fed.RunFor(kMicrosPerSecond, 100 * kMicrosPerMilli).ok());
  auto final_count = (*b)->Query("select count(*) from c");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->rows()[0][0].int_value(), count_after);
  // And the directory no longer lists it anywhere.
  EXPECT_TRUE((*b)->Discover({{"name", "p"}}).empty());
}

TEST(FederationTest, LateJoinerLearnsDirectoryViaAnnounce) {
  Federation fed;
  auto a = fed.AddNode("a");
  ASSERT_TRUE((*a)->Deploy(ProducerDescriptor("p", "x")).ok());
  ASSERT_TRUE(fed.Step(10 * kMicrosPerMilli).ok());

  // b joins after the publish happened; AddNode triggers re-announce.
  auto b = fed.AddNode("b");
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fed.Step(10 * kMicrosPerMilli).ok());
  EXPECT_EQ((*b)->Discover({{"type", "temperature"}}).size(), 1u);
}

TEST(FederationTest, NodeRemovalIsClean) {
  Federation fed;
  auto a = fed.AddNode("a");
  ASSERT_TRUE(fed.AddNode("b").ok());
  ASSERT_TRUE((*a)->Deploy(ProducerDescriptor("p", "x")).ok());
  ASSERT_TRUE(fed.Step(10 * kMicrosPerMilli).ok());
  ASSERT_TRUE(fed.RemoveNode("a").ok());
  EXPECT_EQ(fed.RemoveNode("a").code(), StatusCode::kNotFound);
  // Remaining node keeps stepping without error.
  ASSERT_TRUE(fed.RunFor(kMicrosPerSecond, 100 * kMicrosPerMilli).ok());
  EXPECT_EQ(fed.NodeIds(), std::vector<std::string>{"b"});
}

/// The paper's §6 event scenario: "when the RFID reader recognizes an
/// RFID tag, a picture ... would be returned from the camera network
/// together with the current light intensity and temperature taken
/// from the other networks (notification)". Three networks on two
/// nodes; the event handler queries the other sensors on notification.
TEST(FederationTest, DemoRfidTriggersJoinedSnapshot) {
  Federation fed(9);
  auto hub = fed.AddNode("hub");      // RFID + motes (as in Fig 5)
  auto cams = fed.AddNode("cameras");  // camera network
  ASSERT_TRUE(hub.ok());
  ASSERT_TRUE(cams.ok());

  // Camera network publishes frames.
  ASSERT_TRUE((*cams)
                  ->Deploy(
                      "<virtual-sensor name=\"cam1\">"
                      "<metadata><predicate key=\"type\" val=\"camera\"/>"
                      "</metadata>"
                      "<output-structure>"
                      "  <field name=\"image\" type=\"binary\"/>"
                      "  <field name=\"camera_id\" type=\"integer\"/>"
                      "</output-structure>"
                      "<input-stream name=\"in\">"
                      "  <stream-source alias=\"src\" storage-size=\"5\">"
                      "    <address wrapper=\"camera\">"
                      "      <predicate key=\"interval-ms\" val=\"500\"/>"
                      "      <predicate key=\"image-bytes\" val=\"1024\"/>"
                      "    </address>"
                      "    <query>select image, camera_id from wrapper</query>"
                      "  </stream-source>"
                      "  <query>select * from src</query>"
                      "</input-stream>"
                      "</virtual-sensor>")
                  .ok());

  // Mote network on the hub.
  ASSERT_TRUE((*hub)->Deploy(ProducerDescriptor("motes", "hall")).ok());

  // Camera mirror on the hub via remote wrapper, so the snapshot query
  // can join local tables.
  ASSERT_TRUE(fed.Step(10 * kMicrosPerMilli).ok());
  ASSERT_TRUE((*hub)
                  ->Deploy(
                      "<virtual-sensor name=\"cam-mirror\">"
                      "<output-structure>"
                      "  <field name=\"image\" type=\"binary\"/>"
                      "  <field name=\"camera_id\" type=\"integer\"/>"
                      "</output-structure>"
                      "<input-stream name=\"in\">"
                      "  <stream-source alias=\"src\" storage-size=\"5\">"
                      "    <address wrapper=\"remote\">"
                      "      <predicate key=\"type\" val=\"camera\"/>"
                      "    </address>"
                      "    <query>select * from wrapper</query>"
                      "  </stream-source>"
                      "  <query>select image, camera_id from src</query>"
                      "</input-stream>"
                      "</virtual-sensor>")
                  .ok());

  // RFID reader on the hub; detection forced below.
  ASSERT_TRUE((*hub)
                  ->Deploy(
                      "<virtual-sensor name=\"door-rfid\">"
                      "<output-structure>"
                      "  <field name=\"tag_id\" type=\"string\"/>"
                      "  <field name=\"rssi\" type=\"integer\"/>"
                      "</output-structure>"
                      "<input-stream name=\"in\">"
                      "  <stream-source alias=\"src\" storage-size=\"1\">"
                      "    <address wrapper=\"rfid\">"
                      "      <predicate key=\"interval-ms\" val=\"100\"/>"
                      "      <predicate key=\"detect-probability\" val=\"0\"/>"
                      "    </address>"
                      "    <query>select tag_id, rssi from wrapper</query>"
                      "  </stream-source>"
                      "  <query>select * from src</query>"
                      "</input-stream>"
                      "</virtual-sensor>")
                  .ok());

  // Event handler: on RFID detection, snapshot camera + temperature.
  struct Snapshot {
    std::string tag;
    bool has_image = false;
    double temperature = 0;
  };
  std::vector<Snapshot> snapshots;
  auto sub = (*hub)->notification_manager().Subscribe(
      "door-rfid", "",
      std::make_shared<CallbackChannel>([&](const Notification& n) {
        Snapshot snap;
        snap.tag = n.element.values[0].string_value();
        auto image = (*hub)->Query(
            "select image from \"cam-mirror\" order by timed desc limit 1");
        snap.has_image = image.ok() && !image->empty() &&
                         image->rows()[0][0].is_binary();
        auto temp = (*hub)->Query("select avg(temperature) from motes");
        if (temp.ok() && !temp->empty() && !temp->rows()[0][0].is_null()) {
          snap.temperature = temp->rows()[0][0].double_value();
        }
        snapshots.push_back(snap);
      }));
  ASSERT_TRUE(sub.ok());

  // Warm up: cameras produce frames, motes produce temperatures.
  ASSERT_TRUE(fed.RunFor(2 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  // Someone swipes a badge.
  auto* rfid = static_cast<wrappers::RfidWrapper*>(
      (*hub)->FindSensor("door-rfid")->FindSource("in", "src")
          ->mutable_wrapper());
  rfid->InjectDetection("badge-42");
  ASSERT_TRUE(fed.RunFor(300 * kMicrosPerMilli, 100 * kMicrosPerMilli).ok());

  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].tag, "badge-42");
  EXPECT_TRUE(snapshots[0].has_image);
  EXPECT_GT(snapshots[0].temperature, 0);
  EXPECT_LT(snapshots[0].temperature, 60);
}

// One tuple produced on node-a and delivered through wrapper="remote"
// to node-b must form a single trace: rooted at the producer's wrapper
// admission, continued across the simulated network, with ≥ 5 linked
// spans spanning both node labels.
TEST(FederationTest, TraceFollowsTupleAcrossContainers) {
  Federation fed(33);
  fed.tracer().set_sample_rate(1.0);
  auto a = fed.AddNode("node-a");
  auto b = fed.AddNode("node-b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  ASSERT_TRUE((*a)->Deploy(ProducerDescriptor("temps", "lab")).ok());
  ASSERT_TRUE(fed.Step(10 * kMicrosPerMilli).ok());
  ASSERT_TRUE((*b)->Deploy(ConsumerDescriptor("mirror", "lab")).ok());
  ASSERT_TRUE(fed.RunFor(2 * kMicrosPerSecond, 100 * kMicrosPerMilli).ok());

  const std::vector<telemetry::SpanRecord> spans =
      fed.tracer().store().Snapshot();
  ASSERT_FALSE(spans.empty());

  // Pick a trace that reached node-b's source admission: its node-a
  // half completed strictly earlier, so the whole chain is recorded.
  uint64_t hi = 0;
  uint64_t lo = 0;
  for (const telemetry::SpanRecord& span : spans) {
    if (span.name == "source.admit" && span.node == "node-b") {
      hi = span.trace_hi;
      lo = span.trace_lo;
      break;
    }
  }
  ASSERT_NE(hi | lo, 0u) << "no trace crossed the network";

  const std::vector<telemetry::SpanRecord> trace =
      fed.tracer().store().ForTrace(hi, lo);
  EXPECT_GE(trace.size(), 5u);

  std::set<std::string> names;
  std::set<std::string> nodes;
  std::set<uint64_t> span_ids;
  int roots = 0;
  for (const telemetry::SpanRecord& span : trace) {
    names.insert(span.name);
    if (!span.node.empty()) nodes.insert(span.node);
    span_ids.insert(span.span_id);
    if (span.parent_span_id == 0) ++roots;
  }
  // Rooted exactly once, at the producing wrapper on node-a.
  EXPECT_EQ(roots, 1);
  EXPECT_TRUE(names.count("wrapper.produce"));
  EXPECT_TRUE(names.count("remote.send"));
  EXPECT_TRUE(names.count("source.admit"));
  EXPECT_TRUE(names.count("vsensor.pipeline"));
  // Both containers contributed spans to the same trace id.
  EXPECT_TRUE(nodes.count("node-a"));
  EXPECT_TRUE(nodes.count("node-b"));
  // Parent/child linkage is closed: every non-root parent is a span of
  // this same trace.
  for (const telemetry::SpanRecord& span : trace) {
    if (span.parent_span_id != 0) {
      EXPECT_TRUE(span_ids.count(span.parent_span_id))
          << span.name << " has a dangling parent";
    }
  }
}

}  // namespace
}  // namespace gsn::container
